#!/usr/bin/env bash
# Tier-1 gate plus lint gates and a quick sequential experiment sweep.
# Run from the repository root: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --workspace --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo run --release -p whitefi-bench --bin experiments -- all --quick --jobs 1
