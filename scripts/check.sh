#!/usr/bin/env bash
# Tier-1 gate plus lint gates and a quick sequential experiment sweep.
# Run from the repository root: scripts/check.sh
#
#   --bless    re-bless the golden trace digest (GOLDEN_BLESS=1 for the
#              test lane) after an intended protocol/timing change
set -euo pipefail
cd "$(dirname "$0")/.."

for arg in "$@"; do
    case "$arg" in
        --bless) export GOLDEN_BLESS=1 ;;
        *) echo "unknown option: $arg (supported: --bless)" >&2; exit 2 ;;
    esac
done

cargo fmt --all --check
cargo build --workspace --release
cargo clippy --workspace --all-targets -- -D warnings

# Determinism/safety linter (DESIGN.md §11, §16): the lexical rules
# (R1 ordered containers, R2 no ambient nondeterminism, R3
# seeded+streamed RNG construction, R4 no unwrap/expect in library
# code, R5 no lossy `as` casts in hot kernels) plus the call-graph
# passes — R6 taint (no path from sim code into a fn that transitively
# reaches a wall clock or ambient RNG), R7 RNG stream map (annotated
# assignment sites, pairwise-distinct salts, disjoint cross-domain
# ranges, STREAM_MAP.md in sync) and R8 dead waivers. Exits non-zero
# with file:line diagnostics on any violation.
cargo run --release -p xtask -- lint

cargo test --workspace -q

# Interleaving-exploration lane (DESIGN.md §16): the minloom model
# tests exhaustively schedule BoundaryBus and the runner pool under a
# preemption-bounded explorer; they run inside the workspace test
# sweep above but are re-run here explicitly so a filtered invocation
# can never skip them.
cargo test --release -q -p whitefi-mac --test loom_models
cargo test --release -q -p whitefi-bench --test loom_models

# Real-loom lane (optional): when the `loom` dev-dependency is vendored
# (it is not baked into the offline image — see README "Race
# detection"), RUSTFLAGS="--cfg loom" compiles the cfg(loom) model
# tests against upstream loom for full C11-memory-model coverage.
if cargo metadata --format-version 1 --offline 2>/dev/null | grep -q '"name":"loom"'; then
    RUSTFLAGS="--cfg loom" cargo test --release -q -p whitefi-mac --test loom_models
    RUSTFLAGS="--cfg loom" cargo test --release -q -p whitefi-bench --test loom_models
else
    echo "loom: SKIPPED (loom dev-dependency not vendored; minloom lane above still ran)"
fi

# ThreadSanitizer lane (best effort): needs a nightly toolchain with
# rust-src for -Zbuild-std. Drives the boundary/runner model tests
# under TSan to catch data races the model abstraction cannot see.
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test --release -q -p whitefi-mac \
        --test loom_models -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')"
else
    echo "tsan: SKIPPED (nightly toolchain with rust-src not installed)"
fi

# Scalar-vs-batched differential gate: the lane kernels, the streaming
# SIFT front end and the block synthesizer must stay bit-identical to
# their scalar/buffered references (DESIGN.md §12). Runs explicitly so
# a filtered `cargo test` invocation can never silently skip it.
cargo test --release -q -p whitefi-phy --test kernel_differential

# Invariant torture lane: the full 256-plan randomized fault-injection
# sweep plus its order-independence check (ignored by default — too slow
# for the tier-1 lane above, which already runs a 24-case slice). Any
# protocol-oracle Violation under an adaptive run fails here; the quick
# experiment sweep below additionally exits non-zero if any seed
# scenario reports an adaptive oracle violation.
cargo test --release -q -p whitefi-bench --test sim_torture -- --ignored

# Generative fuzz smoke (DESIGN.md §15): sample the scenario schema
# broadly and require zero oracle violations. The tier-1 lane above runs
# the default 8-case slice; this stage widens it (override with
# SCENARIO_FUZZ_CASES=N, like SIM_TORTURE_CASES). A failing case writes
# its reproducing .ron + seed to tests/corpus-failures/.
SCENARIO_FUZZ_CASES="${SCENARIO_FUZZ_CASES:-32}" \
    cargo test --release -q -p whitefi --test fuzz_sweep

# Sharding byte-identity smoke (DESIGN.md §13–14): the same small city
# run unsharded, 4-way component-sharded and 4-way cut-sharded must
# print byte-identical outcome JSON — per-cell goodput, timeline
# samples, oracle trace digests and fault events included. Scheduling
# metadata (partition mode, cut pairs, fallback status) goes to stderr,
# so a plain three-way diff of stdout is the whole gate. The cut run on
# this coupled grid exercises whichever §14 path the topology selects
# (certified-silent or deterministic fallback); either way the stdout
# must not move.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -p whitefi-bench --bin city_smoke -- --aps 9 --shards 1 > "$smoke_dir/shards1.json"
cargo run --release -p whitefi-bench --bin city_smoke -- --aps 9 --shards 4 > "$smoke_dir/shards4.json"
cargo run --release -p whitefi-bench --bin city_smoke -- --aps 9 --shards 4 --partition cut > "$smoke_dir/cut4.json"
diff "$smoke_dir/shards1.json" "$smoke_dir/shards4.json"
diff "$smoke_dir/shards1.json" "$smoke_dir/cut4.json"
echo "city smoke: shards 1 vs 4 vs cut-4 byte-identical"

cargo run --release -p whitefi-bench --bin experiments -- all --quick --jobs 1

# Wall-time regression gate: compare the sweep just run against the
# committed baseline snapshot (>20% per-experiment regressions fail;
# sub-second cells are noise-floored inside bench_compare.sh). The
# comparison is skipped when no baseline is committed, or when the
# baseline was recorded from a full (non-quick) run and is therefore
# not comparable to the quick sweep above — refresh it on this machine
# with:  cargo run --release -p whitefi-bench --bin experiments -- \
#            all --quick --jobs 1 && \
#        cp results/BENCH_experiments.json results/BENCH_baseline.json
if [ -f results/BENCH_baseline.json ] && [ -f results/BENCH_experiments.json ]; then
    base_quick=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("quick"))' results/BENCH_baseline.json)
    cand_quick=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("quick"))' results/BENCH_experiments.json)
    if [ "$base_quick" = "$cand_quick" ]; then
        scripts/bench_compare.sh results/BENCH_baseline.json results/BENCH_experiments.json --threshold 20
    else
        echo "bench_compare: baseline quick=$base_quick vs candidate quick=$cand_quick — skipping wall-time gate (refresh the baseline to enable it)"
    fi
else
    echo "bench_compare: results/BENCH_baseline.json not found — skipping wall-time gate"
fi
