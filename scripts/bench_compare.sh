#!/usr/bin/env bash
# Compares two experiment-runner summaries (results/BENCH_experiments.json
# from two runs) and flags wall-time regressions.
#
#   scripts/bench_compare.sh BASELINE.json CANDIDATE.json \
#       [--threshold PCT] [--min-seconds S]
#
# Exits 1 if any experiment present in both runs regressed by more than
# the threshold (default 20%). Experiments present in only one run are
# reported but do not fail the comparison, and neither do experiments
# where both runs finished under the minimum-seconds floor (default
# 1.0 s — sub-second quick-mode cells are dominated by scheduler noise,
# so a percentage gate on them would flap).
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [--threshold PCT] [--min-seconds S]" >&2
    exit 2
fi

BASE="$1"
CAND="$2"
shift 2
THRESHOLD=20
MIN_SECONDS=1.0
while [ "$#" -gt 0 ]; do
    case "$1" in
        --threshold) THRESHOLD="${2:?--threshold requires a value}"; shift 2 ;;
        --min-seconds) MIN_SECONDS="${2:?--min-seconds requires a value}"; shift 2 ;;
        *) echo "unknown option: $1" >&2; exit 2 ;;
    esac
done

python3 - "$BASE" "$CAND" "$THRESHOLD" "$MIN_SECONDS" <<'PY'
import json
import sys

base_path, cand_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
min_seconds = float(sys.argv[4])

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {e["id"]: e for e in data.get("experiments", [])}, data

base, base_doc = load(base_path)
cand, cand_doc = load(cand_path)

if base_doc.get("quick") != cand_doc.get("quick"):
    print(
        f"warning: comparing a quick={base_doc.get('quick')} run against "
        f"quick={cand_doc.get('quick')} — wall times are not comparable",
        file=sys.stderr,
    )

print(f"{'experiment':14} {'base_s':>10} {'cand_s':>10} {'delta':>8}")
regressions = []
for exp_id in base:
    if exp_id not in cand:
        print(f"{exp_id:14} {base[exp_id]['wall_s']:>10.3f} {'absent':>10} {'--':>8}")
        continue
    b = base[exp_id]["wall_s"]
    c = cand[exp_id]["wall_s"]
    delta = (c - b) / b * 100.0 if b > 0 else 0.0
    flag = ""
    if delta > threshold:
        if b < min_seconds and c < min_seconds:
            flag = "  (below floor, ignored)"
        else:
            flag = "  <-- REGRESSION"
            regressions.append((exp_id, b, c, delta))
    print(f"{exp_id:14} {b:>10.3f} {c:>10.3f} {delta:>+7.1f}%{flag}")
for exp_id in cand:
    if exp_id not in base:
        print(f"{exp_id:14} {'absent':>10} {cand[exp_id]['wall_s']:>10.3f} {'--':>8}")

bt = base_doc.get("total_wall_s")
ct = cand_doc.get("total_wall_s")
if bt and ct:
    print(f"{'total':14} {bt:>10.3f} {ct:>10.3f} {((ct - bt) / bt * 100.0):>+7.1f}%")

if regressions:
    print(
        f"\n{len(regressions)} experiment(s) regressed by more than "
        f"{threshold:.0f}%:",
        file=sys.stderr,
    )
    for exp_id, b, c, delta in regressions:
        print(f"  {exp_id}: {b:.3f}s -> {c:.3f}s ({delta:+.1f}%)", file=sys.stderr)
    sys.exit(1)
print("\nno wall-time regressions above threshold")
PY
