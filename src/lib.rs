//! Workspace root for the WhiteFi reproduction: re-exports of all crates
//! plus the scenario presets shared by the runnable examples and the
//! cross-crate integration tests.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

pub use whitefi;
pub use whitefi_audio as audio;
pub use whitefi_mac as mac;
pub use whitefi_phy as phy;
pub use whitefi_spectrum as spectrum;

use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{MicActivity, MicSchedule, SpectrumMap, UhfChannel, WirelessMic};

/// The paper's Building 5 testbed spectrum map (§5.4.2): free TV channels
/// 26–30, 33–35, 39 and 48 — "fragments of size 20 MHz, 10 MHz and two
/// channels of 5 MHz".
pub fn building5_map() -> SpectrumMap {
    SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26])
}

/// The §5.4.1 large-scale simulation map: "There are 17 free UHF
/// channels, and the widest contiguous white space is 36 MHz" (six
/// contiguous channels). Constructed to match both properties.
pub fn campus_sim_map() -> SpectrumMap {
    // Free: 6-channel run, a 4-channel run, a 3-channel run, two
    // 1-channel slivers and a 2-channel run: 6+4+3+1+1+2 = 17 free.
    SpectrumMap::from_free([
        2, 3, 4, 5, 6, 7, // 36 MHz fragment
        10, 11, 12, 13, // 24 MHz
        16, 17, 18, // 18 MHz
        21, // 6 MHz
        24, // 6 MHz
        27, 28, // 12 MHz
    ])
}

/// A wireless microphone switching on at `on` and staying active until
/// `off`, on the given UHF channel — the §5.3 disconnection stimulus.
pub fn scripted_mic(channel: usize, on: SimTime, off: SimTime) -> WirelessMic {
    WirelessMic::new(
        UhfChannel::from_index(channel),
        MicSchedule::scripted(vec![MicActivity {
            start: on.as_nanos(),
            end: off.as_nanos(),
        }]),
    )
}

/// Convenience: a `SimDuration` from fractional seconds (test/bench
/// ergonomics; truncates to nanoseconds).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn secs_f(s: f64) -> SimDuration {
    SimDuration::from_nanos((s * 1e9) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_map_matches_paper_description() {
        let m = campus_sim_map();
        assert_eq!(m.free_count(), 17);
        assert_eq!(m.widest_fragment(), 6); // 36 MHz
                                            // "there are multiple possibilities of selecting even 20 MHz wide
                                            // channels for the AP".
        let w20 = m
            .available_channels()
            .into_iter()
            .filter(|c| c.width() == whitefi_spectrum::Width::W20)
            .count();
        assert!(w20 >= 2, "only {w20} 20 MHz placements");
    }

    #[test]
    fn building5_fragments() {
        let lens: Vec<usize> = building5_map()
            .fragments()
            .iter()
            .map(|f| f.len())
            .collect();
        assert_eq!(lens, vec![5, 3, 1, 1]);
    }

    #[test]
    fn scripted_mic_schedule() {
        let mic = scripted_mic(9, SimTime::from_secs(5), SimTime::from_secs(9));
        assert!(!mic.active_at(SimTime::from_secs(4).as_nanos()));
        assert!(mic.active_at(SimTime::from_secs(6).as_nanos()));
        assert!(!mic.active_at(SimTime::from_secs(9).as_nanos()));
    }

    #[test]
    fn secs_f_conversion() {
        assert_eq!(secs_f(1.5), SimDuration::from_millis(1500));
    }
}
