//! Quickstart: bring up a WhiteFi network on fragmented spectrum, watch
//! it pick a channel with MCham, move data, and survive a wireless mic.
//! The whole scenario lives in `scenarios/quickstart.ron`; this binary
//! just loads and narrates it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whitefi::scenario_file::CompiledCase;
use whitefi::{mcham, select_channel, NodeReport};
use whitefi_spectrum::AirtimeVector;

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/quickstart.ron");

fn main() {
    let doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    let Some(CompiledCase::SingleAp(case)) = doc.compile_sim() else {
        panic!("quickstart.ron must be a single-AP scenario");
    };
    let scenario = &case.scenario;

    // 1. The spectrum: the paper's Building 5 testbed map — free TV
    //    channels 26–30, 33–35, 39 and 48.
    let map = scenario.ap_map;
    println!("spectrum map (X = incumbent): {map}");
    println!(
        "fragments: {:?} channels wide",
        map.fragments().iter().map(|f| f.len()).collect::<Vec<_>>()
    );

    // 2. What would WhiteFi pick on clean spectrum? The MCham metric
    //    scores all admissible (F, W) candidates.
    let report = NodeReport {
        map,
        airtime: AirtimeVector::idle(),
    };
    let (best, score) = select_channel(&report, &[]).expect("no channel");
    println!("\nclean-spectrum selection: {best} with MCham objective {score:.2}");
    for cand in map.available_channels() {
        if cand.center() == best.center() {
            println!(
                "  candidate {cand}: MCham {:.2}",
                mcham(&report.airtime, cand)
            );
        }
    }

    // 3. Run the full network: 1 AP + 2 clients, backlogged both ways.
    //    A wireless mic switches on at t = 6 s inside the 20 MHz fragment
    //    (near one client only), forcing the chirping recovery protocol.
    println!("\nrunning 15 simulated seconds (mic hits TV channel 28 at t=6s)…\n");
    let out = case.run();

    println!("  t(s)   AP channel        goodput(Mbps)");
    let mut last = None;
    for s in &out.samples {
        let mbps = s.bytes_delta as f64 * 8.0 / scenario.sample_interval.as_secs_f64() / 1e6;
        let marker = if last != Some(s.ap_channel) {
            "  <-- switch"
        } else {
            ""
        };
        if last != Some(s.ap_channel) || s.t.as_nanos() % 2_000_000_000 == 0 {
            println!(
                "  {:5.1}  {:16} {:6.2}{marker}",
                s.t.as_secs_f64(),
                s.ap_channel.to_string(),
                mbps
            );
        }
        last = Some(s.ap_channel);
    }
    println!(
        "\nper-client goodput: {:?} Mbps, aggregate {:.2} Mbps",
        out.per_client_mbps
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        out.aggregate_mbps
    );
    println!(
        "incumbent violations: {} (the protocol never transmitted over the mic)",
        out.violations
    );
}
