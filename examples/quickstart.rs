//! Quickstart: bring up a WhiteFi network on fragmented spectrum, watch
//! it pick a channel with MCham, move data, and survive a wireless mic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whitefi::driver::{run_whitefi, Scenario};
use whitefi::{mcham, select_channel, NodeReport};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::{building5_map, scripted_mic};
use whitefi_spectrum::{AirtimeVector, IncumbentSet};

fn main() {
    // 1. The spectrum: the paper's Building 5 testbed map — free TV
    //    channels 26–30, 33–35, 39 and 48.
    let map = building5_map();
    println!("spectrum map (X = incumbent): {map}");
    println!(
        "fragments: {:?} channels wide",
        map.fragments().iter().map(|f| f.len()).collect::<Vec<_>>()
    );

    // 2. What would WhiteFi pick on clean spectrum? The MCham metric
    //    scores all admissible (F, W) candidates.
    let report = NodeReport {
        map,
        airtime: AirtimeVector::idle(),
    };
    let (best, score) = select_channel(&report, &[]).expect("no channel");
    println!("\nclean-spectrum selection: {best} with MCham objective {score:.2}");
    for cand in map.available_channels() {
        if cand.center() == best.center() {
            println!(
                "  candidate {cand}: MCham {:.2}",
                mcham(&report.airtime, cand)
            );
        }
    }

    // 3. Run the full network: 1 AP + 2 clients, backlogged both ways.
    //    A wireless mic switches on at t = 6 s inside the 20 MHz fragment
    //    (near one client only), forcing the chirping recovery protocol.
    let mut scenario = Scenario::new(7, map, 2);
    scenario.warmup = SimDuration::from_secs(1);
    scenario.duration = SimDuration::from_secs(14);
    scenario.sample_interval = SimDuration::from_millis(500);
    let mut inc = IncumbentSet::default();
    inc.mics.push(scripted_mic(
        7,
        SimTime::from_secs(6),
        SimTime::from_secs(60),
    ));
    scenario.client_extra_incumbents[0] = Some(inc);

    println!("\nrunning 15 simulated seconds (mic hits TV channel 28 at t=6s)…\n");
    let out = run_whitefi(&scenario, None);

    println!("  t(s)   AP channel        goodput(Mbps)");
    let mut last = None;
    for s in &out.samples {
        let mbps = s.bytes_delta as f64 * 8.0 / scenario.sample_interval.as_secs_f64() / 1e6;
        let marker = if last != Some(s.ap_channel) {
            "  <-- switch"
        } else {
            ""
        };
        if last != Some(s.ap_channel) || s.t.as_nanos() % 2_000_000_000 == 0 {
            println!(
                "  {:5.1}  {:16} {:6.2}{marker}",
                s.t.as_secs_f64(),
                s.ap_channel.to_string(),
                mbps
            );
        }
        last = Some(s.ap_channel);
    }
    println!(
        "\nper-client goodput: {:?} Mbps, aggregate {:.2} Mbps",
        out.per_client_mbps
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        out.aggregate_mbps
    );
    println!(
        "incumbent violations: {} (the protocol never transmitted over the mic)",
        out.violations
    );
}
