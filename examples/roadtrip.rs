//! Roadtrip: drive a white-space device across two TV markets and watch
//! the geo-location database reshape the available spectrum — and the
//! channel WhiteFi would pick — kilometre by kilometre.
//!
//! ```sh
//! cargo run --release --example roadtrip
//! ```

use whitefi::{select_channel, NodeReport};
use whitefi_spectrum::{AirtimeVector, GeoDatabase, Location, StationRecord, UhfChannel};

fn main() {
    // Two metro areas 240 km apart, a few stations each.
    let mut db = GeoDatabase::new();
    for (ch, erp) in [(2usize, 1000.0), (6, 800.0), (11, 600.0), (15, 400.0)] {
        db.register(StationRecord {
            channel: UhfChannel::from_index(ch),
            site: Location::new(0.0, 0.0),
            erp_kw: erp,
        });
    }
    for (ch, erp) in [(3usize, 1000.0), (11, 900.0), (22, 700.0), (27, 500.0)] {
        db.register(StationRecord {
            channel: UhfChannel::from_index(ch),
            site: Location::new(240.0, 0.0),
            erp_kw: erp,
        });
    }

    println!("driving 240 km between two markets; database-derived maps:\n");
    println!("  km   free  widest  map (X = protected)                 WhiteFi pick");
    let mut last_pick = None;
    for step in 0..=24 {
        let x = step as f64 * 10.0;
        let map = db.query(Location::new(x, 0.0));
        let report = NodeReport {
            map,
            airtime: AirtimeVector::idle(),
        };
        let pick = select_channel(&report, &[]).map(|(c, _)| c);
        let marker = if pick != last_pick {
            "  <-- new channel"
        } else {
            ""
        };
        println!(
            "{:4.0}   {:4}  {:5}   {}  {}{}",
            x,
            map.free_count(),
            map.widest_fragment(),
            map,
            pick.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            marker
        );
        last_pick = pick;
    }

    println!("\nmidway the device sits outside both protection contours and can run 20 MHz;");
    println!("near either market the database forces it off the local stations' channels.");
    println!("(the FCC's database mechanism, §3 — complementing the sensing path)");
}
