//! Roadtrip: drive a white-space device across two TV markets and watch
//! the geo-location database reshape the available spectrum — and the
//! channel WhiteFi would pick — kilometre by kilometre. The markets and
//! route are data: `scenarios/roadtrip.ron`.
//!
//! ```sh
//! cargo run --release --example roadtrip
//! ```

use whitefi::scenario_file::{run_roadtrip, ScenarioDoc};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/roadtrip.ron");

fn main() {
    let doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    let ScenarioDoc::Roadtrip(doc) = doc else {
        panic!("roadtrip.ron must be a Roadtrip program");
    };

    println!("driving 240 km between two markets; database-derived maps:\n");
    println!("  km   free  widest  map (X = protected)                 WhiteFi pick");
    let mut last_pick = None;
    for step in run_roadtrip(&doc) {
        let marker = if step.pick != last_pick {
            "  <-- new channel"
        } else {
            ""
        };
        println!(
            "{:4.0}   {:4}  {:5}   {}  {}{}",
            step.x_km,
            step.map.free_count(),
            step.map.widest_fragment(),
            step.map,
            step.pick
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            marker
        );
        last_pick = step.pick;
    }

    println!("\nmidway the device sits outside both protection contours and can run 20 MHz;");
    println!("near either market the database forces it off the local stations' channels.");
    println!("(the FCC's database mechanism, §3 — complementing the sensing path)");
}
