//! A day on campus: lecture-hall wireless mics flicker on and off across
//! the band while a WhiteFi AP serves mobile clients — the §2.3 temporal
//! variation scenario at scale, with randomized mic schedules. The whole
//! day — map, mic storm process, neighbour traffic, contrast run — is
//! declared in `scenarios/campus_day.ron`.
//!
//! ```sh
//! cargo run --release --example campus_day [seed]
//! ```

use whitefi::driver::run_fixed;
use whitefi::scenario_file::CompiledCase;

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/campus_day.ron");

fn main() {
    let mut doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    if let Some(seed) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        doc = doc.with_seed(seed);
    }
    let Some(CompiledCase::SingleAp(case)) = doc.compile_sim() else {
        panic!("campus_day.ron must be a single-AP scenario");
    };
    let scenario = &case.scenario;
    let map = scenario.ap_map;
    let horizon_s = (scenario.warmup + scenario.duration).as_secs_f64();
    println!("campus map: {map}");
    println!(
        "simulating {horizon_s:.0}s with random lecture-hall mics (seed {})\n",
        scenario.seed
    );

    // The sampled mics (each free channel hosts one with p=0.5, on ~20%
    // of the time in ~10 s bursts — over-provisioned lecture rooms,
    // §2.3) were drawn by the loader from the scenario seed.
    let incumbents = scenario
        .ap_extra_incumbents
        .clone()
        .expect("the storm always populates the AP incumbent set");
    println!(
        "{} mics placed; total mic on-time {:.0}s across the band",
        incumbents.mics.len(),
        incumbents
            .mics
            .iter()
            .map(|m| m.schedule.total_on() as f64 / 1e9)
            .sum::<f64>()
    );

    let out = case.run();

    // Channel-residency summary.
    let mut switches = 0;
    let mut last = None;
    let mut residency: Vec<(String, u64)> = Vec::new();
    for s in &out.samples {
        if last != Some(s.ap_channel) {
            switches += 1;
            residency.push((s.ap_channel.to_string(), 0));
        }
        if let Some(r) = residency.last_mut() {
            r.1 += 1;
        }
        last = Some(s.ap_channel);
    }
    println!("\nchannel residency (1 s samples):");
    for (ch, secs) in &residency {
        println!("  {ch:16} {secs:4} s");
    }
    println!("\nchannel switches: {}", switches - 1);
    println!("aggregate goodput: {:.2} Mbps", out.aggregate_mbps);
    println!("incumbent violations: {}", out.violations);
    let mic_secs: f64 = incumbents
        .mics
        .iter()
        .map(|m| m.schedule.total_on() as f64 / 1e9)
        .sum();
    println!(
        "\n=> {mic_secs:.0}s of mic activity, {} violations: WhiteFi signalled every move on backup channels",
        out.violations
    );
    assert_eq!(out.violations, 0, "protocol violation!");

    // How would a static network have fared? A pinned 20 MHz network on
    // the same day ignores the mics entirely.
    let favourite = case
        .contrast_fixed
        .expect("campus_day.ron declares a contrast channel");
    let pinned = run_fixed(scenario, favourite);
    println!(
        "static 20 MHz network on the same day: {:.2} Mbps with {} incumbent violations — it tramples the mics",
        pinned.aggregate_mbps, pinned.violations
    );
}
