//! A day on campus: lecture-hall wireless mics flicker on and off across
//! the band while a WhiteFi AP serves mobile clients — the §2.3 temporal
//! variation scenario at scale, with randomized mic schedules.
//!
//! ```sh
//! cargo run --release --example campus_day [seed]
//! ```

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_phy::SimDuration;
use whitefi_repro::campus_sim_map;
use whitefi_spectrum::{IncumbentSet, MicSchedule, UhfChannel, WfChannel, Width, WirelessMic};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);
    let map = campus_sim_map();
    let horizon_s = 120u64;
    println!("campus map: {map}");
    println!("simulating {horizon_s}s with random lecture-hall mics (seed {seed})\n");

    // Random mics: each free channel hosts a mic that is on ~20% of the
    // time in bursts of ~10 s (over-provisioned lecture rooms, §2.3).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut incumbents = IncumbentSet::default();
    for ch in map.free_channels() {
        if rng.gen_bool(0.5) {
            let schedule = MicSchedule::sample(
                &mut rng,
                horizon_s * 1_000_000_000,
                40.0, // mean off (s)
                10.0, // mean on (s)
            );
            incumbents.mics.push(WirelessMic::new(ch, schedule));
        }
    }
    println!(
        "{} mics placed; total mic on-time {:.0}s across the band",
        incumbents.mics.len(),
        incumbents
            .mics
            .iter()
            .map(|m| m.schedule.total_on() as f64 / 1e9)
            .sum::<f64>()
    );

    let mut scenario = Scenario::new(seed, map, 3);
    scenario.warmup = SimDuration::from_secs(2);
    scenario.duration = SimDuration::from_secs(horizon_s - 2);
    scenario.sample_interval = SimDuration::from_secs(1);
    scenario.ap_extra_incumbents = Some(incumbents.clone());
    for c in scenario.client_extra_incumbents.iter_mut() {
        *c = Some(incumbents.clone());
    }
    // Light neighbourly background on two channels.
    for ch in [10usize, 16] {
        scenario.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(20),
            },
        });
    }

    let out = run_whitefi(&scenario, None);

    // Channel-residency summary.
    let mut switches = 0;
    let mut last = None;
    let mut residency: Vec<(String, u64)> = Vec::new();
    for s in &out.samples {
        if last != Some(s.ap_channel) {
            switches += 1;
            residency.push((s.ap_channel.to_string(), 0));
        }
        if let Some(r) = residency.last_mut() {
            r.1 += 1;
        }
        last = Some(s.ap_channel);
    }
    println!("\nchannel residency (1 s samples):");
    for (ch, secs) in &residency {
        println!("  {ch:16} {secs:4} s");
    }
    println!("\nchannel switches: {}", switches - 1);
    println!("aggregate goodput: {:.2} Mbps", out.aggregate_mbps);
    println!("incumbent violations: {}", out.violations);
    let mic_secs: f64 = incumbents
        .mics
        .iter()
        .map(|m| m.schedule.total_on() as f64 / 1e9)
        .sum();
    println!(
        "\n=> {mic_secs:.0}s of mic activity, {} violations: WhiteFi signalled every move on backup channels",
        out.violations
    );
    assert_eq!(out.violations, 0, "protocol violation!");

    // How would a static network have fared? A pinned 20 MHz network on
    // the same day ignores the mics entirely.
    let favourite = UhfChannel::from_index(4);
    let pinned = whitefi::driver::run_fixed(
        &scenario,
        WfChannel::new(favourite, Width::W20).expect("channel 4 at 20 MHz fits the band"),
    );
    println!(
        "static 20 MHz network on the same day: {:.2} Mbps with {} incumbent violations — it tramples the mics",
        pinned.aggregate_mbps, pinned.violations
    );
}
