//! Discovery race: the three AP-discovery algorithms head-to-head over
//! the full sweep of fragment widths — an interactive rendering of
//! Figure 8, including the L-SIFT/J-SIFT crossover near 10 channels.
//! The sweep parameters are data: `scenarios/discovery_race.ron`.
//!
//! ```sh
//! cargo run --release --example discovery_race
//! ```

// Rounded mean dwell counts become bar lengths; the f64→usize floor is
// the intended quantization.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use whitefi::scenario_file::{run_discovery_sweep, ScenarioDoc};
use whitefi::{expected_scans_j_sift, expected_scans_l_sift};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/discovery_race.ron");

fn main() {
    let doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    let ScenarioDoc::DiscoverySweep(doc) = doc else {
        panic!("discovery_race.ron must be a DiscoverySweep program");
    };
    let trials = doc.trials;
    println!("mean discovery dwells vs fragment width ({trials} random placements each)\n");
    println!("width  baseline   L-SIFT   J-SIFT   winner   bar (J=#, L=+)");
    let mut crossover = None;
    let mut prev_winner = 'L';
    for row in run_discovery_sweep(&doc) {
        let (width, b, l, j) = (row.width, row.baseline, row.l_sift, row.j_sift);
        let winner = if l <= j { 'L' } else { 'J' };
        if prev_winner == 'L' && winner == 'J' && crossover.is_none() && width > 2 {
            crossover = Some(width);
        }
        prev_winner = winner;
        let bar: String = {
            let jn = j.round() as usize;
            let ln = l.round() as usize;
            (0..ln.max(jn))
                .map(|i| {
                    if i < jn && i < ln {
                        '*'
                    } else if i < jn {
                        '#'
                    } else {
                        '+'
                    }
                })
                .collect()
        };
        println!("{width:5}  {b:8.1}  {l:7.1}  {j:7.1}     {winner}     {bar}");
    }
    if let Some(c) = crossover {
        println!("\nJ-SIFT overtakes L-SIFT at fragment width {c} (theory: 10).");
    }
    println!(
        "closed forms at NC=30: L = {:.1}, J = {:.2}",
        expected_scans_l_sift(30),
        expected_scans_j_sift(30, 3)
    );
}
