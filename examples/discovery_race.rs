//! Discovery race: the three AP-discovery algorithms head-to-head over
//! the full sweep of fragment widths — an interactive rendering of
//! Figure 8, including the L-SIFT/J-SIFT crossover near 10 channels.
//!
//! ```sh
//! cargo run --release --example discovery_race
//! ```

// Rounded mean dwell counts become bar lengths; the f64→usize floor is
// the intended quantization.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use whitefi::{
    baseline_discovery, expected_scans_j_sift, expected_scans_l_sift, j_sift_discovery,
    l_sift_discovery, SyntheticOracle,
};
use whitefi_spectrum::{SpectrumMap, UhfChannel};

fn main() {
    let trials = 200;
    println!("mean discovery dwells vs fragment width ({trials} random placements each)\n");
    println!("width  baseline   L-SIFT   J-SIFT   winner   bar (J=#, L=+)");
    let mut crossover = None;
    let mut prev_winner = 'L';
    for width in 1..=30usize {
        let mut map = SpectrumMap::all_occupied();
        for i in 0..width {
            map.set_free(UhfChannel::from_index(i));
        }
        let placements = map.available_channels();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(width as u64);
        let mut sums = [0.0f64; 3];
        for _ in 0..trials {
            let ap = placements[rng.gen_range(0..placements.len())];
            let mk = |s| SyntheticOracle::new(ap, rand_chacha::ChaCha8Rng::seed_from_u64(s));
            sums[0] += baseline_discovery(&mut mk(rng.gen()), map)
                .expect("map has free channels")
                .scans as f64;
            sums[1] += l_sift_discovery(&mut mk(rng.gen()), map)
                .expect("map has free channels")
                .scans as f64;
            sums[2] += j_sift_discovery(&mut mk(rng.gen()), map)
                .expect("map has free channels")
                .scans as f64;
        }
        let [b, l, j] = sums.map(|s| s / trials as f64);
        let winner = if l <= j { 'L' } else { 'J' };
        if prev_winner == 'L' && winner == 'J' && crossover.is_none() && width > 2 {
            crossover = Some(width);
        }
        prev_winner = winner;
        let bar: String = {
            let jn = j.round() as usize;
            let ln = l.round() as usize;
            (0..ln.max(jn))
                .map(|i| {
                    if i < jn && i < ln {
                        '*'
                    } else if i < jn {
                        '#'
                    } else {
                        '+'
                    }
                })
                .collect()
        };
        println!("{width:5}  {b:8.1}  {l:7.1}  {j:7.1}     {winner}     {bar}");
    }
    if let Some(c) = crossover {
        println!("\nJ-SIFT overtakes L-SIFT at fragment width {c} (theory: 10).");
    }
    println!(
        "closed forms at NC=30: L = {:.1}, J = {:.2}",
        expected_scans_l_sift(30),
        expected_scans_j_sift(30, 3)
    );
}
