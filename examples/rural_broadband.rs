//! Rural broadband: the motivating deployment for white spaces — long
//! fragments, few incumbents, kilometre ranges. Contrasts the goodput a
//! WhiteFi network extracts from a rural vs an urban spectrum map, and
//! shows discovery getting dramatically cheaper where spectrum is wide
//! (the Figure 9 effect).
//!
//! ```sh
//! cargo run --release --example rural_broadband [seed]
//! ```

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use whitefi::driver::{run_whitefi, Scenario};
use whitefi::{baseline_discovery, j_sift_discovery, SyntheticOracle};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{Locale, LocaleClass};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1848);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

    for class in [LocaleClass::Rural, LocaleClass::Urban] {
        let locale = Locale::sample(class, &mut rng);
        println!("== {} locale ==", class.label());
        println!("map: {}", locale.map);
        println!(
            "free channels: {}, widest fragment: {} channels ({} MHz)",
            locale.map.free_count(),
            locale.map.widest_fragment(),
            locale.map.widest_fragment() * 6
        );

        // Network throughput: 4 farmhouse clients, backlogged downlink.
        let mut scenario = Scenario::new(seed ^ class.label().len() as u64, locale.map, 4);
        scenario.warmup = SimDuration::from_secs(1);
        scenario.duration = SimDuration::from_secs(5);
        let out = run_whitefi(&scenario, None);
        let final_ch = out.samples.last().expect("run produces samples").ap_channel;
        println!(
            "WhiteFi settles on {final_ch}: aggregate {:.2} Mbps across 4 clients",
            out.aggregate_mbps
        );

        // Discovery cost for a new client joining this network.
        let placements = locale.map.available_channels();
        if placements.is_empty() {
            println!("(no admissible channel — nothing to join)\n");
            continue;
        }
        let mut trials_base = Vec::new();
        let mut trials_j = Vec::new();
        for t in 0..40 {
            // A fresh random AP placement per trial, so the deterministic
            // scan orders are averaged over positions.
            let ap = placements[rng.gen_range(0..placements.len())];
            let mut o = SyntheticOracle::new(ap, rand_chacha::ChaCha8Rng::seed_from_u64(seed + t));
            trials_base.push(
                baseline_discovery(&mut o, locale.map)
                    .expect("placements nonempty")
                    .time
                    .as_secs_f64(),
            );
            let mut o = SyntheticOracle::new(ap, rand_chacha::ChaCha8Rng::seed_from_u64(seed + t));
            trials_j.push(
                j_sift_discovery(&mut o, locale.map)
                    .expect("placements nonempty")
                    .time
                    .as_secs_f64(),
            );
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "joining client discovery: non-SIFT baseline {:.2}s, J-SIFT {:.2}s ({:.1}x faster)\n",
            mean(&trials_base),
            mean(&trials_j),
            mean(&trials_base) / mean(&trials_j)
        );
    }

    println!("=> wide rural fragments mean wider channels (more Mbps), and the SIFT");
    println!("   discovery advantage grows with contiguity (Figure 9): on shattered urban");
    println!("   maps a single draw can even favour the exhaustive baseline, while rural");
    println!("   spectrum — the 802.22/WhiteFi target regime — rewards J-SIFT heavily.");
}
