//! Rural broadband: the motivating deployment for white spaces — long
//! fragments, few incumbents, kilometre ranges. Contrasts the goodput a
//! WhiteFi network extracts from a rural vs an urban spectrum map, and
//! shows discovery getting dramatically cheaper where spectrum is wide
//! (the Figure 9 effect). The program is declared in
//! `scenarios/rural_broadband.ron`.
//!
//! ```sh
//! cargo run --release --example rural_broadband [seed]
//! ```

use rand_chacha::rand_core::SeedableRng;
use whitefi::driver::run_whitefi;
use whitefi::scenario_file::{locale_contrast_phases, ScenarioDoc};
use whitefi::{baseline_discovery, j_sift_discovery, SyntheticOracle};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/rural_broadband.ron");

fn main() {
    let mut doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    if let Some(seed) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        doc = doc.with_seed(seed);
    }
    let ScenarioDoc::LocaleContrast(doc) = doc else {
        panic!("rural_broadband.ron must be a LocaleContrast program");
    };

    for phase in locale_contrast_phases(&doc) {
        let locale = &phase.locale;
        println!("== {} locale ==", phase.class.label());
        println!("map: {}", locale.map);
        println!(
            "free channels: {}, widest fragment: {} channels ({} MHz)",
            locale.map.free_count(),
            locale.map.widest_fragment(),
            locale.map.widest_fragment() * 6
        );

        // Network throughput: 4 farmhouse clients, backlogged downlink.
        let out = run_whitefi(&phase.scenario, None);
        let final_ch = out.samples.last().expect("run produces samples").ap_channel;
        println!(
            "WhiteFi settles on {final_ch}: aggregate {:.2} Mbps across {} clients",
            out.aggregate_mbps, doc.clients
        );

        // Discovery cost for a new client joining this network. The
        // trial placements were drawn by the interpreter from the same
        // shared stream the hand-coded loop used.
        if phase.trials.is_empty() {
            println!("(no admissible channel — nothing to join)\n");
            continue;
        }
        let mut trials_base = Vec::new();
        let mut trials_j = Vec::new();
        for trial in &phase.trials {
            let mut o = SyntheticOracle::new(
                trial.ap,
                rand_chacha::ChaCha8Rng::seed_from_u64(trial.oracle_seed),
            );
            trials_base.push(
                baseline_discovery(&mut o, locale.map)
                    .expect("placements nonempty")
                    .time
                    .as_secs_f64(),
            );
            let mut o = SyntheticOracle::new(
                trial.ap,
                rand_chacha::ChaCha8Rng::seed_from_u64(trial.oracle_seed),
            );
            trials_j.push(
                j_sift_discovery(&mut o, locale.map)
                    .expect("placements nonempty")
                    .time
                    .as_secs_f64(),
            );
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "joining client discovery: non-SIFT baseline {:.2}s, J-SIFT {:.2}s ({:.1}x faster)\n",
            mean(&trials_base),
            mean(&trials_j),
            mean(&trials_base) / mean(&trials_j)
        );
    }

    println!("=> wide rural fragments mean wider channels (more Mbps), and the SIFT");
    println!("   discovery advantage grows with contiguity (Figure 9): on shattered urban");
    println!("   maps a single draw can even favour the exhaustive baseline, while rural");
    println!("   spectrum — the 802.22/WhiteFi target regime — rewards J-SIFT heavily.");
}
