//! Mic storm: adversarial failure injection for the disconnection
//! protocol. Wireless mics chase the network from channel to channel —
//! including striking the *backup* channel — while we verify the two
//! protocol invariants: zero transmissions over a live mic, and recovery
//! whenever any channel remains. The storm itself is data:
//! `scenarios/mic_storm.ron`.
//!
//! ```sh
//! cargo run --release --example mic_storm [seed]
//! ```

use whitefi::scenario_file::CompiledCase;

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/mic_storm.ron");

fn main() {
    let mut doc = whitefi::load(SCENARIO).unwrap_or_else(|e| panic!("{e}"));
    if let Some(seed) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        doc = doc.with_seed(seed);
    }
    let Some(CompiledCase::SingleAp(case)) = doc.compile_sim() else {
        panic!("mic_storm.ron must be a single-AP scenario");
    };

    let map = case.scenario.ap_map;
    println!("map: {map}");
    println!(
        "free fragments: 20 MHz (TV 26–30), 10 MHz (TV 33–35), 5 MHz (TV 39), 5 MHz (TV 48)\n"
    );

    // The storm (see the scenario file): mics strike, in order,
    //   t=4s  the 20 MHz fragment centre (TV 28)       — main channel dies
    //   t=8s  the 10 MHz fragment centre (TV 34)       — next refuge dies
    //   t=12s TV 39 — which is the network's likely backup/5 MHz refuge
    // leaving TV 48 as the only safe harbour, then releases everything.
    let out = case.run();

    println!("  t(s)   AP channel        goodput(Mbps)");
    let mut last = None;
    for s in &out.samples {
        let mbps = s.bytes_delta as f64 * 8.0 / 0.5 / 1e6;
        if last != Some(s.ap_channel) {
            println!(
                "  {:5.1}  {:16} {:6.2}   <-- switch",
                s.t.as_secs_f64(),
                s.ap_channel.to_string(),
                mbps
            );
        }
        last = Some(s.ap_channel);
    }

    // Recovery accounting per phase.
    let phase_bytes = |from: u64, to: u64| -> u64 {
        out.samples
            .iter()
            .filter(|s| {
                let t = s.t.as_secs_f64();
                t > from as f64 && t <= to as f64
            })
            .map(|s| s.bytes_delta)
            .sum()
    };
    println!("\nphase traffic:");
    for (label, from, to) in [
        ("clean start      [1–4s]", 1, 4),
        ("after strike 1   [5–8s]", 5, 8),
        ("after strike 2   [9–12s]", 9, 12),
        ("after strike 3   [14–30s]", 14, 30),
        ("mics released    [31–40s]", 31, 40),
    ] {
        println!("  {label}: {:.2} MB", phase_bytes(from, to) as f64 / 1e6);
    }

    println!("\nincumbent violations: {}", out.violations);
    assert_eq!(
        out.violations, 0,
        "the network transmitted over a live microphone!"
    );
    let tail: u64 = phase_bytes(31, 40);
    assert!(tail > 0, "network never recovered after the storm");
    println!("=> survived a three-mic storm with zero violations and full recovery.");
}
