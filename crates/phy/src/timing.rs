//! Width-scaled PHY and MAC timing.
//!
//! WhiteFi uses the channel-width adaptation technique of Chandra et al.
//! (SIGCOMM 2008 — the paper's reference [15]): the Wi-Fi card's PLL clock
//! is scaled so the same 802.11 OFDM PHY runs at 5, 10 or 20 MHz. Scaling
//! the clock by `s = 20 MHz / W` stretches *every* PHY time constant by
//! `s` and divides the data rate by `s`:
//!
//! * symbol period, preamble, SIFS, slot time, and hence DIFS all grow by
//!   `s` — "SIFS values change across different channel widths and the
//!   lowest SIFS value in our system is for a 20 MHz transmission, which is
//!   10 µs" (§4.2.1);
//! * at the paper's single 6 Mbps (20 MHz reference) rate, a 10 MHz channel
//!   carries 3 Mbps and a 5 MHz channel 1.5 Mbps, so "halving the channel
//!   width also halves the effective transmission rate" and doubles every
//!   packet duration (Figure 5, Figure 6).
//!
//! Reference constants are 802.11a at 6 Mbps: 4 µs symbol carrying 24 data
//! bits, 20 µs PLCP preamble+header, 9 µs slot, 10 µs SIFS.

use crate::time::SimDuration;
use whitefi_spectrum::Width;

/// MAC-layer acknowledgement frame size: "the acknowledgement packet is
/// the smallest MAC layer packet (14 bytes)" (§4.2.1).
pub const ACK_BYTES: usize = 14;

/// CTS(-to-self) frame size; same 14-byte control frame footprint.
pub const CTS_BYTES: usize = 14;

/// Beacon frame size (SSID, capabilities, and WhiteFi's backup-channel
/// advertisement).
pub const BEACON_BYTES: usize = 80;

/// Chirp frame payload: the chirping node's spectrum map and identity
/// (§4.3).
pub const CHIRP_BYTES: usize = 40;

/// Bytes of a chirp frame encoding identity `slot` in its on-air length:
/// each slot adds 24 bytes (eight 5 MHz OFDM symbols ≈ 125 SDR samples),
/// far beyond SIFT's matching tolerance — the paper's "low-bitrate
/// OOK-modulated channel" built on SIFT (§4.3).
pub fn chirp_bytes_for_slot(slot: u8) -> usize {
    CHIRP_BYTES + slot as usize * 24
}

/// 20 MHz reference constants (802.11a, 6 Mbps).
mod reference {
    /// OFDM symbol period at 20 MHz, nanoseconds.
    pub const SYMBOL_NS: u64 = 4_000;
    /// Data bits per symbol at 6 Mbps (24 bits / 4 µs).
    pub const BITS_PER_SYMBOL: u64 = 24;
    /// PLCP preamble + header at 20 MHz, nanoseconds.
    pub const PREAMBLE_NS: u64 = 20_000;
    /// Slot time at 20 MHz, nanoseconds.
    pub const SLOT_NS: u64 = 9_000;
    /// SIFS at 20 MHz, nanoseconds (§4.2.1: 10 µs).
    pub const SIFS_NS: u64 = 10_000;
    /// PHY service bits prepended to the PSDU (802.11a SERVICE field).
    pub const SERVICE_BITS: u64 = 16;
    /// Convolutional-coder tail bits appended to the PSDU.
    pub const TAIL_BITS: u64 = 6;
}

/// Width-scaled PHY timing for one channel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyTiming {
    width: Width,
    scale: u64,
}

impl PhyTiming {
    /// Timing for the given channel width.
    pub fn for_width(width: Width) -> Self {
        Self {
            width,
            scale: width.scale() as u64,
        }
    }

    /// The channel width this timing describes.
    pub fn width(self) -> Width {
        self.width
    }

    /// Clock scale factor relative to 20 MHz (1, 2, or 4).
    pub fn scale(self) -> u64 {
        self.scale
    }

    /// OFDM symbol period.
    pub fn symbol(self) -> SimDuration {
        SimDuration::from_nanos(reference::SYMBOL_NS * self.scale)
    }

    /// PLCP preamble + header duration.
    pub fn preamble(self) -> SimDuration {
        SimDuration::from_nanos(reference::PREAMBLE_NS * self.scale)
    }

    /// SIFS: 10 µs at 20 MHz, 20 µs at 10 MHz, 40 µs at 5 MHz.
    pub fn sifs(self) -> SimDuration {
        SimDuration::from_nanos(reference::SIFS_NS * self.scale)
    }

    /// Backoff slot time.
    pub fn slot(self) -> SimDuration {
        SimDuration::from_nanos(reference::SLOT_NS * self.scale)
    }

    /// DIFS = SIFS + 2 × slot.
    pub fn difs(self) -> SimDuration {
        self.sifs() + self.slot() * 2
    }

    /// Effective data rate in Mbps (6 at 20 MHz, 3 at 10, 1.5 at 5).
    pub fn data_rate_mbps(self) -> f64 {
        6.0 / self.scale as f64
    }

    /// Airtime of a frame carrying `bytes` bytes of MAC payload:
    /// preamble + ceil((service + 8·bytes + tail) / bits-per-symbol)
    /// symbols.
    pub fn frame_duration(self, bytes: usize) -> SimDuration {
        let bits = reference::SERVICE_BITS + 8 * bytes as u64 + reference::TAIL_BITS;
        let symbols = bits.div_ceil(reference::BITS_PER_SYMBOL);
        self.preamble() + self.symbol() * symbols
    }

    /// Duration of an ACK frame at this width.
    pub fn ack_duration(self) -> SimDuration {
        self.frame_duration(ACK_BYTES)
    }

    /// Duration of a CTS-to-self frame at this width.
    pub fn cts_duration(self) -> SimDuration {
        self.frame_duration(CTS_BYTES)
    }

    /// Duration of a beacon frame at this width.
    pub fn beacon_duration(self) -> SimDuration {
        self.frame_duration(BEACON_BYTES)
    }

    /// Full data + SIFS + ACK exchange airtime for a `bytes`-byte frame.
    pub fn exchange_duration(self, bytes: usize) -> SimDuration {
        self.frame_duration(bytes) + self.sifs() + self.ack_duration()
    }

    /// The smallest SIFS over all widths — SIFT's moving-average window
    /// must stay below this (§4.2.1).
    pub fn min_sifs() -> SimDuration {
        PhyTiming::for_width(Width::W20).sifs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sifs_scales_with_width() {
        assert_eq!(PhyTiming::for_width(Width::W20).sifs().as_micros(), 10);
        assert_eq!(PhyTiming::for_width(Width::W10).sifs().as_micros(), 20);
        assert_eq!(PhyTiming::for_width(Width::W5).sifs().as_micros(), 40);
        assert_eq!(PhyTiming::min_sifs().as_micros(), 10);
    }

    #[test]
    fn data_rates_match_paper() {
        assert_eq!(PhyTiming::for_width(Width::W20).data_rate_mbps(), 6.0);
        assert_eq!(PhyTiming::for_width(Width::W10).data_rate_mbps(), 3.0);
        assert_eq!(PhyTiming::for_width(Width::W5).data_rate_mbps(), 1.5);
    }

    #[test]
    fn ack_duration_at_20mhz() {
        // 14 bytes → 16 + 112 + 6 = 134 bits → 6 symbols → 24 µs + 20 µs
        // preamble = 44 µs.
        assert_eq!(
            PhyTiming::for_width(Width::W20).ack_duration().as_micros(),
            44
        );
        // Durations double per halving.
        assert_eq!(
            PhyTiming::for_width(Width::W10).ack_duration().as_micros(),
            88
        );
        assert_eq!(
            PhyTiming::for_width(Width::W5).ack_duration().as_micros(),
            176
        );
    }

    #[test]
    fn narrowest_ack_shorter_than_widest_data() {
        // "the duration of an acknowledgement packet at the narrowest width
        // of 5 MHz is still much smaller than any data packet sent at
        // 20 MHz" (§4.2.1) — for data packets of realistic size.
        let ack5 = PhyTiming::for_width(Width::W5).ack_duration();
        let data20 = PhyTiming::for_width(Width::W20).frame_duration(132);
        assert!(ack5 < data20, "ack5={ack5} data20={data20}");
    }

    #[test]
    fn frame_duration_doubles_as_width_halves() {
        for bytes in [14, 132, 1000, 1500] {
            let d20 = PhyTiming::for_width(Width::W20).frame_duration(bytes);
            let d10 = PhyTiming::for_width(Width::W10).frame_duration(bytes);
            let d5 = PhyTiming::for_width(Width::W5).frame_duration(bytes);
            assert_eq!(d10.as_nanos(), 2 * d20.as_nanos());
            assert_eq!(d5.as_nanos(), 4 * d20.as_nanos());
        }
    }

    #[test]
    fn fig5_data_ack_windows() {
        // Figure 5 shows a 132-byte data+ACK exchange fitting in ~600 µs at
        // 20 MHz, ~1200 µs at 10 MHz, ~2500 µs at 5 MHz. Our exchange
        // durations must scale the same way and fit those windows.
        let ex = |w| PhyTiming::for_width(w).exchange_duration(132).as_micros();
        assert!(ex(Width::W20) < 600, "{}", ex(Width::W20));
        assert!(ex(Width::W10) < 1200);
        assert!(ex(Width::W5) < 2500);
        assert_eq!(ex(Width::W10), 2 * ex(Width::W20));
        assert_eq!(ex(Width::W5), 4 * ex(Width::W20));
    }

    #[test]
    fn difs_composition() {
        let t = PhyTiming::for_width(Width::W20);
        assert_eq!(t.difs().as_micros(), 10 + 2 * 9);
    }

    #[test]
    fn thousand_byte_packet_duration() {
        // 1000 B → 16+8000+6 = 8022 bits → 335 symbols (334.25 rounded up)
        // → 1340 µs + 20 µs = 1360 µs at 20 MHz.
        let d = PhyTiming::for_width(Width::W20).frame_duration(1000);
        assert_eq!(d.as_micros(), 1360);
    }
}
