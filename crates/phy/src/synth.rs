//! Synthesis of raw amplitude sample traces.
//!
//! The KNOWS scanner "samples a bandwidth of 1 MHz around F at
//! 1 MSamples/sec. Each sample represents 1.024 µs of raw RF signal as an
//! (I,Q) pair; the signal amplitude is computed as sqrt(I² + Q²). The USRP
//! delivers blocks of 2048 samples at a time" (§4.2.1). SIFT consumes only
//! the amplitude series, so this synthesizer produces amplitude samples
//! directly from a schedule of bursts.
//!
//! Two waveform details from Figure 5 matter for fidelity:
//!
//! * the amplitude "might fall to very low values even in the middle of
//!   the packet transmission" — modelled as per-sample multiplicative
//!   ripple — which is exactly why SIFT needs its moving average;
//! * "the initial portion of a packet at 5 MHz channel width is sent at a
//!   lower amplitude than the rest of the packet", which makes SIFT
//!   "sometimes fail to accurately match the length of the detected packet"
//!   (§5.1) — modelled as a random low-amplitude head applied to 5 MHz
//!   bursts only.
//!
//! The synthesizer runs on the batched [`crate::kernels`] and exists in
//! two forms with one randomness contract:
//!
//! * [`Synthesizer::synthesize`] / [`Synthesizer::synthesize_into`] fill
//!   a whole capture at once;
//! * [`SynthStream`] (from [`Synthesizer::stream`]) emits the identical
//!   trace one USRP-sized block at a time, never materializing the
//!   capture.
//!
//! The contract that makes them bit-identical: when the configuration is
//! stochastic at all, exactly **one** `u64` is drawn from the caller's
//! RNG per capture, seeding a family of derived ChaCha8 streams — stream
//! 0 for receiver noise, stream `1 + i` for input burst `i`. Each
//! burst's head/ripple draws happen in that burst's own stream in sample
//! order, and noise draws happen in stream 0 in sample order (Box–Muller
//! pairs, both halves used, odd tails carried), so no draw's position
//! depends on block boundaries or on which other bursts exist. An ideal
//! (ripple-free, noiseless, headless) configuration consumes no
//! randomness whatsoever.

use crate::attenuation::NoiseModel;
use crate::kernels;
use crate::time::{SimDuration, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use whitefi_spectrum::Width;

/// Nanoseconds represented by one SDR sample (1 MS/s ⇒ 1.024 µs).
pub const SAMPLE_NS: u64 = 1_024;

/// Samples per USRP block.
pub const BLOCK_SAMPLES: usize = 2_048;

/// Converts a duration to a (fractional) number of samples.
pub fn duration_to_samples(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / SAMPLE_NS as f64
}

/// Converts a sample count to the duration it spans.
pub fn samples_to_duration(samples: usize) -> SimDuration {
    SimDuration::from_nanos(samples as u64 * SAMPLE_NS)
}

/// What a burst of RF energy is, from the transmitter's point of view.
///
/// SIFT cannot decode frames; the kind only drives waveform details (the
/// 5 MHz head droop) and lets tests assert against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BurstKind {
    /// A data frame.
    Data,
    /// A MAC acknowledgement.
    Ack,
    /// An AP beacon.
    Beacon,
    /// A CTS-to-self (sent one SIFS after each beacon so SIFT can match
    /// beacons like data/ACK pairs — §4.2.1).
    Cts,
    /// A disconnection chirp (§4.3).
    Chirp,
}

/// One burst of energy to synthesize, positioned relative to the capture
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Start time relative to the capture window origin.
    pub start: SimTime,
    /// On-air duration.
    pub duration: SimDuration,
    /// Channel width the frame was sent at.
    pub width: Width,
    /// Received amplitude (after any attenuation), linear units.
    pub amplitude: f64,
    /// Frame kind (ground truth, not visible to SIFT).
    pub kind: BurstKind,
}

/// Waveform-shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesizerConfig {
    /// Per-sample multiplicative ripple, uniform in `[ripple_low,
    /// ripple_high]` (mean must be ~1 to preserve calibration).
    pub ripple_low: f64,
    /// Upper ripple bound.
    pub ripple_high: f64,
    /// Fraction of a 5 MHz burst affected by the low-amplitude head.
    pub w5_head_fraction: f64,
    /// Mean of the per-burst head amplitude factor.
    pub w5_head_mean: f64,
    /// Standard deviation of the head amplitude factor.
    pub w5_head_sd: f64,
}

impl Default for SynthesizerConfig {
    fn default() -> Self {
        Self {
            ripple_low: 0.55,
            ripple_high: 1.45,
            w5_head_fraction: 0.15,
            w5_head_mean: 0.45,
            w5_head_sd: 0.15,
        }
    }
}

/// Amplitude-trace synthesizer.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    /// Waveform shape.
    pub config: SynthesizerConfig,
    /// Additive receiver noise.
    pub noise: NoiseModel,
}

impl Synthesizer {
    /// A synthesizer with default shape and noise.
    pub fn new() -> Self {
        Self {
            config: SynthesizerConfig::default(),
            noise: NoiseModel::default_model(),
        }
    }

    /// A noiseless, ripple-free synthesizer producing ideal rectangular
    /// envelopes (for exactness tests).
    pub fn ideal() -> Self {
        Self {
            config: SynthesizerConfig {
                ripple_low: 1.0,
                ripple_high: 1.0,
                w5_head_fraction: 0.0,
                w5_head_mean: 1.0,
                w5_head_sd: 0.0,
            },
            noise: NoiseModel::noiseless(),
        }
    }

    /// Whether this configuration draws any randomness at all. When
    /// false, synthesis consumes **nothing** from the caller's RNG.
    fn is_stochastic(&self) -> bool {
        self.config.ripple_low != self.config.ripple_high
            || self.noise.sigma != 0.0
            || self.config.w5_head_fraction > 0.0
    }

    /// Synthesizes the amplitude trace of a capture window of length
    /// `window`, containing the given bursts (positions relative to the
    /// window; bursts extending past either edge are clipped).
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        bursts: &[Burst],
        window: SimDuration,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.synthesize_into(bursts, window, rng, &mut out);
        out
    }

    /// [`Self::synthesize`] into a caller-owned buffer, bit-identical
    /// under the same RNG state. `out` is cleared and refilled; hot loops
    /// that synthesize thousands of windows reuse its allocation (the f64
    /// accumulation scratch is a thread-local, also reused).
    pub fn synthesize_into<R: Rng + ?Sized>(
        &self,
        bursts: &[Burst],
        window: SimDuration,
        rng: &mut R,
        out: &mut Vec<f32>,
    ) {
        use std::cell::RefCell;
        thread_local! {
            static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
        }
        let mut stream = self.stream(bursts, window, rng);
        out.clear();
        SCRATCH.with(|scratch| {
            let mut acc = scratch.borrow_mut();
            // One whole-window block: the same per-stream draw schedule
            // as block-at-a-time emission, so the trace is bit-identical
            // to draining a [`SynthStream`].
            stream.fill_into(&mut acc, out, stream.total_samples());
        });
    }

    /// Scalar reference for the whole synthesis pipeline: the same draw
    /// schedule and per-sample expressions over the `_ref` kernels, one
    /// sample at a time. Kept forever as the semantic contract; the
    /// differential suite asserts bit-identity with
    /// [`Self::synthesize`] and with [`SynthStream`] emission.
    pub fn synthesize_ref<R: Rng + ?Sized>(
        &self,
        bursts: &[Burst],
        window: SimDuration,
        rng: &mut R,
    ) -> Vec<f32> {
        let n = (window.as_nanos() / SAMPLE_NS) as usize;
        let base = if self.is_stochastic() {
            rng.gen::<u64>()
        } else {
            0
        };
        let mut acc = vec![0f64; n];
        let mut pending = clip_bursts(&self.config, bursts, n);
        pending.sort_by_key(|c| (c.start, c.stream));
        for c in &pending {
            let mut burst_rng = derive_stream(base, c.stream);
            let amp_head = c.amplitude * head_factor(&self.config, c.head_len, &mut burst_rng);
            let head_end = c.start + c.head_len;
            kernels::accumulate_ripple_ref(
                &mut acc[c.start..head_end],
                amp_head,
                self.config.ripple_low,
                self.config.ripple_high,
                &mut burst_rng,
            );
            kernels::accumulate_ripple_ref(
                &mut acc[head_end..c.end],
                c.amplitude,
                self.config.ripple_low,
                self.config.ripple_high,
                &mut burst_rng,
            );
        }
        let mut out = Vec::new();
        let mut noise_rng = derive_stream(base, 0);
        let mut carry = None;
        kernels::add_noise_ref(&acc, self.noise.sigma, &mut carry, &mut out, &mut noise_rng);
        out
    }

    /// Begins block-at-a-time synthesis of a capture window. Draws the
    /// single stream-family seed from `rng` up front (nothing at all for
    /// an ideal configuration), so the caller's RNG is released before
    /// the first block is emitted.
    pub fn stream<R: Rng + ?Sized>(
        &self,
        bursts: &[Burst],
        window: SimDuration,
        rng: &mut R,
    ) -> SynthStream {
        let n = (window.as_nanos() / SAMPLE_NS) as usize;
        let base = if self.is_stochastic() {
            rng.gen::<u64>()
        } else {
            0
        };
        let mut pending = clip_bursts(&self.config, bursts, n);
        pending.sort_by_key(|c| (c.start, c.stream));
        SynthStream {
            config: self.config,
            sigma: self.noise.sigma,
            base,
            total: n,
            emitted: 0,
            pending,
            next_pending: 0,
            active: Vec::new(),
            noise_rng: derive_stream(base, 0),
            noise_carry: None,
            acc: Vec::new(),
            out: Vec::new(),
        }
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Self::new()
    }
}

/// One derived ChaCha8 stream of the per-capture family.
fn derive_stream(base: u64, stream: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(base);
    rng.set_stream(stream); // stream-map: domain=synth-lanes salt=synth-seed streams=0..=65535 role="capture synthesis (0 = noise floor, 1 + burst index)"
    rng
}

/// A burst clipped to the capture window, keyed by its derived-stream id
/// (`1 + input index`, so the assignment is independent of clipping).
#[derive(Debug, Clone, Copy)]
struct ClippedBurst {
    start: usize,
    end: usize,
    head_len: usize,
    amplitude: f64,
    stream: u64,
}

/// Clips bursts to the `n`-sample window and computes each one's 5 MHz
/// head length from its **clipped** length (the droop is a power-ramp
/// artifact of initiating a transmission from an idle chain, so it
/// affects data/beacon/chirp frames; an ACK or CTS follows one SIFS
/// behind with the chain still warm).
fn clip_bursts(config: &SynthesizerConfig, bursts: &[Burst], n: usize) -> Vec<ClippedBurst> {
    let mut out = Vec::with_capacity(bursts.len());
    for (idx, b) in bursts.iter().enumerate() {
        let start = ((b.start.as_nanos() / SAMPLE_NS) as usize).min(n);
        let end_ns = b.start.as_nanos() + b.duration.as_nanos();
        let end = ((end_ns / SAMPLE_NS) as usize).min(n); // exclusive
        if start >= end {
            continue;
        }
        let len = end - start;
        let initiating = matches!(
            b.kind,
            BurstKind::Data | BurstKind::Beacon | BurstKind::Chirp
        );
        // Truncating the fractional sample is the intended floor; the
        // product is nonnegative (fraction checked > 0).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let head_len = if b.width == Width::W5 && initiating && config.w5_head_fraction > 0.0 {
            (len as f64 * config.w5_head_fraction) as usize
        } else {
            0
        };
        out.push(ClippedBurst {
            start,
            end,
            head_len,
            amplitude: b.amplitude,
            stream: 1 + idx as u64,
        });
    }
    out
}

/// Draws the per-burst head amplitude factor (first draw in the burst's
/// stream), or 1.0 without drawing when the burst has no head.
fn head_factor<R: Rng + ?Sized>(config: &SynthesizerConfig, head_len: usize, rng: &mut R) -> f64 {
    if head_len == 0 {
        return 1.0;
    }
    let g = {
        // Box–Muller standard normal (cos branch; a once-per-burst draw,
        // not worth pair bookkeeping).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    (config.w5_head_mean + g * config.w5_head_sd).clamp(0.02, 1.0)
}

/// A burst currently overlapping the emission cursor, with its derived
/// RNG stream live so emission resumes in O(1) at each block.
#[derive(Debug, Clone)]
struct ActiveBurst {
    start: usize,
    end: usize,
    /// Absolute end of the low-amplitude head region.
    head_end: usize,
    amp_head: f64,
    amp_body: f64,
    rng: ChaCha8Rng,
}

/// Block-at-a-time trace emission (see [`Synthesizer::stream`]).
///
/// Each [`Self::next_block`] call yields the next up-to-
/// [`BLOCK_SAMPLES`] samples of the capture, bit-identical to the
/// corresponding slice of [`Synthesizer::synthesize`] under the same
/// caller-RNG state. Only the bursts overlapping the current block are
/// touched (activation is a cursor over the start-sorted schedule), and
/// the working buffers are one block long — streaming a capture
/// allocates O(block + active bursts), not O(capture).
#[derive(Debug, Clone)]
pub struct SynthStream {
    config: SynthesizerConfig,
    sigma: f64,
    base: u64,
    total: usize,
    emitted: usize,
    pending: Vec<ClippedBurst>,
    next_pending: usize,
    active: Vec<ActiveBurst>,
    noise_rng: ChaCha8Rng,
    noise_carry: Option<f64>,
    acc: Vec<f64>,
    out: Vec<f32>,
}

impl SynthStream {
    /// Total samples this capture will emit.
    pub fn total_samples(&self) -> usize {
        self.total
    }

    /// Samples emitted so far.
    pub fn samples_emitted(&self) -> usize {
        self.emitted
    }

    /// Emits the next block of up to [`BLOCK_SAMPLES`] samples, or
    /// `None` once the capture is complete. The slice borrows the
    /// stream's internal block buffer and is valid until the next call.
    pub fn next_block(&mut self) -> Option<&[f32]> {
        if self.emitted >= self.total {
            return None;
        }
        let len = BLOCK_SAMPLES.min(self.total - self.emitted);
        let (mut acc, mut out) = (std::mem::take(&mut self.acc), std::mem::take(&mut self.out));
        self.fill_into(&mut acc, &mut out, len);
        self.acc = acc;
        self.out = out;
        Some(&self.out)
    }

    /// Accumulates the next `len` samples into `acc` and appends their
    /// quantized form to `out` (cleared first). Shared by block emission
    /// and the whole-capture [`Synthesizer::synthesize_into`], which is
    /// what makes the two paths identical by construction.
    fn fill_into(&mut self, acc: &mut Vec<f64>, out: &mut Vec<f32>, len: usize) {
        let lo = self.emitted;
        let hi = lo + len;
        acc.clear();
        acc.resize(len, 0f64);
        // Activate bursts whose first sample falls inside this range;
        // `pending` is (start, stream)-sorted, so `active` stays in the
        // global burst order and per-sample superposition adds in the
        // same order as the buffered pass.
        while let Some(c) = self.pending.get(self.next_pending).copied() {
            if c.start >= hi {
                break;
            }
            self.next_pending += 1;
            let mut rng = derive_stream(self.base, c.stream);
            let amp_head = c.amplitude * head_factor(&self.config, c.head_len, &mut rng);
            self.active.push(ActiveBurst {
                start: c.start,
                end: c.end,
                head_end: c.start + c.head_len,
                amp_head,
                amp_body: c.amplitude,
                rng,
            });
        }
        for a in &mut self.active {
            let seg_lo = a.start.max(lo);
            let seg_hi = a.end.min(hi);
            // Head and body segments of this burst inside the block.
            let cut = a.head_end.clamp(seg_lo, seg_hi);
            kernels::accumulate_ripple(
                &mut acc[seg_lo - lo..cut - lo],
                a.amp_head,
                self.config.ripple_low,
                self.config.ripple_high,
                &mut a.rng,
            );
            kernels::accumulate_ripple(
                &mut acc[cut - lo..seg_hi - lo],
                a.amp_body,
                self.config.ripple_low,
                self.config.ripple_high,
                &mut a.rng,
            );
        }
        self.active.retain(|a| a.end > hi);
        out.clear();
        kernels::add_noise(
            acc,
            self.sigma,
            &mut self.noise_carry,
            out,
            &mut self.noise_rng,
        );
        self.emitted = hi;
    }
}

/// Builds the burst pair of a unicast data + ACK exchange starting at
/// `start`, using the width-scaled timing of `width`.
pub fn data_ack_exchange(
    start: SimTime,
    width: Width,
    data_bytes: usize,
    amplitude: f64,
) -> [Burst; 2] {
    let t = crate::timing::PhyTiming::for_width(width);
    let data = Burst {
        start,
        duration: t.frame_duration(data_bytes),
        width,
        amplitude,
        kind: BurstKind::Data,
    };
    let ack = Burst {
        start: start + data.duration + t.sifs(),
        duration: t.ack_duration(),
        width,
        amplitude,
        kind: BurstKind::Ack,
    };
    [data, ack]
}

/// Builds a beacon + CTS-to-self pair (the AP-discovery signature).
pub fn beacon_cts(start: SimTime, width: Width, amplitude: f64) -> [Burst; 2] {
    let t = crate::timing::PhyTiming::for_width(width);
    let beacon = Burst {
        start,
        duration: t.beacon_duration(),
        width,
        amplitude,
        kind: BurstKind::Beacon,
    };
    let cts = Burst {
        start: start + beacon.duration + t.sifs(),
        duration: t.cts_duration(),
        width,
        amplitude,
        kind: BurstKind::Cts,
    };
    [beacon, cts]
}

#[cfg(test)]
// Sample-index arithmetic in the assertions casts small u64 constants to
// usize; the values are tiny, the casts are exact.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::timing::PhyTiming;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_conversions_round_trip() {
        let d = SimDuration::from_micros(1024);
        assert_eq!(duration_to_samples(d), 1000.0);
        assert_eq!(samples_to_duration(1000), d);
    }

    #[test]
    fn ideal_trace_is_rectangular() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::from_micros(100),
            duration: SimDuration::from_micros(200),
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(500), &mut rng);
        let start = 100_000 / SAMPLE_NS as usize;
        let end = 300_000 / SAMPLE_NS as usize;
        assert!(trace[..start].iter().all(|&s| s == 0.0));
        assert!(trace[start..end].iter().all(|&s| (s - 1000.0).abs() < 1e-3));
        assert!(trace[end..].iter().all(|&s| s == 0.0));
    }

    #[test]
    fn ideal_synthesis_consumes_no_randomness() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::from_micros(100),
            duration: SimDuration::from_micros(200),
            width: Width::W5,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let before = rng.clone().gen::<u64>();
        let _ = synth.synthesize(&[burst], SimDuration::from_micros(500), &mut rng);
        assert_eq!(rng.gen::<u64>(), before);
    }

    #[test]
    fn bursts_superpose() {
        let synth = Synthesizer::ideal();
        let b = |start_us| Burst {
            start: SimTime::from_micros(start_us),
            duration: SimDuration::from_micros(100),
            width: Width::W20,
            amplitude: 500.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trace = synth.synthesize(&[b(0), b(50)], SimDuration::from_micros(200), &mut rng);
        let mid = 75_000 / SAMPLE_NS as usize;
        assert!((trace[mid] - 1000.0).abs() < 1e-3, "overlap should sum");
    }

    #[test]
    fn bursts_clip_to_window() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::from_micros(400),
            duration: SimDuration::from_micros(500),
            width: Width::W20,
            amplitude: 100.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(500), &mut rng);
        assert_eq!(trace.len(), 500_000 / SAMPLE_NS as usize);
        assert!(trace.last().unwrap() > &0.0);
    }

    #[test]
    fn noise_floor_present_with_default_model() {
        let synth = Synthesizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = synth.synthesize(&[], SimDuration::from_millis(1), &mut rng);
        let mean: f64 = trace.iter().map(|&s| s as f64).sum::<f64>() / trace.len() as f64;
        assert!(mean > 10.0 && mean < 40.0, "noise floor mean {mean}");
    }

    #[test]
    fn w5_head_is_attenuated() {
        let mut synth = Synthesizer::ideal();
        synth.config.w5_head_fraction = 0.2;
        synth.config.w5_head_mean = 0.4;
        synth.config.w5_head_sd = 0.0;
        let burst = Burst {
            start: SimTime::ZERO,
            duration: SimDuration::from_micros(1024), // exactly 1000 samples
            width: Width::W5,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(1024), &mut rng);
        assert!(
            (trace[100] - 400.0).abs() < 1e-3,
            "head sample {}",
            trace[100]
        );
        assert!(
            (trace[500] - 1000.0).abs() < 1e-3,
            "body sample {}",
            trace[500]
        );
    }

    #[test]
    fn w20_has_no_head_droop() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::ZERO,
            duration: SimDuration::from_micros(1024),
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(1024), &mut rng);
        assert!((trace[5] - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn synthesize_into_matches_synthesize() {
        let synth = Synthesizer::new();
        let ex = data_ack_exchange(SimTime::from_micros(50), Width::W5, 132, 900.0);
        let window = SimDuration::from_millis(3);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = synth.synthesize(&ex, window, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut b = vec![1.0f32; 7]; // dirty, wrongly-sized buffer
        synth.synthesize_into(&ex, window, &mut rng, &mut b);
        assert_eq!(a, b);
        // Reusing the buffer for a different window stays exact.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let c = synth.synthesize(&ex, SimDuration::from_millis(2), &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        synth.synthesize_into(&ex, SimDuration::from_millis(2), &mut rng, &mut b);
        assert_eq!(c, b);
    }

    #[test]
    fn stream_blocks_concatenate_to_buffered_trace() {
        let synth = Synthesizer::new();
        let ex = data_ack_exchange(SimTime::from_micros(50), Width::W5, 400, 900.0);
        let window = SimDuration::from_millis(3);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let buffered = synth.synthesize(&ex, window, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut stream = synth.stream(&ex, window, &mut rng);
        assert_eq!(stream.total_samples(), buffered.len());
        let mut streamed = Vec::new();
        while let Some(block) = stream.next_block() {
            assert!(block.len() <= BLOCK_SAMPLES);
            streamed.extend_from_slice(block);
        }
        assert_eq!(stream.samples_emitted(), buffered.len());
        for (i, (a, b)) in buffered.iter().zip(&streamed).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i}");
        }
        assert_eq!(buffered.len(), streamed.len());
    }

    #[test]
    fn stream_matches_scalar_reference_bitwise() {
        let synth = Synthesizer::new();
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(100);
        for width in [Width::W5, Width::W20] {
            let ex = data_ack_exchange(t, width, 600, 800.0);
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(200);
            bursts.extend(ex);
        }
        let window = SimDuration::from_millis(8);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let reference = synth.synthesize_ref(&bursts, window, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let batched = synth.synthesize(&bursts, window, &mut rng);
        for (i, (a, b)) in reference.iter().zip(&batched).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i}");
        }
        assert_eq!(reference.len(), batched.len());
    }

    #[test]
    fn exchange_builder_spacing_matches_timing() {
        for w in Width::ALL {
            let t = PhyTiming::for_width(w);
            let [data, ack] = data_ack_exchange(SimTime::ZERO, w, 132, 1000.0);
            assert_eq!(data.duration, t.frame_duration(132));
            assert_eq!(ack.duration, t.ack_duration());
            assert_eq!(
                ack.start.since(SimTime::ZERO + data.duration),
                t.sifs(),
                "gap must be one SIFS at {w:?}"
            );
        }
    }

    #[test]
    fn beacon_builder_spacing() {
        let [beacon, cts] = beacon_cts(SimTime::ZERO, Width::W10, 800.0);
        let t = PhyTiming::for_width(Width::W10);
        assert_eq!(beacon.duration, t.beacon_duration());
        assert_eq!(cts.duration, t.cts_duration());
        assert_eq!(
            cts.start.as_nanos(),
            beacon.duration.as_nanos() + t.sifs().as_nanos()
        );
    }
}
