//! A small, dependency-free radix-2 FFT.
//!
//! The KNOWS scanner performs its incumbent feature detection "in the
//! frequency domain, after performing a Fast Fourier Transform on the
//! time series signal" (§3, Figure 4). This module provides the FFT that
//! [`crate::feature`] builds on — iterative radix-2 decimation-in-time
//! over an owned complex type, verified against a naive DFT.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Sub};

/// A complex number (f64 components).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^(iθ).
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude |z|².
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

/// In-place forward FFT.
///
/// # Panics
/// If `buf.len()` is not a power of two.
pub fn fft(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (normalized by 1/N).
pub fn ifft(buf: &mut [Complex]) {
    for z in buf.iter_mut() {
        *z = z.conj();
    }
    fft(buf);
    let n = buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.conj() * (1.0 / n);
    }
}

/// Naive O(N²) DFT (reference for tests).
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in input.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * t) as f64 / n as f64;
                acc += x * Complex::from_angle(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 64, 256] {
            let sig = random_signal(n, n as u64);
            let want = dft_naive(&sig);
            let mut got = sig.clone();
            fft(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.re - w.re).abs() < 1e-9, "n={n}");
                assert!((g.im - w.im).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let sig = random_signal(512, 3);
        let mut buf = sig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&sig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig = random_signal(1024, 9);
        let time_energy: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = sig;
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 1024.0;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 256;
        let k = 37;
        let mut buf: Vec<Complex> = (0..n)
            .map(|t| Complex::from_angle(std::f64::consts::TAU * (k * t) as f64 / n as f64))
            .collect();
        fft(&mut buf);
        for (i, z) in buf.iter().enumerate() {
            if i == k {
                assert!((z.abs() - n as f64).abs() < 1e-6);
            } else {
                assert!(z.abs() < 1e-6, "leakage at bin {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex::ZERO; 12];
        fft(&mut buf);
    }

    #[test]
    fn impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 64];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for z in &buf {
            assert!((z.abs() - 1.0).abs() < 1e-9);
        }
    }
}
