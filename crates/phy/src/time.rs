//! Simulation timebase: integer nanoseconds.
//!
//! All timing in the reproduction — PHY durations, MAC backoffs, incumbent
//! schedules, experiment timelines — uses these two newtypes. Integer
//! nanoseconds keep the event simulator exactly deterministic (no float
//! drift) while resolving the smallest PHY quantity we care about (the
//! 802.11 slot at 20 MHz is 9 µs; one SDR sample is 1.024 µs).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// If `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // lint:allow(unwrap, the panic is this method's documented contract; use saturating_since for the lenient form)
                .expect("SimTime::since: earlier is after self"),
        )
    }

    /// Saturating difference (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fraction `self / other` as a float.
    ///
    /// # Panics
    /// If `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}µs", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(9).as_nanos(), 9_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_nanos(), 150_000);
        assert_eq!(t.since(SimTime::from_micros(100)).as_micros(), 50);
        assert_eq!((t - SimDuration::from_micros(150)), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_micros(10) * 3,
            SimDuration::from_micros(30)
        );
        assert_eq!(
            SimDuration::from_micros(30) / 3,
            SimDuration::from_micros(10)
        );
    }

    #[test]
    #[should_panic(expected = "earlier is after self")]
    fn since_panics_when_reversed() {
        SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_nanos(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ratio() {
        let half = SimDuration::from_micros(5).ratio(SimDuration::from_micros(10));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_micros(9).to_string(), "9µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }
}
