//! Batched sample-domain kernels for the PHY hot path.
//!
//! SIFT and the waveform synthesizer process 1 MS/s amplitude traces;
//! per-sample scalar loops over those traces dominated the experiment
//! sweeps' wall time. This module rewrites the four sample-domain
//! primitives as **4-wide lane kernels**: manual chunking over plain
//! slices (no nightly/portable-SIMD dependency) shaped so LLVM's
//! auto-vectorizer emits SIMD for the lane bodies.
//!
//! Every kernel comes in two forms:
//!
//! * the batched kernel (`window_sums`, `above_runs`, …) — the
//!   production path;
//! * a `_ref` scalar reference — the semantic contract, kept forever so
//!   differential tests (`crates/phy/tests/kernel_differential.rs`,
//!   plus the in-module suites below) can assert **bit-identical**
//!   output on every change.
//!
//! Bit-identity across the scalar/batched pair is by construction, not
//! by luck: each output element is an *independent* expression with a
//! fixed per-lane evaluation order (f64 additions left-to-right within
//! one element, RNG draws sample-major), so no cross-element
//! accumulator exists whose rounding could depend on chunk width. That
//! is also what makes the streaming SIFT chunking-invariant: an
//! element's value never depends on where a block boundary falls. See
//! `DESIGN.md` §12 for the full contract.

use crate::sift::RawBurst;
use rand::Rng;
use std::f64::consts::TAU;

/// Lane width of the chunked kernels. Four f64 lanes fill one AVX2
/// register; the remainder loops reuse the identical per-element
/// expressions, so lane width is a pure performance knob.
pub const LANES: usize = 4;

/// Sample count as `u64`. `usize` is at most 64 bits on every supported
/// target, so this never truncates.
fn count_u64(n: usize) -> u64 {
    // lint:allow(cast, usize is at most 64 bits on all supported targets)
    n as u64
}

/// Quantizes one accumulated f64 amplitude down to the scanner's f32
/// sample type — the only lossy conversion on the synthesis path, and
/// the point of the kernel's output format.
fn quantize(s: f64) -> f32 {
    // Quantizing the f64 mix to f32 is the kernel's output contract.
    #[allow(clippy::cast_possible_truncation)]
    // lint:allow(cast, quantizing the f64 mix to the f32 sample type is the kernel's contract)
    let q = s as f32;
    q
}

/// Moving-window envelope sums: `out[i] = Σ f64::from(samples[i..i+w])`,
/// added **left-to-right**, for every window fully inside `samples`
/// (`out.len() == samples.len() - w + 1`; empty when the trace is
/// shorter than the window).
///
/// SIFT's moving average at position `t` is `out[t - w + 1] / w`; the
/// detector compares `out` against `threshold · w` instead of dividing.
/// Unlike the classic running sum (`+ newest − oldest`), each element
/// is an independent w-term chain, so the value is identical no matter
/// how the trace is chunked — the property the streaming SIFT leans on.
pub fn window_sums(samples: &[f32], w: usize, out: &mut Vec<f64>) {
    out.clear();
    if w == 0 || samples.len() < w {
        return;
    }
    let n_out = samples.len() - w + 1;
    out.reserve(n_out);
    let mut i = 0;
    while i + LANES <= n_out {
        let mut acc = [0f64; LANES];
        for j in 0..w {
            // One contiguous 4-lane load per window step; the copy into
            // a fixed-size array lets LLVM drop the per-lane bounds
            // checks and vectorize the adds.
            let mut lane = [0f32; LANES];
            lane.copy_from_slice(&samples[i + j..i + j + LANES]);
            for (a, s) in acc.iter_mut().zip(lane) {
                *a += f64::from(s);
            }
        }
        out.extend_from_slice(&acc);
        i += LANES;
    }
    while i < n_out {
        let mut a = 0f64;
        for j in 0..w {
            a += f64::from(samples[i + j]);
        }
        out.push(a);
        i += 1;
    }
}

/// Scalar reference for [`window_sums`]; the per-element add order is
/// the same left-to-right chain, so outputs are bit-identical.
pub fn window_sums_ref(samples: &[f32], w: usize, out: &mut Vec<f64>) {
    out.clear();
    if w == 0 || samples.len() < w {
        return;
    }
    for i in 0..=samples.len() - w {
        let mut a = 0f64;
        for j in 0..w {
            a += f64::from(samples[i + j]);
        }
        out.push(a);
    }
}

/// Threshold crossing / edge detection: appends every maximal run
/// `[start, end)` of indices where `sums[i] > thr` to `out` (cleared
/// first). A run still open at the end of the slice is reported with
/// `end == sums.len()`; the caller decides whether that edge is a real
/// down-crossing or a block boundary.
///
/// The batched path tests four lanes at a time and skips whole chunks
/// that cannot contain an edge (all-below while idle, all-above while
/// inside a run) — on real traces the signal is bursty, so most chunks
/// take the skip path.
pub fn above_runs(sums: &[f64], thr: f64, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let n = sums.len();
    let mut open: Option<usize> = None;
    let mut i = 0;
    while i + LANES <= n {
        let a0 = sums[i] > thr;
        let a1 = sums[i + 1] > thr;
        let a2 = sums[i + 2] > thr;
        let a3 = sums[i + 3] > thr;
        if open.is_none() {
            if !(a0 || a1 || a2 || a3) {
                i += LANES;
                continue;
            }
        } else if a0 && a1 && a2 && a3 {
            i += LANES;
            continue;
        }
        for (k, above) in [a0, a1, a2, a3].into_iter().enumerate() {
            match (open, above) {
                (None, true) => open = Some(i + k),
                (Some(s), false) => {
                    out.push((s, i + k));
                    open = None;
                }
                _ => {}
            }
        }
        i += LANES;
    }
    while i < n {
        match (open, sums[i] > thr) {
            (None, true) => open = Some(i),
            (Some(s), false) => {
                out.push((s, i));
                open = None;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(s) = open {
        out.push((s, n));
    }
}

/// Scalar reference for [`above_runs`].
pub fn above_runs_ref(sums: &[f64], thr: f64, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let mut open: Option<usize> = None;
    for (i, &s) in sums.iter().enumerate() {
        match (open, s > thr) {
            (None, true) => open = Some(i),
            (Some(st), false) => {
                out.push((st, i));
                open = None;
            }
            _ => {}
        }
    }
    if let Some(st) = open {
        out.push((st, sums.len()));
    }
}

/// Burst-edge refinement: index of the **last** sample with
/// `f64::from(samples[i]) > thr`, scanning backward in lane-width
/// chunks. SIFT calls this on the interior of a closing burst, where
/// the answer is almost always within the trailing few samples, so the
/// reverse scan is O(1) amortized.
pub fn rlast_above(samples: &[f32], thr: f64) -> Option<usize> {
    let mut i = samples.len();
    while i >= LANES {
        let base = i - LANES;
        let mut any = false;
        let mut a = [false; LANES];
        for (l, flag) in a.iter_mut().enumerate() {
            *flag = f64::from(samples[base + l]) > thr;
            any |= *flag;
        }
        if any {
            for l in (0..LANES).rev() {
                if a[l] {
                    return Some(base + l);
                }
            }
        }
        i = base;
    }
    while i > 0 {
        i -= 1;
        if f64::from(samples[i]) > thr {
            return Some(i);
        }
    }
    None
}

/// Scalar reference for [`rlast_above`].
pub fn rlast_above_ref(samples: &[f32], thr: f64) -> Option<usize> {
    samples.iter().rposition(|&s| f64::from(s) > thr)
}

/// Busy-fraction accumulation: total sample count of a batch of bursts,
/// reduced across four independent u64 lanes (integer addition is
/// associative, so lane order cannot change the result). The streaming
/// SIFT feeds each block's newly finalized bursts through this to keep
/// the airtime numerator without a per-sample pass.
pub fn sum_lens(bursts: &[RawBurst]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = bursts.chunks_exact(LANES);
    for c in &mut chunks {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += count_u64(c[l].len);
        }
    }
    let mut total: u64 = acc.iter().sum();
    for b in chunks.remainder() {
        total += count_u64(b.len);
    }
    total
}

/// Scalar reference for [`sum_lens`].
pub fn sum_lens_ref(bursts: &[RawBurst]) -> u64 {
    bursts.iter().map(|b| count_u64(b.len)).sum()
}

/// Ripple synthesis: `seg[i] += amp · U[lo, hi)`, one uniform draw per
/// sample in sample order (no draws at all when `lo == hi` — the ideal
/// ripple-free synthesizer must consume no randomness). `seg` is the
/// slice of the f64 mixing scratch covered by one burst within one
/// block; the caller splits the 5 MHz low-amplitude head from the body
/// by calling this twice with different `amp`.
pub fn accumulate_ripple<R: Rng + ?Sized>(
    seg: &mut [f64],
    amp: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) {
    if lo == hi {
        let add = amp * lo;
        let mut chunks = seg.chunks_exact_mut(LANES);
        for c in &mut chunks {
            for s in c {
                *s += add;
            }
        }
        for s in chunks.into_remainder() {
            *s += add;
        }
        return;
    }
    let mut chunks = seg.chunks_exact_mut(LANES);
    for c in &mut chunks {
        let mut r = [0f64; LANES];
        for v in &mut r {
            *v = rng.gen_range(lo..hi);
        }
        for (s, ripple) in c.iter_mut().zip(r) {
            *s += amp * ripple;
        }
    }
    for s in chunks.into_remainder() {
        *s += amp * rng.gen_range(lo..hi);
    }
}

/// Scalar reference for [`accumulate_ripple`] — same draws, same order,
/// same per-element expression.
pub fn accumulate_ripple_ref<R: Rng + ?Sized>(
    seg: &mut [f64],
    amp: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) {
    for s in seg {
        let ripple = if lo == hi { lo } else { rng.gen_range(lo..hi) };
        *s += amp * ripple;
    }
}

/// One Box–Muller transform: two uniforms → **two** independent
/// standard normals `(r·cos θ, r·sin θ)`. The noise kernels consume
/// both halves of every pair (the committed scalar baseline burned a
/// full transform per sample and discarded the sine branch — reusing it
/// halves the uniform draws *and* the `ln`/`sqrt` work, which is where
/// the synthesis speedup comes from).
fn normal_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// AWGN quantization: appends `(acc[i] + |N(0,1)·σ|) as f32` for every
/// mixed sample — or no draws at all when `σ == 0`, matching
/// [`crate::attenuation::NoiseModel::sample`]'s draw-free noiseless
/// path. Normals come from Box–Muller **pairs**: even-numbered noise
/// samples draw a fresh pair and stash the sine half in `carry`,
/// odd-numbered ones consume it. Threading `carry` across calls is what
/// makes the streaming synthesizer chunk-invariant — sample `i` gets
/// the same normal no matter where the block boundary falls. Pass a
/// fresh `None` for a one-shot buffer. `out` is appended to, not
/// cleared: successive blocks land in one caller buffer.
pub fn add_noise<R: Rng + ?Sized>(
    acc: &[f64],
    sigma: f64,
    carry: &mut Option<f64>,
    out: &mut Vec<f32>,
    rng: &mut R,
) {
    out.reserve(acc.len());
    if sigma == 0.0 {
        let mut chunks = acc.chunks_exact(LANES);
        for c in &mut chunks {
            for &s in c {
                out.push(quantize(s));
            }
        }
        for &s in chunks.remainder() {
            out.push(quantize(s));
        }
        return;
    }
    let mut chunks = acc.chunks_exact(LANES);
    for c in &mut chunks {
        let mut g = [0f64; LANES];
        for v in &mut g {
            *v = next_normal(carry, rng);
        }
        let mut q = [0f32; LANES];
        for (o, (s, z)) in q.iter_mut().zip(c.iter().zip(g)) {
            *o = quantize(s + (z * sigma).abs());
        }
        out.extend_from_slice(&q);
    }
    for &s in chunks.remainder() {
        let z = next_normal(carry, rng);
        out.push(quantize(s + (z * sigma).abs()));
    }
}

/// Takes the carried sine half if present, otherwise draws a fresh
/// Box–Muller pair and stashes its second half.
fn next_normal<R: Rng + ?Sized>(carry: &mut Option<f64>, rng: &mut R) -> f64 {
    match carry.take() {
        Some(z) => z,
        None => {
            let (z0, z1) = normal_pair(rng);
            *carry = Some(z1);
            z0
        }
    }
}

/// Scalar reference for [`add_noise`] — same pair-reuse draw schedule,
/// same per-element expression.
pub fn add_noise_ref<R: Rng + ?Sized>(
    acc: &[f64],
    sigma: f64,
    carry: &mut Option<f64>,
    out: &mut Vec<f32>,
    rng: &mut R,
) {
    for &s in acc {
        if sigma == 0.0 {
            out.push(quantize(s));
        } else {
            let z = next_normal(carry, rng);
            out.push(quantize(s + (z * sigma).abs()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Sizes that cover every lane-remainder class plus degenerate and
    /// realistic lengths.
    const SIZES: [usize; 10] = [0, 1, 3, 4, 5, 7, 8, 33, 100, 1023];

    fn trace(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Mix of sub- and supra-threshold values, including
                // negatives and near-threshold ulp fodder.
                let base: f64 = rng.gen_range(-50.0..400.0);
                quantize(base)
            })
            .collect()
    }

    fn assert_f64_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    fn assert_f32_bits_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn window_sums_matches_reference_bitwise() {
        for (k, &n) in SIZES.iter().enumerate() {
            for w in [1usize, 2, 5, 7] {
                let s = trace(n, 10 + k as u64);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                window_sums(&s, w, &mut a);
                window_sums_ref(&s, w, &mut b);
                assert_f64_bits_eq(&a, &b);
                if n >= w {
                    assert_eq!(a.len(), n - w + 1, "n {n} w {w}");
                } else {
                    assert!(a.is_empty());
                }
            }
        }
    }

    #[test]
    fn window_sums_zero_window_is_empty() {
        let mut out = vec![1.0];
        window_sums(&[1.0, 2.0], 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn above_runs_matches_reference() {
        for (k, &n) in SIZES.iter().enumerate() {
            let s = trace(n, 40 + k as u64);
            let mut sums = Vec::new();
            window_sums(&s, 1, &mut sums);
            for thr in [-100.0, 0.0, 150.0, 1e9] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                above_runs(&sums, thr, &mut a);
                above_runs_ref(&sums, thr, &mut b);
                assert_eq!(a, b, "n {n} thr {thr}");
            }
        }
    }

    #[test]
    fn above_runs_reports_open_tail_run() {
        let mut out = Vec::new();
        above_runs(&[0.0, 5.0, 5.0], 1.0, &mut out);
        assert_eq!(out, vec![(1, 3)]);
    }

    #[test]
    fn rlast_above_matches_reference() {
        for (k, &n) in SIZES.iter().enumerate() {
            let s = trace(n, 70 + k as u64);
            for thr in [-100.0, 150.0, 1e9] {
                assert_eq!(
                    rlast_above(&s, thr),
                    rlast_above_ref(&s, thr),
                    "n {n} thr {thr}"
                );
            }
        }
    }

    #[test]
    fn sum_lens_matches_reference() {
        for n in SIZES {
            let bursts: Vec<RawBurst> = (0..n)
                .map(|i| RawBurst {
                    start: i * 10,
                    len: i + 1,
                })
                .collect();
            assert_eq!(sum_lens(&bursts), sum_lens_ref(&bursts));
        }
    }

    #[test]
    fn accumulate_ripple_matches_reference_bitwise() {
        for (k, &n) in SIZES.iter().enumerate() {
            for (lo, hi) in [(0.55, 1.45), (1.0, 1.0)] {
                let mut a = vec![7.5f64; n];
                let mut b = a.clone();
                let mut ra = ChaCha8Rng::seed_from_u64(100 + k as u64);
                let mut rb = ra.clone();
                accumulate_ripple(&mut a, 321.0, lo, hi, &mut ra);
                accumulate_ripple_ref(&mut b, 321.0, lo, hi, &mut rb);
                assert_f64_bits_eq(&a, &b);
                // Identical draw counts: the streams stay in lockstep.
                assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
            }
        }
    }

    #[test]
    fn ideal_ripple_consumes_no_randomness() {
        let mut seg = vec![0f64; 9];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let before = rng.clone().gen::<u64>();
        accumulate_ripple(&mut seg, 2.0, 1.0, 1.0, &mut rng);
        assert_eq!(rng.gen::<u64>(), before);
        assert!(seg.iter().all(|&s| s == 2.0));
    }

    #[test]
    fn add_noise_matches_reference_bitwise() {
        for (k, &n) in SIZES.iter().enumerate() {
            for sigma in [0.0, 30.0] {
                let acc: Vec<f64> = trace(n, 200 + k as u64)
                    .iter()
                    .map(|&s| f64::from(s))
                    .collect();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                let mut ra = ChaCha8Rng::seed_from_u64(300 + k as u64);
                let mut rb = ra.clone();
                let (mut ca, mut cb) = (None, None);
                add_noise(&acc, sigma, &mut ca, &mut a, &mut ra);
                add_noise_ref(&acc, sigma, &mut cb, &mut b, &mut rb);
                assert_f32_bits_eq(&a, &b);
                assert_eq!(ca.map(f64::to_bits), cb.map(f64::to_bits));
                assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
            }
        }
    }

    #[test]
    fn add_noise_carry_makes_chunking_invisible() {
        let acc: Vec<f64> = trace(101, 9).iter().map(|&s| f64::from(s)).collect();
        let mut whole = Vec::new();
        let mut rw = ChaCha8Rng::seed_from_u64(11);
        add_noise(&acc, 30.0, &mut None, &mut whole, &mut rw);
        for chunk in [1usize, 2, 3, 7, 64] {
            let mut split = Vec::new();
            let mut rs = ChaCha8Rng::seed_from_u64(11);
            let mut carry = None;
            for c in acc.chunks(chunk) {
                add_noise(c, 30.0, &mut carry, &mut split, &mut rs);
            }
            assert_f32_bits_eq(&whole, &split);
        }
    }

    #[test]
    fn add_noise_sigma_zero_draws_nothing() {
        let mut out = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let before = rng.clone().gen::<u64>();
        add_noise(&[2.0, 3.0], 0.0, &mut None, &mut out, &mut rng);
        assert_eq!(rng.gen::<u64>(), before);
    }

    #[test]
    fn add_noise_appends_rather_than_clears() {
        let mut out = vec![1.0f32];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        add_noise(&[2.0], 0.0, &mut None, &mut out, &mut rng);
        assert_eq!(out, vec![1.0, 2.0]);
    }
}
