//! Packet-sniffer decode model — the Figure 7 comparison baseline.
//!
//! The Figure 7 experiment counts packets captured by "a packet sniffer"
//! on a second KNOWS device while SIFT watches the same air. A sniffer
//! must *decode* a frame end-to-end, so its capture probability decays
//! smoothly with SNR (symbol errors accumulate), unlike SIFT's hard
//! amplitude threshold: "the reception ratio of the packet sniffer falls
//! off more smoothly, and performs better than SIFT beyond 98 dB
//! attenuation. However, at this attenuation the capture ratio is
//! extremely low at around 35%."
//!
//! We model per-packet decode success as a logistic function of SNR,
//! calibrated so that with the default noise model and transmit amplitude
//! the sniffer sits near 35% capture at 98 dB attenuation while decoding
//! essentially everything below ~85 dB.

use crate::attenuation::NoiseModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Logistic decode model for a conventional packet sniffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sniffer {
    /// SNR (dB) at which decode probability is 50%.
    pub snr50_db: f64,
    /// Logistic slope parameter (dB per unit logit).
    pub slope_db: f64,
}

impl Default for Sniffer {
    fn default() -> Self {
        Self {
            snr50_db: 15.5,
            slope_db: 2.5,
        }
    }
}

impl Sniffer {
    /// Probability of decoding one packet at the given SNR.
    pub fn decode_probability(&self, snr_db: f64) -> f64 {
        if snr_db.is_infinite() {
            return if snr_db > 0.0 { 1.0 } else { 0.0 };
        }
        1.0 / (1.0 + (-(snr_db - self.snr50_db) / self.slope_db).exp())
    }

    /// Probability of decoding a packet of the given received amplitude
    /// under `noise`.
    pub fn decode_probability_for(&self, amplitude: f64, noise: &NoiseModel) -> f64 {
        self.decode_probability(noise.snr_db(amplitude))
    }

    /// Samples one decode attempt.
    pub fn decodes<R: Rng + ?Sized>(&self, snr_db: f64, rng: &mut R) -> bool {
        rng.gen_bool(self.decode_probability(snr_db).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attenuation::{amplitude_after, TX_REFERENCE_AMPLITUDE};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn capture_at(db: f64) -> f64 {
        let noise = NoiseModel::default_model();
        let amp = amplitude_after(TX_REFERENCE_AMPLITUDE, db);
        Sniffer::default().decode_probability_for(amp, &noise)
    }

    #[test]
    fn near_perfect_at_low_attenuation() {
        assert!(capture_at(80.0) > 0.99, "{}", capture_at(80.0));
        assert!(capture_at(85.0) > 0.98);
    }

    #[test]
    fn around_35_percent_at_98_db() {
        let p = capture_at(98.0);
        assert!((0.25..0.45).contains(&p), "98 dB capture {p}");
    }

    #[test]
    fn smooth_monotone_decay() {
        let mut prev = 1.0;
        for db in 80..110 {
            let p = capture_at(db as f64);
            assert!(p <= prev + 1e-12, "non-monotone at {db} dB");
            // Smooth: no single-dB step larger than 0.2.
            assert!(prev - p < 0.2, "cliff at {db} dB");
            prev = p;
        }
    }

    #[test]
    fn already_degraded_where_sift_still_works() {
        // Between ~90 and 96 dB the sniffer loses packets while SIFT (hard
        // threshold at 150 amplitude units) still sees nearly everything.
        let p94 = capture_at(94.0);
        assert!(p94 < 0.9, "sniffer should be lossy at 94 dB, got {p94}");
        let amp94 = amplitude_after(TX_REFERENCE_AMPLITUDE, 94.0);
        assert!(amp94 > 150.0, "SIFT threshold still cleared at 94 dB");
    }

    #[test]
    fn sampling_matches_probability() {
        let s = Sniffer::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 20_000;
        let hits = (0..trials)
            .filter(|_| s.decodes(s.snr50_db, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn infinite_snr_is_certain() {
        let s = Sniffer::default();
        assert_eq!(s.decode_probability(f64::INFINITY), 1.0);
    }
}
