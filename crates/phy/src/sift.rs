//! SIFT — Signal Interpretation before Fourier Transform (§4.2.1).
//!
//! SIFT analyzes the raw amplitude series in the time domain:
//!
//! 1. A **moving average** over a sliding window (5 samples — strictly
//!    below the minimum SIFS of 10 samples, so the data→ACK gap is never
//!    smeared away) is compared against a fixed low threshold to find the
//!    start and end of each energy burst. Instantaneous values are not
//!    used "since the signal amplitude might fall to very low values even
//!    in the middle of the packet transmission".
//! 2. Consecutive burst pairs are matched against the **width-dependent
//!    signature** of a unicast exchange: the gap must equal one SIFS at
//!    some width `W` and the second burst must have the duration of a
//!    14-byte ACK at `W`. "Since the SIFS interval is different on every
//!    width", and the 5 MHz ACK is still shorter than any realistic
//!    20 MHz data frame, the match determines `W` unambiguously.
//! 3. Beacons are matched the same way: "we require APs to send a short
//!    packet, such as a CTS-to-self, one SIFS interval after sending a
//!    beacon packet". A CTS has the same 14-byte footprint as an ACK, so
//!    the pair signature is identical; the first burst's length tells a
//!    beacon from a data frame.
//!
//! Besides detection, SIFT measures **airtime utilization** (the busy
//! fraction of the trace) — the input to the MCham spectrum-assignment
//! metric — and estimates the number of distinct transmitters.
//!
//! Two front ends share one pipeline:
//!
//! * the buffered [`Sift`] runs the batched [`crate::kernels`] over a
//!   whole capture at once;
//! * [`StreamingSift`] consumes USRP-sized blocks as they arrive,
//!   carrying window/burst/merge/classify state across block boundaries
//!   and yielding **exactly** the detections the buffered path would
//!   produce on the concatenated trace (the moving average is defined
//!   per-window, with no cross-window accumulator, so every window sum
//!   is independent of where block boundaries fall — see `DESIGN.md`
//!   §12).

use crate::kernels;
use crate::synth::{duration_to_samples, SAMPLE_NS};
use crate::timing::PhyTiming;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use whitefi_spectrum::Width;

/// Sample count as `f64`, exactly. Counts are bounded by the capture
/// length (milliseconds at the ~1 MS/s sample clock), far below 2^53,
/// so the conversion is lossless for every input this crate produces.
fn count_f64(n: usize) -> f64 {
    // lint:allow(cast, sample counts are far below 2^53, conversion is exact)
    n as f64
}

/// Sample count as `u64`. `usize` is at most 64 bits on every supported
/// target, so this never truncates.
fn count_u64(n: usize) -> u64 {
    // lint:allow(cast, usize is at most 64 bits on all supported targets)
    n as u64
}

/// Burst-sample total as `f64`, exactly: totals are bounded by the
/// stream length, far below 2^53.
fn busy_f64(n: u64) -> f64 {
    // lint:allow(cast, burst totals are far below 2^53, conversion is exact)
    n as f64
}

/// SIFT detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiftConfig {
    /// Fixed amplitude threshold ("in our current implementation this
    /// threshold is fixed at a low value").
    pub threshold: f64,
    /// Moving-average window in samples; must be shorter than the minimum
    /// SIFS (10 samples at 20 MHz), hence 5.
    pub window: usize,
    /// Tolerance, in samples, when matching gaps and ACK lengths.
    pub match_tolerance: f64,
    /// Bursts separated by at most this many samples are merged: no valid
    /// inter-frame gap is shorter than the minimum SIFS (≈ 9.8 samples),
    /// so sub-SIFS gaps are ripple artifacts of a near-threshold signal.
    pub merge_gap: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        Self {
            threshold: 150.0,
            window: 5,
            match_tolerance: 4.0,
            merge_gap: 5,
        }
    }
}

/// A contiguous burst of supra-threshold energy, in sample units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawBurst {
    /// Index of the first supra-threshold sample.
    pub start: usize,
    /// Number of samples in the burst.
    pub len: usize,
}

impl RawBurst {
    /// One past the last sample of the burst.
    pub fn end(self) -> usize {
        self.start + self.len
    }
}

/// What kind of exchange a detection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionKind {
    /// A data frame followed by its ACK.
    DataAck,
    /// A beacon followed by its CTS-to-self.
    BeaconCts,
}

/// A matched exchange: the paper's SIFT output `(F ± E, W)` plus timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The inferred channel width.
    pub width: Width,
    /// Data/ACK or beacon/CTS.
    pub kind: DetectionKind,
    /// Sample index where the first (data or beacon) burst starts.
    pub first_start: usize,
    /// Measured length of the first burst, in samples.
    pub first_len: usize,
    /// Measured length of the second (ACK/CTS) burst, in samples.
    pub second_len: usize,
    /// Measured gap between the bursts, in samples.
    pub gap: usize,
}

impl Detection {
    /// Measured duration of the first frame in nanoseconds.
    pub fn first_duration_ns(&self) -> u64 {
        count_u64(self.first_len) * SAMPLE_NS
    }
}

/// The SIFT detector.
#[derive(Debug, Clone, Default)]
pub struct Sift {
    /// Detector parameters.
    pub config: SiftConfig,
}

impl Sift {
    /// A detector with the given configuration.
    pub fn new(config: SiftConfig) -> Self {
        Self { config }
    }

    /// Expected ACK (or CTS) length at `width`, in samples.
    pub fn expected_ack_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).ack_duration())
    }

    /// Expected SIFS gap at `width`, in samples.
    pub fn expected_sifs_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).sifs())
    }

    /// Expected beacon length at `width`, in samples.
    pub fn expected_beacon_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).beacon_duration())
    }

    /// Extracts energy bursts by thresholding the moving average.
    ///
    /// The moving average at window position `i` (covering samples
    /// `i..i+w`) is above threshold iff the window *sum* exceeds
    /// `threshold · w`; maximal runs of above-threshold windows become
    /// bursts. Start/end refinement: the burst start backtracks to the
    /// first individual supra-threshold sample inside the opening window
    /// (falling back to the window's trailing edge), and the end is the
    /// last supra-threshold sample at or before the trailing edge of the
    /// first below-threshold window — edges stay accurate to ±1 sample
    /// across signal strengths.
    ///
    /// This is the batched production path (see [`crate::kernels`]);
    /// [`Self::extract_bursts_ref`] is the scalar reference held
    /// bit-identical by the differential suite.
    pub fn extract_bursts(&self, samples: &[f32]) -> Vec<RawBurst> {
        let w = self.config.window;
        let thr = self.config.threshold;
        let mut sums = Vec::new();
        kernels::window_sums(samples, w, &mut sums);
        let mut runs = Vec::new();
        kernels::above_runs(&sums, thr * count_f64(w), &mut runs);
        let mut bursts = Vec::with_capacity(runs.len());
        for (i0, i1) in runs {
            let start = (i0..i0 + w)
                .find(|&j| f64::from(samples[j]) > thr)
                .unwrap_or(i0 + w - 1);
            // Trailing edge of the first below-threshold window, clipped
            // to the trace when the run is still open at the end.
            let bound = (i1 + w).min(samples.len());
            let end = match kernels::rlast_above(&samples[start..bound], thr) {
                Some(p) => start + p,
                None => start,
            };
            bursts.push(RawBurst {
                start,
                len: end - start + 1,
            });
        }
        self.merge(bursts)
    }

    /// Scalar reference for [`Self::extract_bursts`]: the same pipeline
    /// over the `_ref` kernels, one element at a time.
    pub fn extract_bursts_ref(&self, samples: &[f32]) -> Vec<RawBurst> {
        let w = self.config.window;
        let thr = self.config.threshold;
        let mut sums = Vec::new();
        kernels::window_sums_ref(samples, w, &mut sums);
        let mut runs = Vec::new();
        kernels::above_runs_ref(&sums, thr * count_f64(w), &mut runs);
        let mut bursts = Vec::with_capacity(runs.len());
        for (i0, i1) in runs {
            let start = (i0..i0 + w)
                .find(|&j| f64::from(samples[j]) > thr)
                .unwrap_or(i0 + w - 1);
            let bound = (i1 + w).min(samples.len());
            let end = match kernels::rlast_above_ref(&samples[start..bound], thr) {
                Some(p) => start + p,
                None => start,
            };
            bursts.push(RawBurst {
                start,
                len: end - start + 1,
            });
        }
        self.merge(bursts)
    }

    /// Merges fragments separated by sub-SIFS gaps (ripple artifacts of
    /// a near-threshold signal).
    fn merge(&self, bursts: Vec<RawBurst>) -> Vec<RawBurst> {
        let mut merged: Vec<RawBurst> = Vec::with_capacity(bursts.len());
        for b in bursts {
            match merged.last_mut() {
                Some(prev) if b.start.saturating_sub(prev.end()) <= self.config.merge_gap => {
                    prev.len = b.end() - prev.start;
                }
                _ => merged.push(b),
            }
        }
        merged
    }

    /// Tests one consecutive burst pair against the width signature
    /// table: the gap must be one SIFS and the second burst one ACK/CTS
    /// at the same width (±tolerance), and the second burst must not be
    /// longer than the first — an ACK never follows a frame shorter than
    /// itself. The first burst's length then tells a beacon from a data
    /// frame.
    pub fn classify_pair(&self, first: RawBurst, second: RawBurst) -> Option<Detection> {
        let tol = self.config.match_tolerance;
        let gap = second.start.saturating_sub(first.end());
        for width in Width::ALL {
            let sifs = Self::expected_sifs_samples(width);
            let ack = Self::expected_ack_samples(width);
            if (count_f64(gap) - sifs).abs() <= tol
                && (count_f64(second.len) - ack).abs() <= tol
                // Both lengths are integers, so comparing against the
                // float tolerance is exactly the integer check
                // n ≤ m + ⌊tol⌋ ⟺ n ≤ m + tol.
                && count_f64(second.len) <= count_f64(first.len) + tol
            {
                let beacon = Self::expected_beacon_samples(width);
                let kind = if (count_f64(first.len) - beacon).abs() <= tol {
                    DetectionKind::BeaconCts
                } else {
                    DetectionKind::DataAck
                };
                return Some(Detection {
                    width,
                    kind,
                    first_start: first.start,
                    first_len: first.len,
                    second_len: second.len,
                    gap,
                });
            }
        }
        None
    }

    /// Matches consecutive bursts into data/ACK and beacon/CTS exchanges,
    /// classifying channel width: a greedy left-to-right scan that
    /// consumes both bursts of a matched pair.
    pub fn classify(&self, bursts: &[RawBurst]) -> Vec<Detection> {
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < bursts.len() {
            if let Some(d) = self.classify_pair(bursts[i], bursts[i + 1]) {
                out.push(d);
                i += 2; // consume the ACK/CTS burst
            } else {
                i += 1;
            }
        }
        out
    }

    /// Full pipeline: extract bursts, then classify exchanges.
    pub fn detect(&self, samples: &[f32]) -> Vec<Detection> {
        self.classify(&self.extract_bursts(samples))
    }

    /// Busy airtime fraction of a trace: total supra-threshold burst
    /// samples over trace length. This feeds the `A_i` entries of the
    /// airtime utilization vector (§4.1).
    pub fn airtime_fraction(&self, samples: &[f32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let busy = kernels::sum_lens(&self.extract_bursts(samples));
        busy_f64(busy) / count_f64(samples.len())
    }
}

/// A moving-average run that has not yet seen its down-crossing.
#[derive(Debug, Clone, Copy)]
struct OpenRun {
    /// Refined burst start (absolute sample index).
    start: usize,
    /// Last supra-threshold sample observed so far inside the burst
    /// (absolute index), across all fully-processed extended blocks.
    last_above: Option<usize>,
}

/// Block-at-a-time SIFT front end.
///
/// The USRP "delivers blocks of 2048 samples at a time" (§4.2.1);
/// `StreamingSift` consumes those blocks directly, so the scan path
/// never materializes a whole capture. Feed each block to
/// [`Self::push_block`] and drain the detections it yields; call
/// [`Self::finish`] once after the last block to flush state held back
/// at the final boundary.
///
/// Equality contract: for any partition of a trace into blocks —
/// including 1-sample blocks — the concatenated detections of
/// `push_block` + `finish` are exactly `Sift::detect` of the whole
/// trace, and [`Self::busy_samples`] equals the burst-sample total the
/// buffered [`Sift::airtime_fraction`] numerator uses. The proptest in
/// `crates/phy/tests/kernel_differential.rs` holds this for arbitrary
/// chunkings. Internally the carry is: the last `window − 1` samples
/// (so windows straddling the boundary are computable), the open
/// moving-average run with its refined start and last supra-threshold
/// sample, the merge-stage burst that a future sub-SIFS neighbor could
/// still extend, and the classify queue's unpaired burst.
#[derive(Debug, Clone)]
pub struct StreamingSift {
    sift: Sift,
    /// Last `window − 1` samples of the stream (fewer near the start).
    carry: Vec<f32>,
    /// Total samples consumed so far.
    samples_seen: usize,
    /// Moving-average run still above threshold at the last boundary.
    open: Option<OpenRun>,
    /// Merge stage: most recent burst, extendable by a near neighbor.
    pending: Option<RawBurst>,
    /// Classify stage: finalized bursts not yet consumed by the greedy
    /// pair scan (holds at most one burst between drains).
    unclassified: VecDeque<RawBurst>,
    /// Detections ready to be yielded.
    ready: Vec<Detection>,
    /// Total samples inside finalized bursts (airtime numerator).
    busy: u64,
    /// Scratch: carry + current block.
    ext: Vec<f32>,
    /// Scratch: window sums over `ext`.
    sums: Vec<f64>,
    /// Scratch: above-threshold runs over `sums`.
    runs: Vec<(usize, usize)>,
    /// Scratch: bursts finalized by the current call, batched for
    /// [`kernels::sum_lens`].
    finalized: Vec<RawBurst>,
}

impl StreamingSift {
    /// A streaming detector with the given configuration.
    pub fn new(config: SiftConfig) -> Self {
        Self {
            sift: Sift::new(config),
            carry: Vec::new(),
            samples_seen: 0,
            open: None,
            pending: None,
            unclassified: VecDeque::new(),
            ready: Vec::new(),
            busy: 0,
            ext: Vec::new(),
            sums: Vec::new(),
            runs: Vec::new(),
            finalized: Vec::new(),
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &SiftConfig {
        &self.sift.config
    }

    /// Total samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Total samples inside finalized bursts so far. After
    /// [`Self::finish`] this equals the buffered airtime numerator.
    pub fn busy_samples(&self) -> u64 {
        self.busy
    }

    /// Busy airtime fraction over everything consumed so far; exact
    /// (equal to [`Sift::airtime_fraction`]) after [`Self::finish`].
    pub fn airtime_fraction(&self) -> f64 {
        if self.samples_seen == 0 {
            return 0.0;
        }
        busy_f64(self.busy) / count_f64(self.samples_seen)
    }

    /// Consumes one block of samples and yields every detection whose
    /// classification can no longer be affected by future samples.
    /// Blocks may be any length (the USRP's is
    /// [`crate::synth::BLOCK_SAMPLES`]); dropping the iterator discards
    /// nothing — undrained detections are lost only if the caller drops
    /// *it* mid-iteration, as with any `drain`.
    pub fn push_block(&mut self, block: &[f32]) -> impl Iterator<Item = Detection> + '_ {
        self.process_block(block);
        self.ready.drain(..)
    }

    /// Flushes the final boundary: closes a still-open run at the end of
    /// the trace, finalizes the merge stage, and yields the remaining
    /// detections. The detector is then exhausted for this trace.
    pub fn finish(&mut self) -> impl Iterator<Item = Detection> + '_ {
        if let Some(open) = self.open.take() {
            // Run still above threshold at the end of the trace: the
            // buffered path scans to the end of the capture, and the
            // per-block `last_above` updates have covered exactly that.
            let end = match open.last_above {
                Some(la) if la >= open.start => la,
                _ => open.start,
            };
            let burst = RawBurst {
                start: open.start,
                len: end - open.start + 1,
            };
            self.merge_push(burst);
        }
        if let Some(p) = self.pending.take() {
            self.finalized.push(p);
        }
        self.flush_finalized();
        self.carry.clear();
        self.ready.drain(..)
    }

    fn process_block(&mut self, block: &[f32]) {
        let w = self.sift.config.window;
        let thr = self.sift.config.threshold;
        if w == 0 {
            self.samples_seen += block.len();
            return;
        }
        // Extended block: the carried `w − 1` tail plus the new samples,
        // so every window straddling the boundary is computable. Window
        // index `i` in `sums` is the window starting at absolute sample
        // `carry_abs + i`; consecutive extended blocks cover contiguous
        // window-start ranges, so runs stitch seamlessly.
        let carry_abs = self.samples_seen - self.carry.len();
        self.samples_seen += block.len();
        self.ext.clear();
        self.ext.extend_from_slice(&self.carry);
        self.ext.extend_from_slice(block);
        kernels::window_sums(&self.ext, w, &mut self.sums);
        kernels::above_runs(&self.sums, thr * count_f64(w), &mut self.runs);
        let n_windows = self.sums.len();

        // The carried open run either continues through this block's
        // first run (which then begins at window 0) or closes at the
        // first below-threshold window, which is window 0.
        let mut next_run = 0;
        if let Some(open) = self.open.take() {
            if n_windows == 0 {
                self.open = Some(open);
            } else if let Some(&(0, i1)) = self.runs.first() {
                next_run = 1;
                if i1 < n_windows {
                    self.close_run(open, i1, carry_abs);
                } else {
                    self.open = Some(open);
                }
            } else {
                self.close_run(open, 0, carry_abs);
            }
        }
        // Remaining runs open fresh bursts; all but an open tail close
        // within this block.
        while next_run < self.runs.len() {
            let (i0, i1) = self.runs[next_run];
            next_run += 1;
            let start = (i0..i0 + w)
                .find(|&j| f64::from(self.ext[j]) > thr)
                .unwrap_or(i0 + w - 1)
                + carry_abs;
            let open = OpenRun {
                start,
                last_above: None,
            };
            if i1 < n_windows {
                self.close_run(open, i1, carry_abs);
            } else {
                self.open = Some(open);
            }
        }
        // An open run absorbs this block's supra-threshold samples into
        // its carried `last_above`: every future down-crossing edge lies
        // past the end of this extended block, so all of them qualify.
        if let Some(open) = &mut self.open {
            let from = open.start.saturating_sub(carry_abs).min(self.ext.len());
            if let Some(p) = kernels::rlast_above(&self.ext[from..], thr) {
                open.last_above = Some(carry_abs + from + p);
            }
        }
        // Merge-stage finalization: a future burst starts no earlier
        // than the first window not yet fully observed, so once the
        // pending burst is more than `merge_gap` behind that bound (and
        // no run is open), nothing can extend it.
        if self.open.is_none() {
            if let (Some(p), Some(next_start)) =
                (self.pending, (self.samples_seen + 1).checked_sub(w))
            {
                if p.end() + self.sift.config.merge_gap < next_start {
                    self.pending = None;
                    self.finalized.push(p);
                }
            }
        }
        self.flush_finalized();
        let keep = self.ext.len().min(w - 1);
        self.carry.clear();
        self.carry
            .extend_from_slice(&self.ext[self.ext.len() - keep..]);
    }

    /// Closes a run whose first below-threshold window is `i1` (relative
    /// to the current extended block) and pushes the refined burst into
    /// the merge stage.
    fn close_run(&mut self, open: OpenRun, i1: usize, carry_abs: usize) {
        let w = self.sift.config.window;
        let thr = self.sift.config.threshold;
        // Last sample of the first below-threshold window — the same
        // scan bound the buffered path uses.
        let from = open.start.saturating_sub(carry_abs);
        let to = i1 + w;
        let end = match kernels::rlast_above(&self.ext[from..to], thr) {
            Some(p) => carry_abs + from + p,
            None => match open.last_above {
                Some(la) if la >= open.start => la,
                _ => open.start,
            },
        };
        let burst = RawBurst {
            start: open.start,
            len: end - open.start + 1,
        };
        self.merge_push(burst);
    }

    /// Merge stage: extends the pending burst when the gap is sub-SIFS,
    /// otherwise finalizes it and makes `b` the new pending burst.
    fn merge_push(&mut self, b: RawBurst) {
        match &mut self.pending {
            Some(prev) if b.start.saturating_sub(prev.end()) <= self.sift.config.merge_gap => {
                prev.len = b.end() - prev.start;
            }
            Some(prev) => {
                self.finalized.push(*prev);
                *prev = b;
            }
            None => self.pending = Some(b),
        }
    }

    /// Accounts finalized bursts toward the airtime numerator and runs
    /// the greedy pair scan over the classify queue.
    fn flush_finalized(&mut self) {
        if self.finalized.is_empty() {
            return;
        }
        self.busy += kernels::sum_lens(&self.finalized);
        self.unclassified.extend(self.finalized.drain(..));
        while self.unclassified.len() >= 2 {
            let first = self.unclassified[0];
            let second = self.unclassified[1];
            if let Some(d) = self.sift.classify_pair(first, second) {
                self.ready.push(d);
                self.unclassified.pop_front();
            }
            self.unclassified.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{beacon_cts, data_ack_exchange, Burst, BurstKind, Synthesizer};
    use crate::time::{SimDuration, SimTime};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn signature_tables_do_not_collide_across_widths() {
        // (SIFS, ACK) per width must be pairwise separated by more than
        // twice the match tolerance, or widths could be confused.
        let tol = SiftConfig::default().match_tolerance;
        for (i, a) in Width::ALL.iter().enumerate() {
            for b in &Width::ALL[i + 1..] {
                let ds = (Sift::expected_sifs_samples(*a) - Sift::expected_sifs_samples(*b)).abs();
                let da = (Sift::expected_ack_samples(*a) - Sift::expected_ack_samples(*b)).abs();
                assert!(
                    ds > 2.0 * tol || da > 2.0 * tol,
                    "{a:?} vs {b:?}: sifs Δ{ds} ack Δ{da}"
                );
            }
        }
    }

    #[test]
    fn extracts_single_burst_with_exact_edges() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::from_micros(1024),       // sample 1000
            duration: SimDuration::from_micros(512), // 500 samples
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(4096), &mut rng());
        let sift = Sift::default();
        let bursts = sift.extract_bursts(&trace);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start, 1000);
        assert_eq!(bursts[0].len, 500);
    }

    #[test]
    fn no_bursts_in_pure_noise() {
        let synth = Synthesizer::new();
        let trace = synth.synthesize(&[], SimDuration::from_millis(50), &mut rng());
        let sift = Sift::default();
        assert!(sift.extract_bursts(&trace).is_empty());
        assert_eq!(sift.airtime_fraction(&trace), 0.0);
    }

    #[test]
    fn detects_data_ack_at_every_width() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        for width in Width::ALL {
            let bursts = data_ack_exchange(SimTime::from_micros(500), width, 1000, 1000.0);
            let trace = synth.synthesize(&bursts, SimDuration::from_millis(10), &mut rng());
            let detections = sift.detect(&trace);
            assert_eq!(detections.len(), 1, "width {width:?}: {detections:?}");
            assert_eq!(detections[0].width, width);
            assert_eq!(detections[0].kind, DetectionKind::DataAck);
        }
    }

    #[test]
    fn detects_beacon_cts_and_distinguishes_from_data() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        for width in Width::ALL {
            let bursts = beacon_cts(SimTime::from_micros(500), width, 1000.0);
            let trace = synth.synthesize(&bursts, SimDuration::from_millis(10), &mut rng());
            let detections = sift.detect(&trace);
            assert_eq!(detections.len(), 1, "width {width:?}");
            assert_eq!(detections[0].width, width);
            assert_eq!(detections[0].kind, DetectionKind::BeaconCts);
        }
    }

    #[test]
    fn measures_packet_duration() {
        // "Once the algorithm determines the start and end time of a
        // packet, the duration of the packet is known."
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let width = Width::W10;
        let bursts = data_ack_exchange(SimTime::from_micros(100), width, 132, 1000.0);
        let expected = bursts[0].duration;
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        let d = &sift.detect(&trace)[0];
        let measured_ns = d.first_duration_ns() as f64;
        let err = (measured_ns - expected.as_nanos() as f64).abs() / expected.as_nanos() as f64;
        assert!(err < 0.02, "duration error {err}");
    }

    #[test]
    fn multiple_exchanges_all_found() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(200);
        for _ in 0..20 {
            let ex = data_ack_exchange(t, Width::W20, 1000, 1000.0);
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(300);
            bursts.extend(ex);
        }
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(50), &mut rng());
        let detections = sift.detect(&trace);
        assert_eq!(detections.len(), 20);
        assert!(detections.iter().all(|d| d.width == Width::W20));
    }

    #[test]
    fn lone_data_burst_is_not_classified() {
        // Without an ACK there is no signature to match.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let burst = Burst {
            start: SimTime::from_micros(500),
            duration: SimDuration::from_micros(800),
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let trace = synth.synthesize(&[burst], SimDuration::from_millis(5), &mut rng());
        assert!(sift.detect(&trace).is_empty());
        // …but the energy still counts toward airtime.
        assert!(sift.airtime_fraction(&trace) > 0.1);
    }

    #[test]
    fn airtime_fraction_matches_ground_truth() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let window = SimDuration::from_millis(100);
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(100);
        let mut on = SimDuration::ZERO;
        for _ in 0..20 {
            let ex = data_ack_exchange(t, Width::W10, 300, 1000.0);
            on += ex[0].duration + ex[1].duration;
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(1500);
            bursts.extend(ex);
        }
        assert!(
            t + SimDuration::from_millis(1) < SimTime::ZERO + window,
            "workload must fit inside the capture window"
        );
        let trace = synth.synthesize(&bursts, window, &mut rng());
        let truth = on.as_nanos() as f64 / window.as_nanos() as f64;
        let measured = sift.airtime_fraction(&trace);
        assert!(
            (measured - truth).abs() < 0.02,
            "measured {measured} truth {truth}"
        );
    }

    #[test]
    fn weak_signal_below_threshold_is_missed() {
        // Signals under the fixed threshold are invisible — the mechanism
        // behind the sharp Figure 7 cliff.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let bursts = data_ack_exchange(SimTime::from_micros(500), Width::W20, 1000, 90.0);
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        assert!(sift.detect(&trace).is_empty());
    }

    #[test]
    fn detects_corrupted_packets_the_sniffer_would_drop() {
        // SIFT "is even able to detect corrupted packets" — energy near
        // the threshold still forms bursts even though decode would fail.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let bursts = data_ack_exchange(SimTime::from_micros(500), Width::W20, 1000, 250.0);
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        let detections = sift.detect(&trace);
        assert_eq!(detections.len(), 1);
        // The sniffer decodes such packets well under 95% of the time.
        let p = crate::sniffer::Sniffer::default()
            .decode_probability_for(250.0, &crate::attenuation::NoiseModel::default_model());
        assert!(p < 0.95, "sniffer p {p}");
    }

    #[test]
    fn short_trace_yields_nothing() {
        let sift = Sift::default();
        assert!(sift.extract_bursts(&[1000.0; 3]).is_empty());
    }

    #[test]
    fn burst_end_accessor() {
        let b = RawBurst { start: 10, len: 5 };
        assert_eq!(b.end(), 15);
    }

    #[test]
    fn buffered_matches_scalar_reference() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(200);
        for width in [Width::W5, Width::W10, Width::W20] {
            let ex = data_ack_exchange(t, width, 700, 900.0);
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(250);
            bursts.extend(ex);
        }
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(20), &mut rng());
        assert_eq!(sift.extract_bursts(&trace), sift.extract_bursts_ref(&trace));
    }

    #[test]
    fn streaming_matches_buffered_on_block_sized_chunks() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(300);
        for _ in 0..8 {
            let ex = data_ack_exchange(t, Width::W10, 800, 1000.0);
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(400);
            bursts.extend(ex);
        }
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(30), &mut rng());
        let buffered = sift.detect(&trace);
        let mut stream = StreamingSift::new(sift.config);
        let mut streamed = Vec::new();
        for block in trace.chunks(crate::synth::BLOCK_SAMPLES) {
            streamed.extend(stream.push_block(block));
        }
        streamed.extend(stream.finish());
        assert_eq!(buffered, streamed);
        assert_eq!(
            stream.busy_samples(),
            kernels::sum_lens(&sift.extract_bursts(&trace))
        );
        assert_eq!(stream.samples_seen(), trace.len());
    }

    #[test]
    fn streaming_empty_trace_is_empty() {
        let mut stream = StreamingSift::new(SiftConfig::default());
        assert_eq!(stream.push_block(&[]).count(), 0);
        assert_eq!(stream.finish().count(), 0);
        assert_eq!(stream.busy_samples(), 0);
        assert_eq!(stream.airtime_fraction(), 0.0);
    }
}
