//! SIFT — Signal Interpretation before Fourier Transform (§4.2.1).
//!
//! SIFT analyzes the raw amplitude series in the time domain:
//!
//! 1. A **moving average** over a sliding window (5 samples — strictly
//!    below the minimum SIFS of 10 samples, so the data→ACK gap is never
//!    smeared away) is compared against a fixed low threshold to find the
//!    start and end of each energy burst. Instantaneous values are not
//!    used "since the signal amplitude might fall to very low values even
//!    in the middle of the packet transmission".
//! 2. Consecutive burst pairs are matched against the **width-dependent
//!    signature** of a unicast exchange: the gap must equal one SIFS at
//!    some width `W` and the second burst must have the duration of a
//!    14-byte ACK at `W`. "Since the SIFS interval is different on every
//!    width", and the 5 MHz ACK is still shorter than any realistic
//!    20 MHz data frame, the match determines `W` unambiguously.
//! 3. Beacons are matched the same way: "we require APs to send a short
//!    packet, such as a CTS-to-self, one SIFS interval after sending a
//!    beacon packet". A CTS has the same 14-byte footprint as an ACK, so
//!    the pair signature is identical; the first burst's length tells a
//!    beacon from a data frame.
//!
//! Besides detection, SIFT measures **airtime utilization** (the busy
//! fraction of the trace) — the input to the MCham spectrum-assignment
//! metric — and estimates the number of distinct transmitters.

use crate::synth::{duration_to_samples, SAMPLE_NS};
use crate::timing::PhyTiming;
use serde::{Deserialize, Serialize};
use whitefi_spectrum::Width;

/// Sample count as `f64`, exactly. Counts are bounded by the capture
/// length (milliseconds at the ~1 MS/s sample clock), far below 2^53,
/// so the conversion is lossless for every input this crate produces.
fn count_f64(n: usize) -> f64 {
    // lint:allow(cast, sample counts are far below 2^53, conversion is exact)
    n as f64
}

/// Sample count as `u64`. `usize` is at most 64 bits on every supported
/// target, so this never truncates.
fn count_u64(n: usize) -> u64 {
    // lint:allow(cast, usize is at most 64 bits on all supported targets)
    n as u64
}

/// SIFT detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiftConfig {
    /// Fixed amplitude threshold ("in our current implementation this
    /// threshold is fixed at a low value").
    pub threshold: f64,
    /// Moving-average window in samples; must be shorter than the minimum
    /// SIFS (10 samples at 20 MHz), hence 5.
    pub window: usize,
    /// Tolerance, in samples, when matching gaps and ACK lengths.
    pub match_tolerance: f64,
    /// Bursts separated by at most this many samples are merged: no valid
    /// inter-frame gap is shorter than the minimum SIFS (≈ 9.8 samples),
    /// so sub-SIFS gaps are ripple artifacts of a near-threshold signal.
    pub merge_gap: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        Self {
            threshold: 150.0,
            window: 5,
            match_tolerance: 4.0,
            merge_gap: 5,
        }
    }
}

/// A contiguous burst of supra-threshold energy, in sample units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawBurst {
    /// Index of the first supra-threshold sample.
    pub start: usize,
    /// Number of samples in the burst.
    pub len: usize,
}

impl RawBurst {
    /// One past the last sample of the burst.
    pub fn end(self) -> usize {
        self.start + self.len
    }
}

/// What kind of exchange a detection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionKind {
    /// A data frame followed by its ACK.
    DataAck,
    /// A beacon followed by its CTS-to-self.
    BeaconCts,
}

/// A matched exchange: the paper's SIFT output `(F ± E, W)` plus timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The inferred channel width.
    pub width: Width,
    /// Data/ACK or beacon/CTS.
    pub kind: DetectionKind,
    /// Sample index where the first (data or beacon) burst starts.
    pub first_start: usize,
    /// Measured length of the first burst, in samples.
    pub first_len: usize,
    /// Measured length of the second (ACK/CTS) burst, in samples.
    pub second_len: usize,
    /// Measured gap between the bursts, in samples.
    pub gap: usize,
}

impl Detection {
    /// Measured duration of the first frame in nanoseconds.
    pub fn first_duration_ns(&self) -> u64 {
        count_u64(self.first_len) * SAMPLE_NS
    }
}

/// The SIFT detector.
#[derive(Debug, Clone, Default)]
pub struct Sift {
    /// Detector parameters.
    pub config: SiftConfig,
}

impl Sift {
    /// A detector with the given configuration.
    pub fn new(config: SiftConfig) -> Self {
        Self { config }
    }

    /// Expected ACK (or CTS) length at `width`, in samples.
    pub fn expected_ack_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).ack_duration())
    }

    /// Expected SIFS gap at `width`, in samples.
    pub fn expected_sifs_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).sifs())
    }

    /// Expected beacon length at `width`, in samples.
    pub fn expected_beacon_samples(width: Width) -> f64 {
        duration_to_samples(PhyTiming::for_width(width).beacon_duration())
    }

    /// Extracts energy bursts by thresholding the moving average.
    ///
    /// Start/end refinement: when the average crosses the threshold we
    /// backtrack to the first (resp. last) individual sample above the
    /// threshold, which keeps measured burst edges accurate to ±1 sample
    /// across signal strengths.
    pub fn extract_bursts(&self, samples: &[f32]) -> Vec<RawBurst> {
        let w = self.config.window;
        let thr = self.config.threshold;
        if samples.len() < w {
            return Vec::new();
        }
        let mut bursts = Vec::new();
        let mut sum: f64 = samples[..w].iter().map(|&s| f64::from(s)).sum();
        let mut in_burst = false;
        let mut start = 0usize;
        let mut last_above = 0usize;
        for t in w - 1..samples.len() {
            if t >= w {
                sum += f64::from(samples[t]) - f64::from(samples[t - w]);
            }
            let ma = sum / count_f64(w);
            if f64::from(samples[t]) > thr {
                last_above = t;
            }
            if !in_burst && ma > thr {
                // Backtrack to the first supra-threshold sample in window.
                let lo = t + 1 - w;
                start = (lo..=t).find(|&i| f64::from(samples[i]) > thr).unwrap_or(t);
                in_burst = true;
            } else if in_burst && ma <= thr {
                let end = last_above.max(start);
                bursts.push(RawBurst {
                    start,
                    len: end - start + 1,
                });
                in_burst = false;
            }
        }
        if in_burst {
            let end = last_above.max(start);
            bursts.push(RawBurst {
                start,
                len: end - start + 1,
            });
        }
        // Merge fragments separated by sub-SIFS gaps.
        let mut merged: Vec<RawBurst> = Vec::with_capacity(bursts.len());
        for b in bursts {
            match merged.last_mut() {
                Some(prev) if b.start.saturating_sub(prev.end()) <= self.config.merge_gap => {
                    prev.len = b.end() - prev.start;
                }
                _ => merged.push(b),
            }
        }
        merged
    }

    /// Matches consecutive bursts into data/ACK and beacon/CTS exchanges,
    /// classifying channel width.
    pub fn classify(&self, bursts: &[RawBurst]) -> Vec<Detection> {
        let tol = self.config.match_tolerance;
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < bursts.len() {
            let first = bursts[i];
            let second = bursts[i + 1];
            let gap = second.start.saturating_sub(first.end());
            let mut matched = None;
            for width in Width::ALL {
                let sifs = Self::expected_sifs_samples(width);
                let ack = Self::expected_ack_samples(width);
                if (count_f64(gap) - sifs).abs() <= tol
                    && (count_f64(second.len) - ack).abs() <= tol
                {
                    // The second burst must not be longer than the first:
                    // an ACK never follows a frame shorter than itself.
                    // (Both lengths are integers, so comparing against the
                    // float tolerance is exactly the old `+ tol as usize`
                    // integer check: n ≤ m + ⌊tol⌋ ⟺ n ≤ m + tol.)
                    if count_f64(second.len) <= count_f64(first.len) + tol {
                        matched = Some(width);
                        break;
                    }
                }
            }
            if let Some(width) = matched {
                let beacon = Self::expected_beacon_samples(width);
                let kind = if (count_f64(first.len) - beacon).abs() <= tol {
                    DetectionKind::BeaconCts
                } else {
                    DetectionKind::DataAck
                };
                out.push(Detection {
                    width,
                    kind,
                    first_start: first.start,
                    first_len: first.len,
                    second_len: second.len,
                    gap,
                });
                i += 2; // consume the ACK/CTS burst
            } else {
                i += 1;
            }
        }
        out
    }

    /// Full pipeline: extract bursts, then classify exchanges.
    pub fn detect(&self, samples: &[f32]) -> Vec<Detection> {
        self.classify(&self.extract_bursts(samples))
    }

    /// Busy airtime fraction of a trace: total supra-threshold burst
    /// samples over trace length. This feeds the `A_i` entries of the
    /// airtime utilization vector (§4.1).
    pub fn airtime_fraction(&self, samples: &[f32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let busy: usize = self.extract_bursts(samples).iter().map(|b| b.len).sum();
        count_f64(busy) / count_f64(samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{beacon_cts, data_ack_exchange, Burst, BurstKind, Synthesizer};
    use crate::time::{SimDuration, SimTime};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn signature_tables_do_not_collide_across_widths() {
        // (SIFS, ACK) per width must be pairwise separated by more than
        // twice the match tolerance, or widths could be confused.
        let tol = SiftConfig::default().match_tolerance;
        for (i, a) in Width::ALL.iter().enumerate() {
            for b in &Width::ALL[i + 1..] {
                let ds = (Sift::expected_sifs_samples(*a) - Sift::expected_sifs_samples(*b)).abs();
                let da = (Sift::expected_ack_samples(*a) - Sift::expected_ack_samples(*b)).abs();
                assert!(
                    ds > 2.0 * tol || da > 2.0 * tol,
                    "{a:?} vs {b:?}: sifs Δ{ds} ack Δ{da}"
                );
            }
        }
    }

    #[test]
    fn extracts_single_burst_with_exact_edges() {
        let synth = Synthesizer::ideal();
        let burst = Burst {
            start: SimTime::from_micros(1024),       // sample 1000
            duration: SimDuration::from_micros(512), // 500 samples
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let trace = synth.synthesize(&[burst], SimDuration::from_micros(4096), &mut rng());
        let sift = Sift::default();
        let bursts = sift.extract_bursts(&trace);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].start, 1000);
        assert_eq!(bursts[0].len, 500);
    }

    #[test]
    fn no_bursts_in_pure_noise() {
        let synth = Synthesizer::new();
        let trace = synth.synthesize(&[], SimDuration::from_millis(50), &mut rng());
        let sift = Sift::default();
        assert!(sift.extract_bursts(&trace).is_empty());
        assert_eq!(sift.airtime_fraction(&trace), 0.0);
    }

    #[test]
    fn detects_data_ack_at_every_width() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        for width in Width::ALL {
            let bursts = data_ack_exchange(SimTime::from_micros(500), width, 1000, 1000.0);
            let trace = synth.synthesize(&bursts, SimDuration::from_millis(10), &mut rng());
            let detections = sift.detect(&trace);
            assert_eq!(detections.len(), 1, "width {width:?}: {detections:?}");
            assert_eq!(detections[0].width, width);
            assert_eq!(detections[0].kind, DetectionKind::DataAck);
        }
    }

    #[test]
    fn detects_beacon_cts_and_distinguishes_from_data() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        for width in Width::ALL {
            let bursts = beacon_cts(SimTime::from_micros(500), width, 1000.0);
            let trace = synth.synthesize(&bursts, SimDuration::from_millis(10), &mut rng());
            let detections = sift.detect(&trace);
            assert_eq!(detections.len(), 1, "width {width:?}");
            assert_eq!(detections[0].width, width);
            assert_eq!(detections[0].kind, DetectionKind::BeaconCts);
        }
    }

    #[test]
    fn measures_packet_duration() {
        // "Once the algorithm determines the start and end time of a
        // packet, the duration of the packet is known."
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let width = Width::W10;
        let bursts = data_ack_exchange(SimTime::from_micros(100), width, 132, 1000.0);
        let expected = bursts[0].duration;
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        let d = &sift.detect(&trace)[0];
        let measured_ns = d.first_duration_ns() as f64;
        let err = (measured_ns - expected.as_nanos() as f64).abs() / expected.as_nanos() as f64;
        assert!(err < 0.02, "duration error {err}");
    }

    #[test]
    fn multiple_exchanges_all_found() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(200);
        for _ in 0..20 {
            let ex = data_ack_exchange(t, Width::W20, 1000, 1000.0);
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(300);
            bursts.extend(ex);
        }
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(50), &mut rng());
        let detections = sift.detect(&trace);
        assert_eq!(detections.len(), 20);
        assert!(detections.iter().all(|d| d.width == Width::W20));
    }

    #[test]
    fn lone_data_burst_is_not_classified() {
        // Without an ACK there is no signature to match.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let burst = Burst {
            start: SimTime::from_micros(500),
            duration: SimDuration::from_micros(800),
            width: Width::W20,
            amplitude: 1000.0,
            kind: BurstKind::Data,
        };
        let trace = synth.synthesize(&[burst], SimDuration::from_millis(5), &mut rng());
        assert!(sift.detect(&trace).is_empty());
        // …but the energy still counts toward airtime.
        assert!(sift.airtime_fraction(&trace) > 0.1);
    }

    #[test]
    fn airtime_fraction_matches_ground_truth() {
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let window = SimDuration::from_millis(100);
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(100);
        let mut on = SimDuration::ZERO;
        for _ in 0..20 {
            let ex = data_ack_exchange(t, Width::W10, 300, 1000.0);
            on += ex[0].duration + ex[1].duration;
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(1500);
            bursts.extend(ex);
        }
        assert!(
            t + SimDuration::from_millis(1) < SimTime::ZERO + window,
            "workload must fit inside the capture window"
        );
        let trace = synth.synthesize(&bursts, window, &mut rng());
        let truth = on.as_nanos() as f64 / window.as_nanos() as f64;
        let measured = sift.airtime_fraction(&trace);
        assert!(
            (measured - truth).abs() < 0.02,
            "measured {measured} truth {truth}"
        );
    }

    #[test]
    fn weak_signal_below_threshold_is_missed() {
        // Signals under the fixed threshold are invisible — the mechanism
        // behind the sharp Figure 7 cliff.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let bursts = data_ack_exchange(SimTime::from_micros(500), Width::W20, 1000, 90.0);
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        assert!(sift.detect(&trace).is_empty());
    }

    #[test]
    fn detects_corrupted_packets_the_sniffer_would_drop() {
        // SIFT "is even able to detect corrupted packets" — energy near
        // the threshold still forms bursts even though decode would fail.
        let synth = Synthesizer::new();
        let sift = Sift::default();
        let bursts = data_ack_exchange(SimTime::from_micros(500), Width::W20, 1000, 250.0);
        let trace = synth.synthesize(&bursts, SimDuration::from_millis(5), &mut rng());
        let detections = sift.detect(&trace);
        assert_eq!(detections.len(), 1);
        // The sniffer decodes such packets well under 95% of the time.
        let p = crate::sniffer::Sniffer::default()
            .decode_probability_for(250.0, &crate::attenuation::NoiseModel::default_model());
        assert!(p < 0.95, "sniffer p {p}");
    }

    #[test]
    fn short_trace_yields_nothing() {
        let sift = Sift::default();
        assert!(sift.extract_bursts(&[1000.0; 3]).is_empty());
    }

    #[test]
    fn burst_end_accessor() {
        let b = RawBurst { start: 10, len: 5 };
        assert_eq!(b.end(), 15);
    }
}
