//! Frequency-domain incumbent feature detection — the scanner's other
//! half (Figure 4: "FFT → TV/MIC Detection").
//!
//! §3: "using the feature detection algorithms described in [20], our
//! scanner is able to detect TV signals at signal strengths as low as
//! −114 dBm, and wireless microphones at −110 dBm. We note that this is
//! much below the TV decoding threshold of −85 dBm. This 30 dB detection
//! buffer is required to solve the classic hidden terminal problem."
//!
//! The detector works on complex baseband captures of one 8 MHz scan
//! span (the USRP constraint):
//!
//! * an **ATSC-like TV signal** is broadband (≈ 5.4 MHz of pseudo-noise)
//!   with a strong **pilot tone** near the lower band edge — detected by
//!   elevated in-band energy plus the pilot peak;
//! * a **wireless microphone** is a narrowband FM carrier — detected as
//!   an isolated spectral peak with *no* broadband elevation;
//! * everything else is noise.
//!
//! Power calibration: −120 dBm corresponds to unit per-sample signal
//! amplitude against the unit-σ complex noise floor, so the paper's
//! −114/−110 dBm sensitivity targets sit comfortably above this
//! detector's floor (verified in tests, along with the floor itself).

use crate::fft::{fft, Complex};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scan span sample rate: 8 MHz complex baseband (§3's USRP span).
pub const SCAN_SAMPLE_RATE_HZ: f64 = 8.0e6;

/// FFT size per frame.
pub const FFT_SIZE: usize = 2048;

/// ATSC channel occupied bandwidth, Hz.
pub const TV_BANDWIDTH_HZ: f64 = 5.38e6;

/// Pilot offset from channel centre, Hz (ATSC pilot sits 2.69 MHz below
/// centre).
pub const TV_PILOT_OFFSET_HZ: f64 = -2.69e6;

/// Wireless-mic FM deviation, Hz.
pub const MIC_DEVIATION_HZ: f64 = 30.0e3;

/// Wireless-mic audio modulation tone, Hz.
pub const MIC_AUDIO_HZ: f64 = 1.0e3;

/// Converts received power in dBm to per-sample amplitude under the
/// detector's calibration (−120 dBm ⇒ amplitude 1.0 ≈ the noise σ).
pub fn amplitude_for_dbm(dbm: f64) -> f64 {
    10f64.powf((dbm + 120.0) / 20.0)
}

/// What the feature detector concluded about a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Incumbent {
    /// Broadband + pilot: a TV broadcast.
    Tv,
    /// Isolated narrowband carrier: a wireless microphone.
    Mic,
    /// Nothing above the noise floor.
    None,
}

/// Synthesizes a complex-baseband capture of `frames × FFT_SIZE` samples
/// containing optional TV and mic signals plus unit-σ complex noise.
#[derive(Debug, Clone, Copy, Default)]
pub struct IqSynthesizer {
    /// TV signal power at the scanner, dBm (`None` = absent).
    pub tv_dbm: Option<f64>,
    /// Mic carrier power at the scanner, dBm, and its offset from the
    /// span centre in Hz.
    pub mic: Option<(f64, f64)>,
}

impl IqSynthesizer {
    /// Generates the capture.
    pub fn generate<R: Rng + ?Sized>(&self, frames: usize, rng: &mut R) -> Vec<Complex> {
        let n = frames * FFT_SIZE;
        let mut out = Vec::with_capacity(n);
        let gauss = |rng: &mut R| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            (
                r * (std::f64::consts::TAU * u2).cos(),
                r * (std::f64::consts::TAU * u2).sin(),
            )
        };
        // TV: band-limited pseudo-noise approximated as a sum of tones on
        // a dense comb across the occupied bandwidth, plus the pilot.
        let tv_tones: Vec<(f64, f64, f64)> = if let Some(dbm) = self.tv_dbm {
            let amp = amplitude_for_dbm(dbm);
            let n_tones = 64;
            let mut tones = Vec::with_capacity(n_tones + 1);
            let per_tone = amp * (0.93f64 / n_tones as f64).sqrt();
            for k in 0..n_tones {
                let f =
                    -TV_BANDWIDTH_HZ / 2.0 + TV_BANDWIDTH_HZ * (k as f64 + 0.5) / n_tones as f64;
                tones.push((f, per_tone, rng.gen_range(0.0..std::f64::consts::TAU)));
            }
            // Pilot: a coherent tone carrying a significant power share.
            tones.push((
                TV_PILOT_OFFSET_HZ,
                amp * 0.26,
                rng.gen_range(0.0..std::f64::consts::TAU),
            ));
            tones
        } else {
            Vec::new()
        };
        let mic_tone = self.mic.map(|(dbm, offset)| {
            (
                offset,
                amplitude_for_dbm(dbm),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        });
        for t in 0..n {
            let time = t as f64 / SCAN_SAMPLE_RATE_HZ;
            let (nr, ni) = gauss(rng);
            let mut z = Complex::new(nr, ni);
            for &(f, a, phase) in &tv_tones {
                z += Complex::from_angle(std::f64::consts::TAU * f * time + phase) * a;
            }
            if let Some((f, a, phase)) = mic_tone {
                // FM audio modulation: ±MIC_DEVIATION_HZ at a 1 kHz
                // audio tone (Carson bandwidth ≈ 60 kHz — a real mic is
                // narrowband, not a laboratory carrier).
                let audio = std::f64::consts::TAU * MIC_AUDIO_HZ * time;
                let inst_phase = std::f64::consts::TAU * f * time
                    - (MIC_DEVIATION_HZ / MIC_AUDIO_HZ) * audio.cos()
                    + phase;
                z += Complex::from_angle(inst_phase) * a;
            }
            out.push(z);
        }
        out
    }
}

/// Welch-averaged power spectral density over `FFT_SIZE` bins, centred
/// (bin 0 = −4 MHz … bin N−1 = +4 MHz). A Hann window per frame keeps a
/// strong carrier's leakage from lifting the rest of the band (a
/// rectangular window's sinc tails would make a loud mic look like
/// broadband TV energy).
pub fn welch_psd(samples: &[Complex]) -> Vec<f64> {
    let frames = samples.len() / FFT_SIZE;
    assert!(frames >= 1, "need at least one full frame");
    let window: Vec<f64> = (0..FFT_SIZE)
        .map(|i| {
            let x = std::f64::consts::TAU * i as f64 / FFT_SIZE as f64;
            0.5 * (1.0 - x.cos())
        })
        .collect();
    let mut psd = vec![0.0f64; FFT_SIZE];
    let mut buf = vec![Complex::ZERO; FFT_SIZE];
    for f in 0..frames {
        for (i, z) in samples[f * FFT_SIZE..(f + 1) * FFT_SIZE].iter().enumerate() {
            buf[i] = *z * window[i];
        }
        fft(&mut buf);
        for (k, z) in buf.iter().enumerate() {
            psd[k] += z.norm_sqr() / FFT_SIZE as f64;
        }
    }
    for p in psd.iter_mut() {
        *p /= frames as f64;
    }
    // FFT order → centred order (negative frequencies first).
    let mut centred = vec![0.0; FFT_SIZE];
    let half = FFT_SIZE / 2;
    centred[..half].copy_from_slice(&psd[half..]);
    centred[half..].copy_from_slice(&psd[..half]);
    centred
}

/// Frequency of a centred PSD bin, Hz.
pub fn bin_frequency_hz(bin: usize) -> f64 {
    (bin as f64 - FFT_SIZE as f64 / 2.0) * SCAN_SAMPLE_RATE_HZ / FFT_SIZE as f64
}

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureDetector {
    /// Peak-to-median PSD ratio declaring a narrowband carrier.
    pub tone_ratio: f64,
    /// In-band/out-of-band mean PSD ratio declaring broadband energy.
    pub broadband_ratio: f64,
}

impl Default for FeatureDetector {
    fn default() -> Self {
        Self {
            tone_ratio: 4.0,
            broadband_ratio: 1.12,
        }
    }
}

impl FeatureDetector {
    /// Classifies a capture.
    pub fn classify(&self, samples: &[Complex]) -> Incumbent {
        let psd = welch_psd(samples);
        let mut sorted = psd.clone();
        // PSD bins are finite and nonnegative, so `total_cmp` sorts them
        // exactly as `partial_cmp` did (no NaN/-0.0 to diverge on).
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[FFT_SIZE / 2].max(f64::MIN_POSITIVE);
        let peak = sorted[FFT_SIZE - 1];
        // Broadband elevation must be measured on the *bulk* of the band:
        // exclude the strongest bins so a narrowband carrier sitting
        // in-band (a mic) does not masquerade as broadband energy.
        let cutoff = sorted[FFT_SIZE - 48];
        let mut in_band = (0.0, 0usize);
        let mut out_band = (0.0, 0usize);
        for (k, &p) in psd.iter().enumerate() {
            if p >= cutoff {
                continue;
            }
            let f = bin_frequency_hz(k);
            if f.abs() < TV_BANDWIDTH_HZ / 2.0 {
                in_band.0 += p;
                in_band.1 += 1;
            } else {
                out_band.0 += p;
                out_band.1 += 1;
            }
        }
        let in_mean = in_band.0 / in_band.1.max(1) as f64;
        let out_mean = (out_band.0 / out_band.1.max(1) as f64).max(f64::MIN_POSITIVE);
        let broadband = in_mean / out_mean > self.broadband_ratio;
        let tone = peak / median > self.tone_ratio;
        match (broadband, tone) {
            (true, _) => Incumbent::Tv,
            (false, true) => Incumbent::Mic,
            (false, false) => Incumbent::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn classify(tv_dbm: Option<f64>, mic: Option<(f64, f64)>, seed: u64) -> Incumbent {
        let synth = IqSynthesizer { tv_dbm, mic };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let capture = synth.generate(16, &mut rng);
        FeatureDetector::default().classify(&capture)
    }

    #[test]
    fn calibration_anchor() {
        assert!((amplitude_for_dbm(-120.0) - 1.0).abs() < 1e-12);
        assert!((amplitude_for_dbm(-114.0) - 1.995).abs() < 1e-3);
        assert!((amplitude_for_dbm(-110.0) - 3.162).abs() < 1e-3);
    }

    #[test]
    fn detects_tv_at_paper_sensitivity() {
        // §3: TV detected at −114 dBm.
        for seed in 0..5 {
            assert_eq!(
                classify(Some(-114.0), None, seed),
                Incumbent::Tv,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn detects_mic_at_paper_sensitivity() {
        // §3: mics detected at −110 dBm.
        for seed in 0..5 {
            assert_eq!(
                classify(None, Some((-110.0, 1.3e6)), seed),
                Incumbent::Mic,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pure_noise_is_clean() {
        for seed in 10..20 {
            assert_eq!(classify(None, None, seed), Incumbent::None, "seed {seed}");
        }
    }

    #[test]
    fn far_below_floor_is_missed() {
        // Far below the paper sensitivities nothing should trigger (the
        // detector floors sit near −124 dBm for TV and −140 dBm for the
        // FM-spread mic carrier — both comfortably below the −114/−110
        // dBm specification, as the 30 dB hidden-terminal buffer needs).
        assert_eq!(classify(Some(-139.0), None, 1), Incumbent::None);
        assert_eq!(classify(None, Some((-145.0, 0.5e6)), 1), Incumbent::None);
    }

    #[test]
    fn strong_tv_not_confused_with_mic() {
        // The pilot is a tone, but the broadband energy marks it TV.
        assert_eq!(classify(Some(-90.0), None, 2), Incumbent::Tv);
    }

    #[test]
    fn mic_detected_at_any_offset() {
        for (i, offset) in [-3.0e6, -1.0e6, 0.0, 2.0e6, 3.5e6].into_iter().enumerate() {
            assert_eq!(
                classify(None, Some((-100.0, offset)), 30 + i as u64),
                Incumbent::Mic,
                "offset {offset}"
            );
        }
    }

    #[test]
    fn psd_bin_frequencies_span_the_scan() {
        assert!((bin_frequency_hz(0) + 4.0e6).abs() < 1e-6);
        assert!((bin_frequency_hz(FFT_SIZE / 2)).abs() < 1e-6);
        let top = bin_frequency_hz(FFT_SIZE - 1);
        assert!(top > 3.99e6 && top < 4.0e6);
    }

    #[test]
    fn detection_buffer_vs_decode_threshold() {
        // The 30 dB hidden-terminal buffer: detection at −114 dBm though
        // decoding needs −85 dBm. Our floor must be at or below −114.
        assert_eq!(classify(Some(-114.0), None, 40), Incumbent::Tv);
        // And far above (decodable strength) certainly detected.
        assert_eq!(classify(Some(-85.0), None, 41), Incumbent::Tv);
    }
}
