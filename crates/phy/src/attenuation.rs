//! Attenuation arithmetic and the receiver noise model.
//!
//! The Figure 7 experiment connects two KNOWS devices "through a tunable
//! RF attenuator" and sweeps attenuation until both SIFT and the packet
//! sniffer fail. We reproduce the setup with straightforward dB maths: an
//! attenuation of `a` dB scales a signal's *amplitude* by `10^(-a/20)`.
//!
//! Calibration (see `DESIGN.md`): the transmitter's reference amplitude
//! and the SIFT threshold are chosen so SIFT's detection cliff falls at
//! ≈ 96–97 dB of attenuation, matching the paper's measurement.

use rand::Rng;

/// A standard-normal sample via the Box–Muller transform (avoids an extra
/// dependency on `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Amplitude scale factor for a power attenuation of `db` decibels.
pub fn db_to_amplitude_ratio(db: f64) -> f64 {
    10f64.powf(-db / 20.0)
}

/// Amplitude remaining after attenuating `amplitude` by `db` decibels.
pub fn amplitude_after(amplitude: f64, db: f64) -> f64 {
    amplitude * db_to_amplitude_ratio(db)
}

/// Transmit reference amplitude (arbitrary linear units).
///
/// Chosen with [`NoiseModel::DEFAULT_SIGMA`] and the default SIFT
/// threshold (150) so that at 96 dB of attenuation the received signal
/// still clears the threshold with margin against the per-sample ripple
/// (near-perfect detection), while by 100 dB it falls below the
/// threshold — placing the sharp SIFT cliff just beyond 96 dB, as in
/// Figure 7.
pub const TX_REFERENCE_AMPLITUDE: f64 = 1.2e7;

/// Additive receiver noise: each amplitude sample gains `|N(0, σ)|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the underlying Gaussian.
    pub sigma: f64,
}

impl NoiseModel {
    /// Default noise level (matched to the synthesizer's amplitude scale:
    /// the Figure 5 traces show a noise floor well below the ~1000-unit
    /// signal envelope).
    pub const DEFAULT_SIGMA: f64 = 30.0;

    /// The default model.
    pub fn default_model() -> Self {
        Self {
            sigma: Self::DEFAULT_SIGMA,
        }
    }

    /// A noiseless model (for exactness-style tests).
    pub fn noiseless() -> Self {
        Self { sigma: 0.0 }
    }

    /// One noise amplitude sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        (standard_normal(rng) * self.sigma).abs()
    }

    /// Mean of the |N(0,σ)| noise floor: σ·√(2/π).
    pub fn mean_floor(&self) -> f64 {
        self.sigma * (2.0 / std::f64::consts::PI).sqrt()
    }

    /// Signal-to-noise ratio in dB for a signal of the given amplitude.
    pub fn snr_db(&self, amplitude: f64) -> f64 {
        if self.sigma == 0.0 {
            return f64::INFINITY;
        }
        20.0 * (amplitude / self.sigma).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn db_ratio_basics() {
        assert!((db_to_amplitude_ratio(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_amplitude_ratio(20.0) - 0.1).abs() < 1e-12);
        assert!((db_to_amplitude_ratio(6.0) - 0.501187).abs() < 1e-5);
    }

    #[test]
    fn attenuation_composes_multiplicatively() {
        let once = amplitude_after(amplitude_after(1000.0, 40.0), 30.0);
        let both = amplitude_after(1000.0, 70.0);
        assert!((once - both).abs() < 1e-9);
    }

    #[test]
    fn cliff_calibration() {
        // At 96 dB the received amplitude clears the default SIFT
        // threshold (150) with ripple margin; by 100 dB it is below.
        let at96 = amplitude_after(TX_REFERENCE_AMPLITUDE, 96.0);
        let at100 = amplitude_after(TX_REFERENCE_AMPLITUDE, 100.0);
        assert!(at96 > 180.0, "96 dB leaves {at96}");
        assert!(at100 < 150.0, "100 dB leaves {at100}");
    }

    #[test]
    fn noise_mean_floor() {
        let m = NoiseModel::default_model();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - m.mean_floor()).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn noiseless_is_silent() {
        let m = NoiseModel::noiseless();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(m.sample(&mut rng), 0.0);
        assert!(m.snr_db(100.0).is_infinite());
    }

    #[test]
    fn snr_db() {
        let m = NoiseModel { sigma: 10.0 };
        assert!((m.snr_db(100.0) - 20.0).abs() < 1e-12);
        assert!((m.snr_db(10.0) - 0.0).abs() < 1e-12);
    }
}
