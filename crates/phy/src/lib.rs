//! Signal substrate for the WhiteFi reproduction.
//!
//! The paper's KNOWS prototype pairs a variable-width Wi-Fi transceiver
//! (an Atheros card behind a UHF translator) with a USRP software-defined
//! radio used as a scanner. Neither is available here, so this crate
//! provides the faithful synthetic equivalent:
//!
//! * [`time`] — the integer-nanosecond simulation timebase;
//! * [`timing`] — width-scaled PHY/MAC timing (symbol, SIFS, slot,
//!   preamble, packet durations) per Chandra et al. (SIGCOMM 2008), the
//!   technique WhiteFi builds on;
//! * [`attenuation`] — dB arithmetic and the noise model;
//! * [`fft`] / [`feature`] — the scanner's frequency-domain path
//!   (Figure 4: FFT → TV/MIC detection) with the paper's −114/−110 dBm
//!   sensitivity targets;
//! * [`synth`] — synthesis of raw amplitude (`sqrt(I² + Q²)`) sample
//!   traces from a schedule of bursts, including the low-amplitude head
//!   of 5 MHz packets visible in Figure 5;
//! * [`kernels`] — the batched 4-wide lane kernels behind both
//!   [`synth`] and [`sift`], each paired with a scalar reference that
//!   differential tests hold bit-identical;
//! * [`sift`] — the SIFT detector itself: moving-average burst
//!   extraction, data/ACK (and beacon/CTS-to-self) matching, channel-width
//!   classification, airtime measurement, and the block-at-a-time
//!   [`StreamingSift`] front end;
//! * [`sniffer`] — a packet-sniffer decode model (the Figure 7
//!   comparison baseline);
//! * [`scanner`] — the USRP-like scanner: which transmissions are
//!   visible when dwelling on a given UHF channel, and capture of their
//!   amplitude trace.
//!
//! Everything is deterministic under a seeded RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attenuation;
pub mod feature;
pub mod fft;
pub mod kernels;
pub mod platform;
pub mod scanner;
pub mod sift;
pub mod sniffer;
pub mod synth;
pub mod time;
pub mod timing;

pub use attenuation::{amplitude_after, db_to_amplitude_ratio, NoiseModel};
pub use feature::{FeatureDetector, Incumbent, IqSynthesizer};
pub use fft::{dft_naive, fft, ifft, Complex};
pub use platform::{AtherosDriver, KnowsDevice, UhfTranslator};
pub use scanner::{Scanner, VisibleBurst};
pub use sift::{Detection, DetectionKind, RawBurst, Sift, SiftConfig, StreamingSift};
pub use sniffer::Sniffer;
pub use synth::{
    Burst, BurstKind, SynthStream, Synthesizer, SynthesizerConfig, BLOCK_SAMPLES, SAMPLE_NS,
};
pub use time::{SimDuration, SimTime};
pub use timing::{PhyTiming, ACK_BYTES, BEACON_BYTES, CHIRP_BYTES, CTS_BYTES};
