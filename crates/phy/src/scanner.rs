//! The USRP-like scanner: dwell on a UHF channel, capture what is on air.
//!
//! The KNOWS scanner is a receive-only SDR stepped across the band in
//! 6 MHz increments (§3). For SIFT the relevant property is channel-
//! granularity visibility: "when SIFT samples an 8 MHz band centered at a
//! frequency Fs, it will be able to detect a WhiteFi transmitter whose
//! channel overlaps with Fs, even though their center frequencies may not
//! match" (§4.2.1). The output of a scan is therefore `(F ± E, W)` with
//! `E = ±W/2`: the width is known exactly, the centre only to within the
//! transmitter's own span.

use crate::synth::{Burst, SynthStream, Synthesizer};
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use whitefi_spectrum::{UhfChannel, WfChannel};

/// A transmission on the air during a capture, tagged with its channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisibleBurst {
    /// The WhiteFi channel the frame is sent on.
    pub channel: WfChannel,
    /// The burst itself (absolute simulation time).
    pub burst: Burst,
}

/// A scanner dwelling on one UHF channel at a time.
#[derive(Debug, Clone)]
pub struct Scanner {
    /// Waveform synthesis for captured traces.
    pub synth: Synthesizer,
}

impl Scanner {
    /// A scanner with default synthesis (noise + ripple).
    pub fn new() -> Self {
        Self {
            synth: Synthesizer::new(),
        }
    }

    /// Whether a transmission on `tx` is visible when the scanner dwells
    /// on UHF channel `center`: true iff `tx`'s span contains `center`.
    pub fn sees(center: UhfChannel, tx: WfChannel) -> bool {
        tx.contains(center)
    }

    /// The candidate centre channels of a transmitter of width `w`
    /// detected while dwelling on `scanned`: every centre whose span
    /// contains `scanned` — the paper's `F ± E` with `E = ±W/2`.
    pub fn candidate_centers(scanned: UhfChannel, w: whitefi_spectrum::Width) -> Vec<WfChannel> {
        let h = w.half_span() as i64;
        let s = scanned.index() as i64;
        (s - h..=s + h)
            .filter_map(|c| {
                let idx = usize::try_from(c).ok()?; // below-band centres fall out here
                UhfChannel::new(idx).and_then(|u| WfChannel::new(u, w))
            })
            .collect()
    }

    /// The bursts visible while dwelling on `center` during
    /// `[window_start, window_start + dwell)`: transmissions whose
    /// channel does not span `center` are invisible; visible ones are
    /// clipped to the window and re-based to its origin.
    fn visible_in_window(
        center: UhfChannel,
        on_air: &[VisibleBurst],
        window_start: SimTime,
        dwell: SimDuration,
    ) -> Vec<Burst> {
        let window_end = window_start + dwell;
        let mut local = Vec::new();
        for vb in on_air {
            if !Self::sees(center, vb.channel) {
                continue;
            }
            let b = vb.burst;
            let b_end = b.start + b.duration;
            if b_end <= window_start || b.start >= window_end {
                continue;
            }
            // Clip to the window and re-base to its origin.
            let clipped_start = b.start.max(window_start);
            let clipped_end = if b_end < window_end {
                b_end
            } else {
                window_end
            };
            local.push(Burst {
                start: SimTime::from_nanos(clipped_start.since(window_start).as_nanos()),
                duration: clipped_end.since(clipped_start),
                ..b
            });
        }
        local
    }

    /// Captures the amplitude trace seen while dwelling on `center` during
    /// `[window_start, window_start + dwell)`, materialized as one buffer
    /// (tests and offline analysis; the scan path uses
    /// [`Self::capture_stream`]).
    pub fn capture<R: Rng + ?Sized>(
        &self,
        center: UhfChannel,
        on_air: &[VisibleBurst],
        window_start: SimTime,
        dwell: SimDuration,
        rng: &mut R,
    ) -> Vec<f32> {
        let local = Self::visible_in_window(center, on_air, window_start, dwell);
        self.synth.synthesize(&local, dwell, rng)
    }

    /// Block-at-a-time capture of the same dwell: the USRP hands the PC
    /// 2048-sample blocks, and this path models that — the full trace is
    /// never materialized, and the emitted blocks concatenate bit-exactly
    /// to [`Self::capture`] under the same RNG state.
    pub fn capture_stream<R: Rng + ?Sized>(
        &self,
        center: UhfChannel,
        on_air: &[VisibleBurst],
        window_start: SimTime,
        dwell: SimDuration,
        rng: &mut R,
    ) -> SynthStream {
        let local = Self::visible_in_window(center, on_air, window_start, dwell);
        self.synth.stream(&local, dwell, rng)
    }
}

impl Default for Scanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sift::Sift;
    use crate::synth::data_ack_exchange;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use whitefi_spectrum::Width;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn visibility_is_channel_span_membership() {
        let tx = WfChannel::from_parts(10, Width::W20); // spans 8..=12
        for i in 0..30 {
            let vis = Scanner::sees(UhfChannel::from_index(i), tx);
            assert_eq!(vis, (8..=12).contains(&i), "channel {i}");
        }
    }

    #[test]
    fn candidate_centers_have_error_half_width() {
        // Detected a 20 MHz transmitter while scanning channel 10: centre
        // could be anywhere in 8..=12 (E = ±W/2).
        let cands = Scanner::candidate_centers(UhfChannel::from_index(10), Width::W20);
        let idx: Vec<usize> = cands.iter().map(|c| c.center().index()).collect();
        assert_eq!(idx, vec![8, 9, 10, 11, 12]);
        // 5 MHz: centre is known exactly.
        let cands = Scanner::candidate_centers(UhfChannel::from_index(10), Width::W5);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].center().index(), 10);
    }

    #[test]
    fn candidate_centers_clip_at_band_edges() {
        let cands = Scanner::candidate_centers(UhfChannel::from_index(0), Width::W20);
        // Centres below half-span are invalid WfChannels.
        assert!(cands.iter().all(|c| c.center().index() >= 2));
    }

    #[test]
    fn capture_then_sift_detects_overlapping_transmitter() {
        let scanner = Scanner::new();
        let sift = Sift::default();
        let tx_channel = WfChannel::from_parts(10, Width::W20);
        let ex = data_ack_exchange(SimTime::from_millis(2), Width::W20, 1000, 1000.0);
        let on_air: Vec<VisibleBurst> = ex
            .iter()
            .map(|&burst| VisibleBurst {
                channel: tx_channel,
                burst,
            })
            .collect();
        // Dwell on channel 8 — not the transmitter's centre, but inside
        // its span.
        let trace = scanner.capture(
            UhfChannel::from_index(8),
            &on_air,
            SimTime::ZERO,
            SimDuration::from_millis(10),
            &mut rng(),
        );
        let detections = sift.detect(&trace);
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].width, Width::W20);
    }

    #[test]
    fn capture_misses_non_overlapping_transmitter() {
        let scanner = Scanner::new();
        let sift = Sift::default();
        let tx_channel = WfChannel::from_parts(10, Width::W5);
        let ex = data_ack_exchange(SimTime::from_millis(2), Width::W5, 1000, 1000.0);
        let on_air: Vec<VisibleBurst> = ex
            .iter()
            .map(|&burst| VisibleBurst {
                channel: tx_channel,
                burst,
            })
            .collect();
        let trace = scanner.capture(
            UhfChannel::from_index(11),
            &on_air,
            SimTime::ZERO,
            SimDuration::from_millis(10),
            &mut rng(),
        );
        assert!(sift.detect(&trace).is_empty());
    }

    #[test]
    fn bursts_outside_window_are_clipped_away() {
        let scanner = Scanner::new();
        let tx_channel = WfChannel::from_parts(5, Width::W5);
        let before = VisibleBurst {
            channel: tx_channel,
            burst: crate::synth::Burst {
                start: SimTime::from_millis(1),
                duration: SimDuration::from_micros(500),
                width: Width::W5,
                amplitude: 1000.0,
                kind: crate::synth::BurstKind::Data,
            },
        };
        // Window starts at 10 ms — burst is long gone.
        let trace = scanner.capture(
            UhfChannel::from_index(5),
            &[before],
            SimTime::from_millis(10),
            SimDuration::from_millis(5),
            &mut rng(),
        );
        assert!(Sift::default().extract_bursts(&trace).is_empty());
    }

    #[test]
    fn straddling_burst_is_partially_captured() {
        let scanner = Scanner::new();
        let tx_channel = WfChannel::from_parts(5, Width::W5);
        let straddle = VisibleBurst {
            channel: tx_channel,
            burst: crate::synth::Burst {
                start: SimTime::from_micros(9_500),
                duration: SimDuration::from_millis(2),
                width: Width::W5,
                amplitude: 1000.0,
                kind: crate::synth::BurstKind::Data,
            },
        };
        let trace = scanner.capture(
            UhfChannel::from_index(5),
            &[straddle],
            SimTime::from_millis(10),
            SimDuration::from_millis(5),
            &mut rng(),
        );
        let bursts = Sift::default().extract_bursts(&trace);
        assert_eq!(bursts.len(), 1);
        // Visible portion: 9.5 ms..11.5 ms clipped to 10 ms.. → 1.5 ms.
        let len_us = bursts[0].len as u64 * crate::synth::SAMPLE_NS / 1000;
        assert!((1460..=1540).contains(&len_us), "visible {len_us} µs");
    }
}
