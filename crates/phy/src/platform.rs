//! The KNOWS hardware platform as an API — Figure 3/4's block diagram.
//!
//! "The hardware consists of three components: a PC, a scanner, and a UHF
//! translator. … The PC comes equipped with a standard 2.4 GHz Wi-Fi
//! card, the antenna port of which is connected to the UHF translator,
//! which downconverts the outgoing 2.4 GHz signal to the 512–698 MHz
//! band. … The center frequency of the UHF translator is set from the PC
//! via a serial control interface. … we use the technique presented in
//! [15] of changing the PLL clock frequency to reduce the Wi-Fi
//! transmission bandwidth" (§3).
//!
//! This module composes the crate's pieces into that device model:
//!
//! * [`UhfTranslator`] — the serially-controlled centre frequency;
//! * [`AtherosDriver`] — the 5/10/20 MHz variable-width driver and its
//!   PLL-scaled timing;
//! * [`KnowsDevice`] — translator + driver + scanner, exposing the two
//!   analysis paths of Figure 4: the time-domain path (raw (I,Q) →
//!   SIFT) and the frequency-domain path (FFT → TV/mic detection).

use crate::feature::{FeatureDetector, Incumbent, IqSynthesizer};
use crate::scanner::{Scanner, VisibleBurst};
use crate::sift::{Detection, Sift, StreamingSift};
use crate::time::{SimDuration, SimTime};
use crate::timing::PhyTiming;
use rand::Rng;
use whitefi_spectrum::{UhfChannel, WfChannel, Width};

/// The UHF translator: tunes the transceiver chain's centre frequency
/// ("set from the PC via a serial control interface").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UhfTranslator {
    center: UhfChannel,
}

impl UhfTranslator {
    /// Powers up tuned to the given UHF channel.
    pub fn new(center: UhfChannel) -> Self {
        Self { center }
    }

    /// Retunes the centre frequency. Returns the analogue of the serial
    /// command latency (a few milliseconds — "the overhead … is the extra
    /// time taken to switch across channels, which is known to be a few
    /// milliseconds", §4.3).
    pub fn set_center(&mut self, center: UhfChannel) -> SimDuration {
        self.center = center;
        SimDuration::from_millis(3)
    }

    /// The tuned UHF channel.
    pub fn center(&self) -> UhfChannel {
        self.center
    }

    /// The tuned centre frequency in MHz (512–698 band).
    pub fn center_mhz(&self) -> f64 {
        self.center.center_mhz()
    }
}

/// The modified Atheros driver: 5/10/20 MHz signal bandwidth by PLL
/// clock scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtherosDriver {
    width: Width,
}

impl AtherosDriver {
    /// Powers up at the given width.
    pub fn new(width: Width) -> Self {
        Self { width }
    }

    /// Changes the PLL clock ("an expensive switch of the PLL clock
    /// frequency is required to decode packets at other channel widths",
    /// §2.2). Returns the switching latency.
    pub fn set_width(&mut self, width: Width) -> SimDuration {
        self.width = width;
        SimDuration::from_millis(5)
    }

    /// The current signal bandwidth.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The PLL-scaled PHY timing at the current width.
    pub fn timing(&self) -> PhyTiming {
        PhyTiming::for_width(self.width)
    }
}

/// The assembled KNOWS device: one transceiver chain (translator +
/// Atheros driver) and one scanner (USRP + TVRX daughterboard).
#[derive(Debug, Clone)]
pub struct KnowsDevice {
    /// The transceiver's UHF translator.
    pub translator: UhfTranslator,
    /// The variable-width Wi-Fi driver.
    pub driver: AtherosDriver,
    /// The scanner front-end.
    pub scanner: Scanner,
    /// Time-domain analysis (Figure 4's "Temporal Analysis (SIFT)").
    pub sift: Sift,
    /// Frequency-domain analysis (Figure 4's "FFT → TV/MIC Detection").
    pub feature: FeatureDetector,
}

impl KnowsDevice {
    /// A device tuned to `channel`.
    pub fn new(channel: WfChannel) -> Self {
        Self {
            translator: UhfTranslator::new(channel.center()),
            driver: AtherosDriver::new(channel.width()),
            scanner: Scanner::new(),
            sift: Sift::default(),
            feature: FeatureDetector::default(),
        }
    }

    /// The `(F, W)` channel the transceiver is tuned to, if the current
    /// translator/driver combination is a valid in-band channel.
    pub fn tuned_channel(&self) -> Option<WfChannel> {
        WfChannel::new(self.translator.center(), self.driver.width())
    }

    /// Retunes the whole transceiver chain; returns the combined
    /// translator + PLL latency.
    pub fn tune(&mut self, channel: WfChannel) -> SimDuration {
        let mut latency = SimDuration::ZERO;
        if self.translator.center() != channel.center() {
            latency += self.translator.set_center(channel.center());
        }
        if self.driver.width() != channel.width() {
            latency += self.driver.set_width(channel.width());
        }
        latency
    }

    /// Runs one scanner dwell on `scan_center` over the given on-air
    /// transmissions, returning SIFT's detections (the AP-discovery
    /// primitive). Samples flow block-at-a-time from the scanner into
    /// [`StreamingSift`]; the dwell's trace is never materialized whole.
    pub fn sift_dwell<R: Rng + ?Sized>(
        &self,
        scan_center: UhfChannel,
        on_air: &[VisibleBurst],
        window_start: SimTime,
        dwell: SimDuration,
        rng: &mut R,
    ) -> Vec<Detection> {
        let mut stream = self
            .scanner
            .capture_stream(scan_center, on_air, window_start, dwell, rng);
        let mut sift = StreamingSift::new(self.sift.config);
        let mut out = Vec::new();
        while let Some(block) = stream.next_block() {
            out.extend(sift.push_block(block));
        }
        out.extend(sift.finish());
        out
    }

    /// Runs the frequency-domain incumbent classifier on a synthetic
    /// capture of the current scan span (TV/mic powers at the antenna).
    pub fn classify_incumbent<R: Rng + ?Sized>(
        &self,
        environment: &IqSynthesizer,
        frames: usize,
        rng: &mut R,
    ) -> Incumbent {
        let capture = environment.generate(frames, rng);
        self.feature.classify(&capture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::data_ack_exchange;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tune_round_trip_and_latency() {
        let a = WfChannel::from_parts(7, Width::W20);
        let b = WfChannel::from_parts(13, Width::W10);
        let mut dev = KnowsDevice::new(a);
        assert_eq!(dev.tuned_channel(), Some(a));
        let lat = dev.tune(b);
        assert_eq!(dev.tuned_channel(), Some(b));
        // Centre + PLL both changed: 3 + 5 ms.
        assert_eq!(lat, SimDuration::from_millis(8));
        // Same-channel tune is free.
        assert_eq!(dev.tune(b), SimDuration::ZERO);
        // Width-only change pays just the PLL switch.
        let c = WfChannel::from_parts(13, Width::W5);
        assert_eq!(dev.tune(c), SimDuration::from_millis(5));
    }

    #[test]
    fn edge_tuning_is_invalid() {
        let mut dev = KnowsDevice::new(WfChannel::from_parts(5, Width::W5));
        // A 20 MHz width centred at channel 0 hangs off the band edge.
        dev.translator.set_center(UhfChannel::from_index(0));
        dev.driver.set_width(Width::W20);
        assert_eq!(dev.tuned_channel(), None);
    }

    #[test]
    fn sift_dwell_detects_neighbouring_transmitter() {
        let dev = KnowsDevice::new(WfChannel::from_parts(5, Width::W5));
        let tx = WfChannel::from_parts(10, Width::W20);
        let ex = data_ack_exchange(SimTime::from_millis(1), Width::W20, 1000, 1000.0);
        let on_air: Vec<VisibleBurst> = ex
            .iter()
            .map(|&burst| VisibleBurst { channel: tx, burst })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let hits = dev.sift_dwell(
            UhfChannel::from_index(9),
            &on_air,
            SimTime::ZERO,
            SimDuration::from_millis(5),
            &mut rng,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].width, Width::W20);
    }

    #[test]
    fn both_analysis_paths_coexist() {
        // Figure 4: the same platform runs SIFT and the FFT detector.
        let dev = KnowsDevice::new(WfChannel::from_parts(7, Width::W20));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let env = IqSynthesizer {
            tv_dbm: Some(-100.0),
            mic: None,
        };
        assert_eq!(dev.classify_incumbent(&env, 16, &mut rng), Incumbent::Tv);
        let env = IqSynthesizer {
            tv_dbm: None,
            mic: Some((-105.0, 1.0e6)),
        };
        assert_eq!(dev.classify_incumbent(&env, 16, &mut rng), Incumbent::Mic);
        let env = IqSynthesizer::default();
        assert_eq!(dev.classify_incumbent(&env, 16, &mut rng), Incumbent::None);
    }

    #[test]
    fn translator_reports_band_frequencies() {
        let t = UhfTranslator::new(UhfChannel::from_index(0));
        assert!((t.center_mhz() - 515.0).abs() < 1e-9);
        let mut t = t;
        t.set_center(UhfChannel::from_index(29));
        assert!((t.center_mhz() - 695.0).abs() < 1e-9);
    }
}
