//! Property-based tests for the FFT and the frequency-domain feature
//! detector.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi_phy::feature::{
    amplitude_for_dbm, bin_frequency_hz, welch_psd, FeatureDetector, Incumbent, IqSynthesizer,
    FFT_SIZE,
};
use whitefi_phy::fft::{dft_naive, fft, ifft, Complex};

fn arb_signal(max_pow: u32) -> impl Strategy<Value = Vec<Complex>> {
    (1u32..=max_pow, any::<u64>()).prop_map(|(p, seed)| {
        let n = 1usize << p;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT matches the naive DFT for all power-of-two sizes.
    #[test]
    fn fft_matches_dft(sig in arb_signal(8)) {
        let want = dft_naive(&sig);
        let mut got = sig.clone();
        fft(&mut got);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.re - w.re).abs() < 1e-7);
            prop_assert!((g.im - w.im).abs() < 1e-7);
        }
    }

    /// IFFT ∘ FFT is the identity.
    #[test]
    fn round_trip(sig in arb_signal(10)) {
        let mut buf = sig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&sig) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    /// Linearity: FFT(a·x + y) = a·FFT(x) + FFT(y).
    #[test]
    fn linearity(x in arb_signal(6), scale in -3.0f64..3.0) {
        let n = x.len();
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        use rand::Rng;
        let y: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let combined: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| *a * scale + *b)
            .collect();
        let mut fx = x.clone();
        fft(&mut fx);
        let mut fy = y.clone();
        fft(&mut fy);
        let mut fc = combined;
        fft(&mut fc);
        for i in 0..n {
            let want = fx[i] * scale + fy[i];
            prop_assert!((fc[i].re - want.re).abs() < 1e-7);
            prop_assert!((fc[i].im - want.im).abs() < 1e-7);
        }
    }

    /// The feature detector classifies correctly across the operating
    /// envelope: TV ≥ −114 dBm, mic ≥ −110 dBm, noise stays clean.
    #[test]
    fn classification_envelope(
        seed in 0u64..200,
        tv_dbm in -114.0f64..-80.0,
        mic_dbm in -110.0f64..-80.0,
        mic_offset in -3.0e6f64..3.5e6,
    ) {
        let det = FeatureDetector::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tv = IqSynthesizer { tv_dbm: Some(tv_dbm), mic: None }.generate(16, &mut rng);
        prop_assert_eq!(det.classify(&tv), Incumbent::Tv, "tv at {} dBm", tv_dbm);
        let mic = IqSynthesizer { tv_dbm: None, mic: Some((mic_dbm, mic_offset)) }
            .generate(16, &mut rng);
        prop_assert_eq!(det.classify(&mic), Incumbent::Mic,
            "mic at {} dBm offset {}", mic_dbm, mic_offset);
        let noise = IqSynthesizer::default().generate(16, &mut rng);
        prop_assert_eq!(det.classify(&noise), Incumbent::None);
    }

    /// PSD of pure noise is flat: no bin more than ~8x the median with
    /// 16-frame averaging.
    #[test]
    fn noise_psd_flat(seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let capture = IqSynthesizer::default().generate(16, &mut rng);
        let psd = welch_psd(&capture);
        let mut sorted = psd.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[FFT_SIZE / 2];
        let peak = *sorted.last().unwrap();
        prop_assert!(peak / median < 8.0, "peak/median {}", peak / median);
    }

    /// Amplitude calibration is exponential in dBm.
    #[test]
    fn amplitude_monotone(a in -140.0f64..-80.0, b in -140.0f64..-80.0) {
        prop_assume!(a < b);
        prop_assert!(amplitude_for_dbm(a) < amplitude_for_dbm(b));
        // +20 dB = 10x amplitude.
        let r = amplitude_for_dbm(a + 20.0) / amplitude_for_dbm(a);
        prop_assert!((r - 10.0).abs() < 1e-9);
    }
}

#[test]
fn bin_frequencies_monotone() {
    let mut prev = f64::MIN;
    for k in 0..FFT_SIZE {
        let f = bin_frequency_hz(k);
        assert!(f > prev);
        prev = f;
    }
}
