//! Differential suite: batched lane kernels vs their scalar references,
//! and streaming (block-at-a-time) processing vs whole-buffer processing.
//!
//! Everything here asserts **bit-identical** output (`f32::to_bits` /
//! exact struct equality), not approximate closeness — the lane kernels
//! are only admissible because they reassociate nothing (DESIGN.md §12).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whitefi_phy::kernels;
use whitefi_phy::synth::{data_ack_exchange, duration_to_samples};
use whitefi_phy::{
    Burst, BurstKind, Sift, SimDuration, SimTime, StreamingSift, Synthesizer, BLOCK_SAMPLES,
};
use whitefi_spectrum::Width;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A pseudo-random trace with burst-like structure: quiet floor with
/// occasional high-amplitude plateaus, so threshold kernels see real
/// edges rather than white noise.
fn structured_trace(len: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(len);
    let mut level = 30.0f64;
    for _ in 0..len {
        if r.gen::<f64>() < 0.01 {
            level = if level > 100.0 { 30.0 } else { 900.0 };
        }
        #[allow(clippy::cast_possible_truncation)] // test fixture, range ≪ f32 max
        out.push((level * r.gen_range(0.5..1.5)) as f32);
    }
    out
}

// ---------------------------------------------------------------------
// Kernel-level: batched vs scalar reference, bit for bit.
// ---------------------------------------------------------------------

#[test]
fn window_sums_batched_matches_ref_across_sizes() {
    for &len in &[0usize, 1, 4, 5, 31, 32, 1000, 4097] {
        let trace = structured_trace(len, 7 + len as u64);
        for &w in &[1usize, 2, 5, 16] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            kernels::window_sums(&trace, w, &mut a);
            kernels::window_sums_ref(&trace, w, &mut b);
            let ab: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb, "len {len} w {w}");
        }
    }
}

#[test]
fn above_runs_and_rlast_batched_match_ref() {
    for &len in &[0usize, 3, 64, 1000, 4097] {
        let trace = structured_trace(len, 19 + len as u64);
        let mut sums = Vec::new();
        kernels::window_sums(&trace, 5.min(len.max(1)), &mut sums);
        for &thr in &[0.0f64, 150.0 * 5.0, 1e9] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            kernels::above_runs(&sums, thr, &mut a);
            kernels::above_runs_ref(&sums, thr, &mut b);
            assert_eq!(a, b, "len {len} thr {thr}");
        }
        assert_eq!(
            kernels::rlast_above(&trace, 150.0),
            kernels::rlast_above_ref(&trace, 150.0),
            "len {len}"
        );
    }
}

#[test]
fn noise_and_ripple_batched_match_ref_in_rng_lockstep() {
    for &len in &[0usize, 1, 7, 64, 4097] {
        let acc: Vec<f64> = structured_trace(len, 3 + len as u64)
            .iter()
            .map(|&s| f64::from(s))
            .collect();

        let mut seg_a = acc.clone();
        let mut seg_b = acc.clone();
        let (mut ra, mut rb) = (rng(5), rng(5));
        kernels::accumulate_ripple(&mut seg_a, 700.0, 0.55, 1.45, &mut ra);
        kernels::accumulate_ripple_ref(&mut seg_b, 700.0, 0.55, 1.45, &mut rb);
        assert_eq!(ra.gen::<u64>(), rb.gen::<u64>(), "ripple rng lockstep");
        let ab: Vec<u64> = seg_a.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u64> = seg_b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb, "ripple len {len}");

        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        let (mut ra, mut rb) = (rng(9), rng(9));
        let (mut ca, mut cb) = (None, None);
        kernels::add_noise(&acc, 30.0, &mut ca, &mut oa, &mut ra);
        kernels::add_noise_ref(&acc, 30.0, &mut cb, &mut ob, &mut rb);
        assert_eq!(ra.gen::<u64>(), rb.gen::<u64>(), "noise rng lockstep");
        assert_eq!(ca.map(f64::to_bits), cb.map(f64::to_bits), "carry");
        let ab: Vec<u32> = oa.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = ob.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb, "noise len {len}");
    }
}

// ---------------------------------------------------------------------
// Pipeline-level: extraction, detection and synthesis.
// ---------------------------------------------------------------------

#[test]
fn extract_bursts_batched_matches_ref_on_synthetic_traces() {
    let sift = Sift::default();
    for seed in 0..8 {
        let trace = structured_trace(20_000, 100 + seed);
        assert_eq!(
            sift.extract_bursts(&trace),
            sift.extract_bursts_ref(&trace),
            "seed {seed}"
        );
    }
}

#[test]
fn synthesize_matches_scalar_reference_on_noisy_exchange() {
    let synth = Synthesizer::new();
    for width in [Width::W5, Width::W10, Width::W20] {
        let ex = data_ack_exchange(SimTime::from_millis(1), width, 1200, 900.0);
        let window = SimDuration::from_millis(6);
        let a = synth.synthesize(&ex, window, &mut rng(21));
        let b = synth.synthesize_ref(&ex, window, &mut rng(21));
        let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb, "{width:?}");
    }
}

#[test]
fn synth_stream_blocks_concatenate_to_buffered_trace() {
    let synth = Synthesizer::new();
    let ex = data_ack_exchange(SimTime::from_millis(1), Width::W10, 1500, 800.0);
    let window = SimDuration::from_millis(8);
    let whole = synth.synthesize(&ex, window, &mut rng(4));
    let mut stream = synth.stream(&ex, window, &mut rng(4));
    let mut cat: Vec<f32> = Vec::new();
    while let Some(block) = stream.next_block() {
        assert!(block.len() <= BLOCK_SAMPLES);
        cat.extend_from_slice(block);
    }
    assert_eq!(cat.len(), whole.len());
    let ab: Vec<u32> = cat.iter().map(|x| x.to_bits()).collect();
    let bb: Vec<u32> = whole.iter().map(|x| x.to_bits()).collect();
    assert_eq!(ab, bb);
}

/// Feeds `trace` to a fresh `StreamingSift` in chunks of the given sizes
/// (cycling), returning the detections plus the busy-sample counter.
fn run_streaming(
    sift: &Sift,
    trace: &[f32],
    chunks: &[usize],
) -> (Vec<whitefi_phy::Detection>, u64) {
    let mut s = StreamingSift::new(sift.config);
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut ci = 0usize;
    while pos < trace.len() {
        let take = chunks[ci % chunks.len()].min(trace.len() - pos);
        ci += 1;
        out.extend(s.push_block(&trace[pos..pos + take]));
        pos += take;
    }
    out.extend(s.finish());
    (out, s.busy_samples())
}

// ---------------------------------------------------------------------
// Block-boundary edge cases (satellite 3).
// ---------------------------------------------------------------------

#[test]
fn burst_spanning_chunk_boundary_detected_identically() {
    // Data frame positioned so its rising edge sits mid-way through a
    // BLOCK_SAMPLES boundary, with the ACK entirely in the next block.
    let synth = Synthesizer::new();
    let start_ns = (BLOCK_SAMPLES as u64 - 200) * whitefi_phy::SAMPLE_NS;
    let ex = data_ack_exchange(SimTime::from_nanos(start_ns), Width::W20, 800, 900.0);
    let trace = synth.synthesize(&ex, SimDuration::from_millis(6), &mut rng(31));
    let sift = Sift::default();
    let buffered = sift.detect(&trace);
    assert!(!buffered.is_empty(), "fixture must detect something");
    let (streamed, _) = run_streaming(&sift, &trace, &[BLOCK_SAMPLES]);
    assert_eq!(streamed, buffered);
}

#[test]
fn merge_gap_dip_straddling_block_boundary_still_merges() {
    // Two ideal plateaus separated by a sub-merge-gap dip placed exactly
    // on a chunk boundary: the streaming merge stage must stitch them
    // just like the buffered pass does.
    let sift = Sift::default();
    let gap = sift.config.merge_gap; // dip width ≤ merge_gap ⇒ one burst
    let mut trace = vec![0.0f32; 4 * BLOCK_SAMPLES];
    let dip_at = 2 * BLOCK_SAMPLES;
    for (i, s) in trace.iter_mut().enumerate() {
        let in_dip = (dip_at..dip_at + gap).contains(&i);
        if (BLOCK_SAMPLES..3 * BLOCK_SAMPLES).contains(&i) && !in_dip {
            *s = 900.0;
        }
    }
    let buffered = sift.extract_bursts(&trace);
    assert_eq!(buffered.len(), 1, "dip must merge into one burst");
    for chunks in [&[1usize][..], &[BLOCK_SAMPLES][..], &[gap - 1, 3][..]] {
        let (_, busy) = run_streaming(&sift, &trace, chunks);
        assert_eq!(busy, buffered[0].len as u64, "chunks {chunks:?}");
    }
}

#[test]
fn trace_shorter_than_ma_window_yields_nothing_in_both_paths() {
    let sift = Sift::default();
    let trace = vec![5000.0f32; sift.config.window - 1];
    assert!(sift.detect(&trace).is_empty());
    let (streamed, busy) = run_streaming(&sift, &trace, &[1]);
    assert!(streamed.is_empty());
    assert_eq!(busy, 0);
}

#[test]
fn w5_low_amplitude_head_split_across_blocks_matches_buffered() {
    // A 5 MHz frame whose low-amplitude head straddles a block boundary:
    // position the burst so the head region covers the BLOCK_SAMPLES
    // seam, then check streaming classification agrees with buffered.
    let synth = Synthesizer::new();
    let head_frac = synth.config.w5_head_fraction;
    assert!(head_frac > 0.0, "fixture needs a head");
    let dur = SimDuration::from_micros(2000);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // small positive count
    let head_samples = (duration_to_samples(dur) * head_frac) as usize;
    // Start so that the seam falls inside [start, start + head_samples).
    let start_samples = BLOCK_SAMPLES - head_samples / 2;
    let start = SimTime::from_nanos(start_samples as u64 * whitefi_phy::SAMPLE_NS);
    let ex = data_ack_exchange(start, Width::W5, 1000, 900.0);
    assert_eq!(ex[0].kind, BurstKind::Data);
    let trace = synth.synthesize(&ex, SimDuration::from_millis(10), &mut rng(77));
    let sift = Sift::default();
    let buffered = sift.detect(&trace);
    for chunks in [&[BLOCK_SAMPLES][..], &[257usize][..], &[1usize][..]] {
        let (streamed, _) = run_streaming(&sift, &trace, chunks);
        assert_eq!(streamed, buffered, "chunks {chunks:?}");
    }
}

// ---------------------------------------------------------------------
// Property: ANY chunking of the sample stream is invisible (tentpole).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunking the trace arbitrarily — including 1-sample blocks —
    /// yields exactly the detections, busy count and sample count of the
    /// whole-buffer `Sift::detect`.
    #[test]
    fn any_chunking_matches_whole_buffer_detect(
        seed in 0u64..1_000,
        chunks in prop::collection::vec(1usize..3 * BLOCK_SAMPLES, 1..8),
        n_exchanges in 1usize..4,
    ) {
        let synth = Synthesizer::new();
        let mut bursts: Vec<Burst> = Vec::new();
        let mut r = rng(seed);
        for k in 0..n_exchanges {
            let width = [Width::W5, Width::W10, Width::W20][k % 3];
            let at = SimTime::from_micros(1_000 + 9_000 * k as u64 + r.gen_range(0u64..500));
            bursts.extend(data_ack_exchange(at, width, 1000, 900.0));
        }
        let trace = synth.synthesize(
            &bursts,
            SimDuration::from_millis(2 + 9 * n_exchanges as u64),
            &mut rng(seed ^ 0xABCD),
        );
        let sift = Sift::default();
        let buffered = sift.detect(&trace);
        let busy_truth: u64 = sift
            .extract_bursts(&trace)
            .iter()
            .map(|b| b.len as u64)
            .sum();
        let (streamed, busy) = run_streaming(&sift, &trace, &chunks);
        prop_assert_eq!(streamed, buffered);
        prop_assert_eq!(busy, busy_truth);
        // The degenerate 1-sample chunking as well, on the same fixture.
        let (one_by_one, busy1) = run_streaming(&sift, &trace, &[1]);
        prop_assert_eq!(one_by_one, sift.detect(&trace));
        prop_assert_eq!(busy1, busy_truth);
    }
}
