//! Property-based tests: SIFT burst extraction must invert waveform
//! synthesis across widths, packet sizes, amplitudes and schedules.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi_phy::synth::{data_ack_exchange, duration_to_samples};
use whitefi_phy::{
    Burst, BurstKind, DetectionKind, PhyTiming, Sift, SimDuration, SimTime, Synthesizer,
};
use whitefi_spectrum::Width;

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W5), Just(Width::W10), Just(Width::W20)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under ideal (noiseless, ripple-free) synthesis, extraction recovers
    /// every burst's edges to within one sample.
    #[test]
    fn extraction_inverts_ideal_synthesis(
        starts in prop::collection::vec(0u64..40_000, 1..6),
        dur_us in 100u64..800,
    ) {
        // Build non-overlapping bursts separated by ≥ 100 µs.
        let mut offsets: Vec<u64> = starts;
        offsets.sort_unstable();
        offsets.dedup();
        let mut bursts = Vec::new();
        let mut t = 0u64;
        for o in &offsets {
            t = t.max(*o) ;
            bursts.push(Burst {
                start: SimTime::from_micros(t),
                duration: SimDuration::from_micros(dur_us),
                width: Width::W20,
                amplitude: 1000.0,
                kind: BurstKind::Data,
            });
            t += dur_us + 100;
        }
        let window = SimDuration::from_micros(t + 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = Synthesizer::ideal().synthesize(&bursts, window, &mut rng);
        let found = Sift::default().extract_bursts(&trace);
        prop_assert_eq!(found.len(), bursts.len());
        for (f, b) in found.iter().zip(&bursts) {
            let want_start = duration_to_samples(b.start.since(SimTime::ZERO));
            let want_len = duration_to_samples(b.duration);
            prop_assert!((f.start as f64 - want_start).abs() <= 1.0);
            prop_assert!((f.len as f64 - want_len).abs() <= 1.5);
        }
    }

    /// A strong data/ACK exchange of any width and size is detected with
    /// the right width under realistic noise and ripple.
    #[test]
    fn exchange_width_classified_correctly(
        width in arb_width(),
        bytes in 64usize..1500,
        seed in 0u64..500,
        amplitude in 400f64..5000.0,
    ) {
        let ex = data_ack_exchange(SimTime::from_micros(500), width, bytes, amplitude);
        let window = ex[1].start + ex[1].duration + SimDuration::from_millis(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = Synthesizer::new()
            .synthesize(&ex, SimDuration::from_nanos(window.as_nanos()), &mut rng);
        let detections = Sift::default().detect(&trace);
        prop_assert_eq!(detections.len(), 1, "width {:?} bytes {}", width, bytes);
        prop_assert_eq!(detections[0].width, width);
        // A data frame whose length matches a beacon's is inherently
        // indistinguishable from one in the time domain (SIFT cannot
        // decode); accept either kind in that narrow band.
        if (bytes as i64 - whitefi_phy::BEACON_BYTES as i64).abs() > 3 {
            prop_assert_eq!(detections[0].kind, DetectionKind::DataAck);
        }
    }

    /// Airtime measured by SIFT tracks ground truth within 3% for
    /// non-overlapping schedules that fit the window.
    #[test]
    fn airtime_tracks_ground_truth(
        width in arb_width(),
        n in 1usize..10,
        gap_us in 500u64..3_000,
        seed in 0u64..100,
    ) {
        let mut bursts = Vec::new();
        let mut t = SimTime::from_micros(100);
        let mut on = 0u64;
        for _ in 0..n {
            let ex = data_ack_exchange(t, width, 256, 1200.0);
            on += ex[0].duration.as_nanos() + ex[1].duration.as_nanos();
            t = ex[1].start + ex[1].duration + SimDuration::from_micros(gap_us);
            bursts.extend(ex);
        }
        let window = SimDuration::from_nanos(t.as_nanos() + 1_000_000);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = Synthesizer::new().synthesize(&bursts, window, &mut rng);
        let measured = Sift::default().airtime_fraction(&trace);
        let truth = on as f64 / window.as_nanos() as f64;
        // 5 MHz packets carry the low-amplitude head (§5.1): when it
        // dips below the threshold SIFT under-measures the packet by up
        // to the head fraction — the paper's own 5 MHz caveat.
        let under_allow = if width == Width::W5 { 0.2 * truth + 0.01 } else { 0.03 };
        prop_assert!(
            measured <= truth + 0.03 && measured >= truth - under_allow,
            "measured {} truth {}", measured, truth
        );
    }

    /// Frame durations are exactly linear in the width scale factor.
    #[test]
    fn durations_scale_exactly(bytes in 1usize..2000) {
        let d20 = PhyTiming::for_width(Width::W20).frame_duration(bytes).as_nanos();
        let d10 = PhyTiming::for_width(Width::W10).frame_duration(bytes).as_nanos();
        let d5 = PhyTiming::for_width(Width::W5).frame_duration(bytes).as_nanos();
        prop_assert_eq!(d10, 2 * d20);
        prop_assert_eq!(d5, 4 * d20);
    }

    /// The throughput-relevant invariant behind Figure 6: sending the same
    /// bytes at half the width takes exactly twice the airtime, so airtime
    /// per byte is constant in offered load but doubles per halving.
    #[test]
    fn airtime_per_byte_constant_per_width(bytes in 200usize..1400) {
        let per = |w: Width| {
            PhyTiming::for_width(w).exchange_duration(bytes).as_nanos() as f64 / bytes as f64
        };
        prop_assert!((per(Width::W10) / per(Width::W20) - 2.0).abs() < 1e-9);
        prop_assert!((per(Width::W5) / per(Width::W20) - 4.0).abs() < 1e-9);
    }

    /// SIFT never reports a width for pure noise.
    #[test]
    fn noise_never_classified(seed in 0u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = Synthesizer::new().synthesize(&[], SimDuration::from_millis(20), &mut rng);
        prop_assert!(Sift::default().detect(&trace).is_empty());
    }
}
