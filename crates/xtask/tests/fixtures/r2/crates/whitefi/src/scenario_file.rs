//! R2 fixture: wall-clock reads inside the scenario loader path.
use std::time::Instant;

pub fn parse_timed(src: &str) -> usize {
    let start = Instant::now();
    let n = src.len() + start.elapsed().as_nanos() as usize;
    n
}
