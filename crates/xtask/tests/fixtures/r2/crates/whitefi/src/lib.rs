//! R2 fixture: ambient nondeterminism in a sim path.
use std::time::Instant;

pub fn elapsed_jitter() -> u64 {
    let start = Instant::now();
    let r: u8 = rand::thread_rng().gen();
    start.elapsed().as_nanos() as u64 + r as u64
}
