//! Waiver fixture: a waiver without a reason does not silence anything.

pub fn nope(xs: &[u32]) -> u32 {
    // lint:allow(unwrap)
    *xs.first().unwrap()
}
