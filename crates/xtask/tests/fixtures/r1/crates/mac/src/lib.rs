//! R1 fixture: unordered containers in a sim-deterministic crate.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn build() -> (HashMap<u32, u32>, BTreeMap<u32, u32>) {
    (HashMap::new(), BTreeMap::new())
}
