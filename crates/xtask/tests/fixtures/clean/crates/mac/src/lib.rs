//! Clean fixture: everything the rules want to see.
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

pub fn node_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    r.set_stream(stream); // stream-map: domain=sim-nodes salt=scenario-seed streams=0..=1023 role="per-node draws (stream = node id)"
    r
}

pub fn ordered() -> BTreeMap<u32, &'static str> {
    BTreeMap::from([(1, "HashMap in a string literal is fine")])
}

pub fn total(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::total(&[1.0]).to_string().parse::<f64>().unwrap(), 1.0);
    }
}
