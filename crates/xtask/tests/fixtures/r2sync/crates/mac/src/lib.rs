//! r2sync fixture: ad-hoc synchronization primitives in sim-crate
//! library code, outside the boundary-channel allowlist.
use std::sync::Mutex;
use std::sync::mpsc;

fn f() {
    let lock = std::sync::RwLock::new(0u8);
    let cv = std::sync::Condvar::new();
    let _ = (&lock, &cv);
}

// A waived site keeps the waiver path honest for the sync ban too.
fn g() {
    let m = Mutex::new(0u8); // lint:allow(nondet, fixture: exercising the sync waiver)
    let _ = m;
}

#[cfg(test)]
mod tests {
    // Test regions may lock freely — must not fire.
    use std::sync::Mutex;
}
