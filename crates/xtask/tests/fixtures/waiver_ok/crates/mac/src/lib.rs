//! Waiver fixture: reasoned waivers silence their target line only.

pub fn trailing(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty by contract") // lint:allow(unwrap, caller guarantees a non-empty slice)
}

pub fn standalone(xs: &[u32]) -> u32 {
    // lint:allow(unwrap, index 0 exists: the constructor always pushes one element)
    *xs.first().unwrap()
}
