//! R5 fixture: the batched lane kernels are hot numeric kernels too.

pub fn widen(lane: [f32; 4]) -> [f64; 4] {
    lane.map(f64::from)
}

pub fn lossy_lane_sum(lane: [f64; 4]) -> f32 {
    (lane[0] + lane[1] + lane[2] + lane[3]) as f32
}

pub fn waived(n: u64) -> f64 {
    n as f64 // lint:allow(cast, fixture: a reasoned waiver stays silent here)
}
