//! R5 fixture: `as` casts in a hot numeric kernel.

pub fn lossless(x: f32) -> f64 {
    f64::from(x)
}

pub fn lossy(n: usize) -> f64 {
    n as f64
}

pub fn truncating(x: f64) -> usize {
    x as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_fine() {
        assert_eq!(3usize as f64, 3.0);
    }
}
