//! R4 fixture: unwrap/expect in library code vs test code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("needs two elements")
}

pub fn safe(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
