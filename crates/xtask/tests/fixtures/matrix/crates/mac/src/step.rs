//! R6 matrix: transitive taint fired, waived (barrier), dead-waived.
pub fn leaks() -> f64 { crate::wall_secs() }
// lint:allow(taint, reads the sanctioned timer; the value feeds logs only, never sim state)
pub fn sanctioned() -> f64 { crate::wall_secs() }
// lint:allow(taint, no ambient path reaches this fn)
pub fn pure() -> f64 { 1.0 }
pub fn clean_caller() -> f64 { crate::timed_secs() }
