//! R1 matrix: one fired, one waived, one dead-waived instance.
use std::collections::HashMap;
// lint:allow(hashmap, scratch map is drained into a sorted Vec before any iteration)
use std::collections::HashSet;
// lint:allow(hashmap, nothing unordered is left on this line)
use std::collections::BTreeMap;
