//! R6 matrix: ambient wrappers behind the R2 file allowlist — under
//! R6 each clock-touching fn here needs its own acknowledgement.
pub fn wall_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }
// lint:allow(taint, sanctioned experiment timing; sims never read the value)
pub fn timed_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }
