//! R4 matrix: one fired, one waived, one dead-waived instance.
pub fn u0(x: Option<u8>) -> u8 { x.unwrap() }
// lint:allow(unwrap, ids are handed out densely by construction)
pub fn u1(x: Option<u8>) -> u8 { x.unwrap() }
// lint:allow(unwrap, the fallible path was removed)
pub fn u2(x: Option<u8>) -> u8 { x.unwrap_or(0) }
