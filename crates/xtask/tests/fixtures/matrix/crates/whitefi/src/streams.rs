//! R7 matrix: one fired, one waived, one dead-waived instance.
pub fn s0(r: &mut Rng, s: u64) { r.set_stream(s); }
// lint:allow(streams, prototype lane; registered in the map before merge)
pub fn s1(r: &mut Rng, s: u64) { r.set_stream(s); }
// lint:allow(streams, this site is annotated now)
pub fn s2(r: &mut Rng, s: u64) { r.set_stream(s); } // stream-map: domain=matrix-lanes salt=matrix-seed streams=0..=3 role="matrix fixture draws"
