//! R2 matrix: one fired, one waived, one dead-waived instance.
pub fn t0() -> u64 { std::time::Instant::now().elapsed().as_secs() }
// lint:allow(nondet, coarse progress logging only; the value never enters sim state)
pub fn t1() -> u64 { std::time::Instant::now().elapsed().as_secs() }
// lint:allow(nondet, the clock read moved into the bench runner)
pub fn t2() -> u64 { 0 }
