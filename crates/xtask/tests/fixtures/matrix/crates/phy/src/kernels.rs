//! R5 matrix: one fired, one waived, one dead-waived instance.
pub fn c0(n: usize) -> f64 { n as f64 }
// lint:allow(cast, sample counts stay far below 2^53 so the cast is lossless)
pub fn c1(n: usize) -> f64 { n as f64 }
// lint:allow(cast, the cast was replaced by From)
pub fn c2(n: u32) -> f64 { f64::from(n) }
