//! R3 matrix: one fired, one waived, one dead-waived instance.
pub fn r0() -> ChaCha8Rng { ChaCha8Rng::from_entropy() }
// lint:allow(rng, one-shot debug helper; stream discipline does not apply here)
pub fn r1() -> ChaCha8Rng { ChaCha8Rng::from_entropy() }
// lint:allow(rng, the constructor is routed through the stream API now)
pub fn r2() -> u8 { 0 }
