//! One seed family, two domains, overlapping stream ranges.
pub fn a(r: &mut Rng, s: u64) { r.set_stream(s); } // stream-map: domain=alpha salt=city-seed streams=0..=4 role="alpha draws"
pub fn b(r: &mut Rng, s: u64) { r.set_stream(s); } // stream-map: domain=beta salt=city-seed streams=4..=9 role="beta draws"
