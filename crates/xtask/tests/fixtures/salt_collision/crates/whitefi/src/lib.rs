//! Same salt value under a different name: two "independent" seed
//! families fold onto one keystream.
pub const FIELD_SALT: u64 = 0x00F0;
pub fn field(r: &mut Rng, s: u64) { r.set_stream(s); } // stream-map: domain=fields salt=FIELD_SALT streams=4..=9 role="field draws"
