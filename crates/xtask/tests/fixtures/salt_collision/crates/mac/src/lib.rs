//! A seed-family salt that collides with another crate's.
pub const LANE_SALT: u64 = 0x00F0;
pub fn lane(r: &mut Rng, s: u64) { r.set_stream(s); } // stream-map: domain=lanes salt=LANE_SALT streams=0..=7 role="lane draws"
