//! The wrapper lexical R2 cannot see past: this file is on the
//! wall-clock allowlist, so the `Instant::now` token never fires.
pub fn now_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }
