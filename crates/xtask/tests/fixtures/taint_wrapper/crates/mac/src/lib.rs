//! Sim code that reaches the wall clock only through the allowlisted
//! wrapper — no banned token appears in this file at all.
pub fn step_duration() -> f64 { crate::now_secs() }
