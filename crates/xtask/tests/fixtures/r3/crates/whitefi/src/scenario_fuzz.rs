//! R3 fixture: ambient RNG construction inside the fuzz generator.
use rand_chacha::ChaCha8Rng;

pub fn stream_good(seed: u64, id: u64) -> ChaCha8Rng {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    r.set_stream(id); // stream-map: domain=fuzz-fields salt=fuzz-seed streams=0..=7 role="per-field fuzz draws"
    r
}

pub fn stream_bad() -> ChaCha8Rng {
    ChaCha8Rng::from_entropy()
}
