//! R3 fixture: RNG construction outside the per-node stream API.
use rand_chacha::ChaCha8Rng;

pub fn rng_good(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    r.set_stream(stream); // stream-map: domain=bench-lanes salt=bench-seed streams=0..=999 role="per-lane bench draws"
    r
}

pub fn rng_bad() -> ChaCha8Rng {
    ChaCha8Rng::from_entropy()
}
