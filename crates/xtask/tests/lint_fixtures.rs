//! Per-rule fixture tests: each seeded violation is detected with the
//! exact rule id and line number, waivers behave, and the clean fixture
//! stays clean.

use std::path::PathBuf;
use xtask::diag::RuleId;
use xtask::lint_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// (rule id, file, line) triples, sorted, for compact assertions.
fn findings(name: &str) -> (Vec<(String, String, u32)>, usize) {
    let out = lint_root(&fixture(name)).expect("fixture tree scans");
    let mut v: Vec<(String, String, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule.id().to_string(), d.file.clone(), d.line))
        .collect();
    v.sort();
    (v, out.waived)
}

#[test]
fn r1_hashmap_detected_at_exact_lines() {
    let (v, waived) = findings("r1");
    assert_eq!(
        v,
        vec![
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 3),
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 5),
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 6),
        ]
    );
    assert_eq!(waived, 0);
}

#[test]
fn r2_nondet_detected() {
    let (v, _) = findings("r2");
    assert_eq!(
        v,
        vec![
            ("R2-nondet".into(), "crates/whitefi/src/lib.rs".into(), 5),
            ("R2-nondet".into(), "crates/whitefi/src/lib.rs".into(), 6),
            (
                "R2-nondet".into(),
                "crates/whitefi/src/scenario_file.rs".into(),
                5,
            ),
        ]
    );
}

#[test]
fn r2_sync_primitives_detected_outside_boundary_channel() {
    let (v, waived) = findings("r2sync");
    assert_eq!(
        v,
        vec![
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 3),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 4),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 7),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 8),
        ]
    );
    // The reasoned waiver inside g() and the #[cfg(test)] Mutex stay
    // silent — one waived site, zero test-region findings.
    assert_eq!(waived, 1);
}

#[test]
fn r3_rng_construction_detected() {
    let (v, _) = findings("r3");
    assert_eq!(
        v,
        vec![
            ("R3-rng".into(), "crates/bench/src/lib.rs".into(), 11),
            (
                "R3-rng".into(),
                "crates/whitefi/src/scenario_fuzz.rs".into(),
                11,
            ),
        ]
    );
}

#[test]
fn r4_unwrap_detected_outside_cfg_test_only() {
    let (v, _) = findings("r4");
    assert_eq!(
        v,
        vec![
            ("R4-unwrap".into(), "crates/spectrum/src/lib.rs".into(), 4),
            ("R4-unwrap".into(), "crates/spectrum/src/lib.rs".into(), 8),
        ]
    );
}

#[test]
fn r5_casts_detected_in_kernel_only() {
    let (v, waived) = findings("r5");
    assert_eq!(
        v,
        vec![
            ("R5-cast".into(), "crates/phy/src/kernels.rs".into(), 8),
            ("R5-cast".into(), "crates/phy/src/sift.rs".into(), 8),
            ("R5-cast".into(), "crates/phy/src/sift.rs".into(), 12),
        ]
    );
    // kernels.rs also carries one reasoned waiver, which stays silent.
    assert_eq!(waived, 1);
}

#[test]
fn reasoned_waivers_silence_and_are_counted() {
    let (v, waived) = findings("waiver_ok");
    assert!(v.is_empty(), "waived sites must not report: {v:?}");
    assert_eq!(waived, 2);
}

#[test]
fn waiver_missing_reason_is_rejected() {
    let out = lint_root(&fixture("waiver_missing_reason")).expect("fixture tree scans");
    let mut pairs: Vec<(String, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule.id().to_string(), d.line))
        .collect();
    pairs.sort();
    // The bad waiver itself plus the unsilenced unwrap.
    assert_eq!(pairs, vec![("R4-unwrap".into(), 5), ("waiver".into(), 4)]);
    assert_eq!(out.waived, 0);
    let w = out
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::Waiver)
        .expect("waiver diagnostic present");
    assert!(w.message.contains("missing its reason"), "{}", w.message);
}

#[test]
fn clean_fixture_is_clean() {
    let (v, waived) = findings("clean");
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
    assert_eq!(waived, 0);
}

/// Every rule R1–R7 with one fired, one waived and one dead-waived
/// instance; the dead waivers surface as R8 at the comment line. (R8
/// itself cannot be waived: `waiver` is not an accepted key, so a
/// "waived R8" is unrepresentable by construction.)
#[test]
fn matrix_fixture_fires_waives_and_deadwaives_every_rule() {
    let (v, waived) = findings("matrix");
    assert_eq!(
        v,
        vec![
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 2),
            ("R2-nondet".into(), "crates/whitefi/src/lib.rs".into(), 2),
            ("R3-rng".into(), "crates/phy/src/lib.rs".into(), 2),
            ("R4-unwrap".into(), "crates/spectrum/src/lib.rs".into(), 2),
            ("R5-cast".into(), "crates/phy/src/kernels.rs".into(), 2),
            ("R6-taint".into(), "crates/bench/src/runner.rs".into(), 3),
            ("R6-taint".into(), "crates/mac/src/step.rs".into(), 2),
            (
                "R7-streams".into(),
                "crates/whitefi/src/streams.rs".into(),
                2
            ),
            ("R8-dead-waiver".into(), "crates/mac/src/lib.rs".into(), 5),
            ("R8-dead-waiver".into(), "crates/mac/src/step.rs".into(), 5),
            (
                "R8-dead-waiver".into(),
                "crates/phy/src/kernels.rs".into(),
                5
            ),
            ("R8-dead-waiver".into(), "crates/phy/src/lib.rs".into(), 5),
            (
                "R8-dead-waiver".into(),
                "crates/spectrum/src/lib.rs".into(),
                5
            ),
            (
                "R8-dead-waiver".into(),
                "crates/whitefi/src/lib.rs".into(),
                5
            ),
            (
                "R8-dead-waiver".into(),
                "crates/whitefi/src/streams.rs".into(),
                5,
            ),
        ]
    );
    // One waived instance per rule R1–R5 + R7, plus two taint waivers
    // (the allowlisted wrapper and the sanctioned sim caller).
    assert_eq!(waived, 8);
}

/// Acceptance: the transitive wrapper that lexical R2 provably misses.
/// The wrapper file sits on the wall-clock allowlist (no R2 token
/// fires anywhere), yet R6 flags both the wrapper fn and the sim fn
/// that reaches the clock through it, with the full witness path.
#[test]
fn taint_wrapper_caught_by_r6_missed_by_r2() {
    let out = lint_root(&fixture("taint_wrapper")).expect("fixture tree scans");
    assert!(
        out.diagnostics.iter().all(|d| d.rule == RuleId::R6Taint),
        "only R6 may fire here (R2 must miss the wrapper): {:?}",
        out.diagnostics
    );
    let (v, _) = findings("taint_wrapper");
    assert_eq!(
        v,
        vec![
            ("R6-taint".into(), "crates/bench/src/runner.rs".into(), 3),
            ("R6-taint".into(), "crates/mac/src/lib.rs".into(), 3),
        ]
    );
    let witness = &out
        .diagnostics
        .iter()
        .find(|d| d.file == "crates/mac/src/lib.rs")
        .expect("sim finding")
        .message;
    assert!(
        witness.contains("step_duration → now_secs → Instant::now()"),
        "{witness}"
    );
}

/// Acceptance: the injected salt collision fails the lint — equal salt
/// values across crates are flagged at both const definitions, and a
/// same-salt cross-domain range overlap is flagged at both sites.
#[test]
fn salt_collision_fixture_fails() {
    let (v, waived) = findings("salt_collision");
    assert_eq!(
        v,
        vec![
            ("R7-streams".into(), "crates/mac/src/lib.rs".into(), 2),
            ("R7-streams".into(), "crates/spectrum/src/lib.rs".into(), 2),
            ("R7-streams".into(), "crates/spectrum/src/lib.rs".into(), 3),
            ("R7-streams".into(), "crates/whitefi/src/lib.rs".into(), 3),
        ]
    );
    assert_eq!(waived, 0);
}

/// Annotated fixtures commit their generated stream map; deleting or
/// editing it is a (non-waivable) R7 finding at STREAM_MAP.md:1.
#[test]
fn stream_map_drift_is_detected() {
    let root = fixture("clean");
    let committed =
        std::fs::read_to_string(root.join("STREAM_MAP.md")).expect("clean fixture commits a map");
    let out = lint_root(&root).expect("fixture tree scans");
    assert_eq!(out.stream_map, committed, "rendered map matches committed");
    // Simulate drift through a scratch copy of the tree.
    let scratch = std::env::temp_dir().join("whitefi_lint_drift_fixture");
    let _ = std::fs::remove_dir_all(&scratch);
    let src_dir = root.join("crates/mac/src");
    let dst_dir = scratch.join("crates/mac/src");
    std::fs::create_dir_all(&dst_dir).expect("scratch tree");
    std::fs::copy(src_dir.join("lib.rs"), dst_dir.join("lib.rs")).expect("copy fixture source");
    std::fs::write(scratch.join("STREAM_MAP.md"), "stale\n").expect("stale map");
    let out = lint_root(&scratch).expect("scratch tree scans");
    assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
    let d = &out.diagnostics[0];
    assert_eq!(d.rule.id(), "R7-streams");
    assert_eq!((d.file.as_str(), d.line), ("STREAM_MAP.md", 1));
    assert!(d.message.contains("stale"), "{}", d.message);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// `--json` output escapes and round-trips the diagnostic fields.
#[test]
fn json_rendering_is_well_formed() {
    let out = lint_root(&fixture("r1")).expect("fixture tree scans");
    let json = out.diagnostics[0].to_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"rule\":\"R1-hashmap\""), "{json}");
    assert!(
        json.contains("\"file\":\"crates/mac/src/lib.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\":3"), "{json}");
}

/// Waiver explain records name what each valid waiver silences.
#[test]
fn waiver_explains_report_silenced_hits() {
    let out = lint_root(&fixture("waiver_ok")).expect("fixture tree scans");
    assert_eq!(out.waiver_explains.len(), 2);
    for w in &out.waiver_explains {
        assert_eq!(w.key, "unwrap");
        assert!(!w.reason.is_empty());
        assert_eq!(w.silenced.len(), 1, "{w:?}");
        assert_eq!(w.silenced[0].0, RuleId::R4Unwrap);
    }
}

#[test]
fn diagnostics_render_with_location_rule_snippet_and_hint() {
    let out = lint_root(&fixture("r1")).expect("fixture tree scans");
    let rendered = format!("{}", out.diagnostics[0]);
    assert!(rendered.contains("crates/mac/src/lib.rs:3"), "{rendered}");
    assert!(rendered.contains("[R1-hashmap]"), "{rendered}");
    assert!(
        rendered.contains("use std::collections::HashMap;"),
        "{rendered}"
    );
    assert!(rendered.contains("hint:"), "{rendered}");
}
