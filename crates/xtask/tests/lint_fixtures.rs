//! Per-rule fixture tests: each seeded violation is detected with the
//! exact rule id and line number, waivers behave, and the clean fixture
//! stays clean.

use std::path::PathBuf;
use xtask::diag::RuleId;
use xtask::lint_root;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// (rule id, file, line) triples, sorted, for compact assertions.
fn findings(name: &str) -> (Vec<(String, String, u32)>, usize) {
    let out = lint_root(&fixture(name)).expect("fixture tree scans");
    let mut v: Vec<(String, String, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule.id().to_string(), d.file.clone(), d.line))
        .collect();
    v.sort();
    (v, out.waived)
}

#[test]
fn r1_hashmap_detected_at_exact_lines() {
    let (v, waived) = findings("r1");
    assert_eq!(
        v,
        vec![
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 3),
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 5),
            ("R1-hashmap".into(), "crates/mac/src/lib.rs".into(), 6),
        ]
    );
    assert_eq!(waived, 0);
}

#[test]
fn r2_nondet_detected() {
    let (v, _) = findings("r2");
    assert_eq!(
        v,
        vec![
            ("R2-nondet".into(), "crates/whitefi/src/lib.rs".into(), 5),
            ("R2-nondet".into(), "crates/whitefi/src/lib.rs".into(), 6),
            (
                "R2-nondet".into(),
                "crates/whitefi/src/scenario_file.rs".into(),
                5,
            ),
        ]
    );
}

#[test]
fn r2_sync_primitives_detected_outside_boundary_channel() {
    let (v, waived) = findings("r2sync");
    assert_eq!(
        v,
        vec![
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 3),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 4),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 7),
            ("R2-nondet".into(), "crates/mac/src/lib.rs".into(), 8),
        ]
    );
    // The reasoned waiver inside g() and the #[cfg(test)] Mutex stay
    // silent — one waived site, zero test-region findings.
    assert_eq!(waived, 1);
}

#[test]
fn r3_rng_construction_detected() {
    let (v, _) = findings("r3");
    assert_eq!(
        v,
        vec![
            ("R3-rng".into(), "crates/bench/src/lib.rs".into(), 11),
            (
                "R3-rng".into(),
                "crates/whitefi/src/scenario_fuzz.rs".into(),
                11,
            ),
        ]
    );
}

#[test]
fn r4_unwrap_detected_outside_cfg_test_only() {
    let (v, _) = findings("r4");
    assert_eq!(
        v,
        vec![
            ("R4-unwrap".into(), "crates/spectrum/src/lib.rs".into(), 4),
            ("R4-unwrap".into(), "crates/spectrum/src/lib.rs".into(), 8),
        ]
    );
}

#[test]
fn r5_casts_detected_in_kernel_only() {
    let (v, waived) = findings("r5");
    assert_eq!(
        v,
        vec![
            ("R5-cast".into(), "crates/phy/src/kernels.rs".into(), 8),
            ("R5-cast".into(), "crates/phy/src/sift.rs".into(), 8),
            ("R5-cast".into(), "crates/phy/src/sift.rs".into(), 12),
        ]
    );
    // kernels.rs also carries one reasoned waiver, which stays silent.
    assert_eq!(waived, 1);
}

#[test]
fn reasoned_waivers_silence_and_are_counted() {
    let (v, waived) = findings("waiver_ok");
    assert!(v.is_empty(), "waived sites must not report: {v:?}");
    assert_eq!(waived, 2);
}

#[test]
fn waiver_missing_reason_is_rejected() {
    let out = lint_root(&fixture("waiver_missing_reason")).expect("fixture tree scans");
    let mut pairs: Vec<(String, u32)> = out
        .diagnostics
        .iter()
        .map(|d| (d.rule.id().to_string(), d.line))
        .collect();
    pairs.sort();
    // The bad waiver itself plus the unsilenced unwrap.
    assert_eq!(pairs, vec![("R4-unwrap".into(), 5), ("waiver".into(), 4)]);
    assert_eq!(out.waived, 0);
    let w = out
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::Waiver)
        .expect("waiver diagnostic present");
    assert!(w.message.contains("missing its reason"), "{}", w.message);
}

#[test]
fn clean_fixture_is_clean() {
    let (v, waived) = findings("clean");
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
    assert_eq!(waived, 0);
}

#[test]
fn diagnostics_render_with_location_rule_snippet_and_hint() {
    let out = lint_root(&fixture("r1")).expect("fixture tree scans");
    let rendered = format!("{}", out.diagnostics[0]);
    assert!(rendered.contains("crates/mac/src/lib.rs:3"), "{rendered}");
    assert!(rendered.contains("[R1-hashmap]"), "{rendered}");
    assert!(
        rendered.contains("use std::collections::HashMap;"),
        "{rendered}"
    );
    assert!(rendered.contains("hint:"), "{rendered}");
}
