//! The linter must run clean on the live workspace tree: every historic
//! violation has been fixed or carries a reasoned waiver.

use std::path::PathBuf;

#[test]
fn live_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let out = xtask::lint_root(&root).expect("workspace tree scans");
    assert!(
        out.files > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        out.files
    );
    let rendered: Vec<String> = out.diagnostics.iter().map(|d| format!("{d}")).collect();
    assert!(
        out.clean(),
        "live workspace has {} lint violation(s):\n{}",
        out.diagnostics.len(),
        rendered.join("\n\n")
    );
}
