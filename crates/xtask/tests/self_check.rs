//! The linter must run clean on the live workspace tree: every historic
//! violation has been fixed or carries a reasoned waiver.

use std::path::PathBuf;

#[test]
fn live_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let out = xtask::lint_root(&root).expect("workspace tree scans");
    assert!(
        out.files > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        out.files
    );
    let rendered: Vec<String> = out.diagnostics.iter().map(|d| format!("{d}")).collect();
    assert!(
        out.clean(),
        "live workspace has {} lint violation(s):\n{}",
        out.diagnostics.len(),
        rendered.join("\n\n")
    );
    // The live tree has annotated stream sites, so the rendered map
    // must be non-trivial and match the committed STREAM_MAP.md
    // byte-for-byte (drift would have been a diagnostic above, but
    // assert directly so a drift-check regression cannot hide it).
    assert!(
        out.stream_map.contains("## Stream assignments"),
        "stream map rendered empty on the live tree"
    );
    let committed = std::fs::read_to_string(root.join("STREAM_MAP.md"))
        .expect("STREAM_MAP.md is committed at the workspace root");
    assert_eq!(out.stream_map, committed, "STREAM_MAP.md drifted");
    // Every live waiver silences at least one hit (R8 enforces this as
    // a diagnostic; the explain records must agree) and carries its
    // mandatory reason.
    for w in &out.waiver_explains {
        assert!(
            !w.reason.is_empty(),
            "waiver without reason at {}:{}",
            w.file,
            w.line
        );
        assert!(
            !w.silenced.is_empty(),
            "explain record says waiver at {}:{} is dead, but no R8 fired",
            w.file,
            w.line
        );
    }
}
