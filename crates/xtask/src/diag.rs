//! Structured lint diagnostics.

use std::fmt;

/// The rule a diagnostic belongs to. Ids and waiver keys are part of
/// the repo's check-time contract — see DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: no `HashMap`/`HashSet` in sim-deterministic crates.
    R1Hashmap,
    /// R2: no ambient nondeterminism (`thread_rng`, `rand::random`,
    /// `SystemTime::now`, `Instant::now`) outside the wall-clock
    /// allowlist.
    R2Nondet,
    /// R3: RNGs must come from the per-node stream API; no
    /// `from_entropy` / `from_os_rng`.
    R3Rng,
    /// R4: no `.unwrap()` / `.expect(…)` in library code outside
    /// `#[cfg(test)]` without a reasoned waiver.
    R4Unwrap,
    /// R5: no `as` numeric casts in the hot numeric kernels.
    R5Cast,
    /// R6: no call path from sim-deterministic library code into a
    /// function that (transitively) reaches ambient nondeterminism —
    /// the call-graph taint analysis (DESIGN.md §16).
    R6Taint,
    /// R7: every RNG stream-assignment site carries a `stream-map:`
    /// annotation, salts are pairwise distinct, and same-salt ranges
    /// of different domains are disjoint (DESIGN.md §16).
    R7Streams,
    /// R8: a syntactically valid waiver that no longer silences
    /// anything — the violation it covered was fixed or moved, so the
    /// waiver is dead weight (or the rule regressed).
    R8DeadWaiver,
    /// A malformed waiver comment (missing reason, unknown rule key).
    Waiver,
}

impl RuleId {
    /// Stable diagnostic id (`R1-hashmap`, …).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::R1Hashmap => "R1-hashmap",
            RuleId::R2Nondet => "R2-nondet",
            RuleId::R3Rng => "R3-rng",
            RuleId::R4Unwrap => "R4-unwrap",
            RuleId::R5Cast => "R5-cast",
            RuleId::R6Taint => "R6-taint",
            RuleId::R7Streams => "R7-streams",
            RuleId::R8DeadWaiver => "R8-dead-waiver",
            RuleId::Waiver => "waiver",
        }
    }

    /// The key accepted inside a waiver comment for this rule.
    pub fn waiver_key(self) -> &'static str {
        match self {
            RuleId::R1Hashmap => "hashmap",
            RuleId::R2Nondet => "nondet",
            RuleId::R3Rng => "rng",
            RuleId::R4Unwrap => "unwrap",
            RuleId::R5Cast => "cast",
            RuleId::R6Taint => "taint",
            RuleId::R7Streams => "streams",
            // Dead-waiver and malformed-waiver findings are about the
            // waivers themselves and cannot be waived in turn.
            RuleId::R8DeadWaiver | RuleId::Waiver => "waiver",
        }
    }

    /// The fix-or-waive hint appended to every diagnostic of the rule.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::R1Hashmap => {
                "use BTreeMap/BTreeSet or a sorted Vec (iteration order feeds the \
                 determinism contract, DESIGN.md §7)"
            }
            RuleId::R2Nondet => {
                "sim paths must be scheduling- and wall-clock-independent; draw from the \
                 scenario-seeded RNG or move timing into the bench runner allowlist"
            }
            RuleId::R3Rng => {
                "construct RNGs with ChaCha8Rng::seed_from_u64(seed) + set_stream(node id) \
                 (per-node stream contract, DESIGN.md §9)"
            }
            RuleId::R4Unwrap => {
                "propagate a typed error, or restructure so the invariant is visible; \
                 a panic that guards a real invariant needs a reasoned waiver"
            }
            RuleId::R5Cast => {
                "use From/TryFrom (or a reasoned waiver when the conversion is provably \
                 lossless for the domain, e.g. sample counts far below 2^53)"
            }
            RuleId::R6Taint => {
                "break the call chain (inject the value from the experiment layer), or \
                 acknowledge the site with lint:allow(taint, <why>) on the fn line — a \
                 taint waiver is also a propagation barrier for callers"
            }
            RuleId::R7Streams => {
                "annotate the site: // stream-map: domain=<name> salt=<CONST|family-tag> \
                 streams=<lo>..=<hi> role=\"<who draws here>\" — then regenerate \
                 STREAM_MAP.md with `cargo run -p xtask -- lint --write-stream-map`"
            }
            RuleId::R8DeadWaiver => {
                "delete the waiver (the violation it covered is gone), or — if the rule \
                 should still fire there — the linter regressed; run with --explain-waiver \
                 to see what every waiver silences"
            }
            RuleId::Waiver => "write the waiver as: lint:allow(<rule>, <reason text>)",
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the lint root, with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// What happened, specific to the site.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// Renders the diagnostic as one JSON object (for `lint --json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\
             \"snippet\":\"{}\",\"hint\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.rule.id(),
            json_escape(&self.message),
            json_escape(&self.snippet),
            json_escape(self.rule.hint()),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )?;
        if !self.snippet.is_empty() {
            writeln!(f, "    {}", self.snippet)?;
        }
        write!(f, "    hint: {}", self.rule.hint())
    }
}
