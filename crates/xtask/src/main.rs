//! `cargo run -p xtask -- lint` — the whitefi-lint CLI.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root PATH]\n\
         \n\
         Enforces the workspace determinism/safety rules (DESIGN.md §11):\n\
         R1-hashmap, R2-nondet, R3-rng, R4-unwrap, R5-cast.\n\
         Exits 0 when clean, 1 on violations, 2 on usage errors."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown subcommand: {cmd}");
        return usage();
    }
    let mut root = PathBuf::from(".");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--root requires a value");
                    return usage();
                };
                root = PathBuf::from(p);
            }
            "--fix-waivers" => {
                eprintln!(
                    "--fix-waivers is not supported: waivers are intentionally manual. \
                     Every waiver needs a human-written reason explaining why the \
                     invariant holds at that site (DESIGN.md §11); auto-inserting them \
                     would turn the lint into a rubber stamp. Add the comment by hand:\n\
                     \x20   // lint:allow(<rule>, <reason>)"
                );
                return ExitCode::from(2);
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
        i += 1;
    }

    let outcome = match xtask::lint_root(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("whitefi-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &outcome.diagnostics {
        println!("{d}\n");
    }
    println!(
        "whitefi-lint: {} file(s) scanned, {} violation(s), {} waived",
        outcome.files,
        outcome.diagnostics.len(),
        outcome.waived
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
