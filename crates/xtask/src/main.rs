//! `cargo run -p xtask -- lint` — the whitefi-lint CLI.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root PATH] [--json] [--explain-waiver] \
         [--write-stream-map]\n\
         \n\
         Enforces the workspace determinism/safety rules (DESIGN.md §11, §16):\n\
         R1-hashmap, R2-nondet, R3-rng, R4-unwrap, R5-cast,\n\
         R6-taint (call-graph nondeterminism), R7-streams (RNG stream map),\n\
         R8-dead-waiver (waivers that silence nothing).\n\
         \n\
         --json              one JSON object per diagnostic on stdout\n\
         --explain-waiver    list what every valid waiver silences\n\
         --write-stream-map  regenerate STREAM_MAP.md from stream-map annotations\n\
         Exits 0 when clean, 1 on violations, 2 on usage errors."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd != "lint" {
        eprintln!("unknown subcommand: {cmd}");
        return usage();
    }
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut explain = false;
    let mut write_map = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--root requires a value");
                    return usage();
                };
                root = PathBuf::from(p);
            }
            "--json" => json = true,
            "--explain-waiver" => explain = true,
            "--write-stream-map" => write_map = true,
            "--fix-waivers" => {
                eprintln!(
                    "--fix-waivers is not supported: waivers are intentionally manual. \
                     Every waiver needs a human-written reason explaining why the \
                     invariant holds at that site (DESIGN.md §11); auto-inserting them \
                     would turn the lint into a rubber stamp. Add the comment by hand:\n\
                     \x20   // lint:allow(<rule>, <reason>)"
                );
                return ExitCode::from(2);
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
        i += 1;
    }

    let outcome = match xtask::lint_root(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("whitefi-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_map {
        let path = root.join("STREAM_MAP.md");
        if outcome.stream_map.is_empty() {
            eprintln!("whitefi-lint: no stream-map annotations found; nothing to write");
        } else if let Err(e) = std::fs::write(&path, &outcome.stream_map) {
            eprintln!("whitefi-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        } else {
            println!("whitefi-lint: wrote {}", path.display());
        }
        // Re-lint so the drift diagnostic (if it was the only one)
        // clears in the same invocation.
        return match xtask::lint_root(&root) {
            Ok(o) if o.clean() => ExitCode::SUCCESS,
            Ok(o) => {
                for d in &o.diagnostics {
                    println!("{d}\n");
                }
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("whitefi-lint: failed to re-scan {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    if explain {
        for w in &outcome.waiver_explains {
            let silenced: Vec<String> = w
                .silenced
                .iter()
                .map(|(rule, line)| format!("{} at line {line}", rule.id()))
                .collect();
            println!(
                "{}:{}: lint:allow({}, {}) silences [{}]",
                w.file,
                w.line,
                w.key,
                w.reason,
                silenced.join(", ")
            );
        }
        println!(
            "whitefi-lint: {} valid waiver(s) across {} file(s)",
            outcome.waiver_explains.len(),
            outcome.files
        );
    }

    if json {
        for d in &outcome.diagnostics {
            println!("{}", d.to_json());
        }
    } else {
        for d in &outcome.diagnostics {
            println!("{d}\n");
        }
        println!(
            "whitefi-lint: {} file(s) scanned, {} violation(s), {} waived",
            outcome.files,
            outcome.diagnostics.len(),
            outcome.waived
        );
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
