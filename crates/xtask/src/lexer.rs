//! A minimal Rust lexer: just enough to walk a source file as a token
//! stream with line numbers, while keeping comments (for waiver
//! parsing) and skipping string/char literal *contents* so the rules
//! never fire on text inside literals.
//!
//! This is deliberately not a full grammar. The whitefi-lint rules are
//! token-level (banned identifiers, `.unwrap()` call shapes, `as`
//! casts), so a faithful tokenizer plus light structure tracking in
//! [`crate::rules`] covers them without pulling `syn`/`proc-macro2`
//! into a crate that must build offline on a bare toolchain.
//!
//! Handled: line (`//`) and nested block (`/* */`) comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any number of
//! `#`), byte and byte-raw strings, char literals (including escaped
//! chars), lifetimes, identifiers (keywords included), numbers, and
//! single-character punctuation.

/// What a token is. Punctuation is kept one character at a time; the
/// rule matcher reassembles multi-character operators (`::`) itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `unwrap`, `HashMap`, …).
    Ident,
    /// Numeric literal (value irrelevant to the rules).
    Number,
    /// String/char/byte literal — contents deliberately opaque.
    Literal,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// One character of punctuation.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A comment with its location; `text` excludes the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without `//`, `/*`, `*/`.
    pub text: String,
    /// Whether any token precedes the comment on its starting line
    /// (a trailing comment waives its own line, a standalone comment
    /// waives the next line that has code).
    pub trailing: bool,
}

impl Comment {
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    /// Directives (waivers, stream-map annotations) are only honored
    /// in plain comments — doc text *describing* a directive must not
    /// enact it.
    pub fn is_doc(&self) -> bool {
        matches!(self.text.as_bytes().first(), Some(b'/' | b'!' | b'*'))
    }
}

/// The full lex of one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines (1-based) that carry at least one token.
    pub fn token_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.tokens.iter().map(|t| t.line).collect();
        lines.dedup();
        lines
    }
}

/// Lexes `src`. Unterminated constructs (string running to EOF) are
/// tolerated: the remainder is swallowed as one literal/comment so a
/// half-edited file still produces diagnostics for its early lines.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_token = false;

    // Scratch for deciding whether `r`/`b`/`br` starts a raw string.
    fn raw_string_hashes(bytes: &[u8], mut j: usize) -> Option<usize> {
        let mut hashes = 0usize;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        (j < bytes.len() && bytes[j] == b'"').then_some(hashes)
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                line_had_token = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&bytes[start..j]).into_owned(),
                    trailing: line_had_token,
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let trailing = line_had_token;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: String::from_utf8_lossy(&bytes[start..end]).into_owned(),
                    trailing,
                });
                line_had_token = false;
                i = j;
            }
            b'"' => {
                let tok_line = line;
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => {
                            // An escaped newline (line continuation)
                            // still advances the line counter.
                            if bytes.get(j + 1) == Some(&b'\n') {
                                line += 1;
                            }
                            j += 2;
                        }
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
                line_had_token = true;
                i = j;
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): an identifier run NOT followed by a closing
                // quote is a lifetime.
                let mut j = i + 1;
                let mut is_lifetime = false;
                if j < bytes.len() && (bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_')
                    {
                        k += 1;
                    }
                    if bytes.get(k) != Some(&b'\'') {
                        is_lifetime = true;
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            text: String::from_utf8_lossy(&bytes[j..k]).into_owned(),
                            line,
                        });
                        j = k;
                    }
                }
                if !is_lifetime {
                    // Char literal: skip escape, then to closing quote.
                    if j < bytes.len() && bytes[j] == b'\\' {
                        j += 2;
                    } else if j < bytes.len() {
                        // Possibly multi-byte UTF-8 char; advance to the
                        // closing quote.
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j] != b'\'' {
                        if bytes[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    j = (j + 1).min(bytes.len());
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
                line_had_token = true;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                // Raw / byte string prefixes first.
                let rest = &bytes[i..];
                let raw_prefix = match (c, rest.get(1)) {
                    (b'r', _) => Some(1),
                    (b'b', Some(&b'r')) => Some(2),
                    (b'b', Some(&b'"')) => {
                        // b"…": plain byte string, reuse the string path
                        // by skipping the prefix byte.
                        None
                    }
                    _ => None,
                };
                if c == b'b' && rest.get(1) == Some(&b'"') {
                    i += 1; // lex the `"` branch next
                    continue;
                }
                if c == b'b' && rest.get(1) == Some(&b'\'') {
                    i += 1; // byte char: lex the `'` branch next
                    continue;
                }
                if let Some(off) = raw_prefix {
                    if let Some(hashes) = raw_string_hashes(bytes, i + off) {
                        let tok_line = line;
                        // Skip prefix, hashes, opening quote.
                        let mut j = i + off + hashes + 1;
                        let closer: Vec<u8> = std::iter::once(b'"')
                            .chain(std::iter::repeat_n(b'#', hashes))
                            .collect();
                        while j < bytes.len() {
                            if bytes[j] == b'\n' {
                                line += 1;
                                j += 1;
                            } else if bytes[j..].starts_with(&closer) {
                                j += closer.len();
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            text: String::new(),
                            line: tok_line,
                        });
                        line_had_token = true;
                        i = j;
                        continue;
                    }
                }
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                    line,
                });
                line_had_token = true;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Numbers may contain `_`, hex digits, type suffixes, a
                // decimal point, exponents. Consume the alphanumeric
                // run plus embedded dots followed by digits (so `1.5`
                // is one token but `x.unwrap` is not reachable here).
                while j < bytes.len() {
                    let b = bytes[j];
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        j += 1;
                    } else if b == b'.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                        j += 2;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                    line,
                });
                line_had_token = true;
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                line_had_token = true;
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_lines() {
        let l = lex("fn main() {\n    foo.bar();\n}\n");
        let bar = l.tokens.iter().find(|t| t.text == "bar").unwrap();
        assert_eq!(bar.line, 2);
        assert_eq!(bar.kind, TokKind::Ident);
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        // A `\`-continued string spans two source lines; tokens after
        // it must not drift.
        let l = lex("let s = \"one \\\n two\";\nafter();\n");
        let after = l.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn doc_comments_are_identified() {
        let l = lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/* block */\n");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.is_doc()).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn string_contents_are_opaque() {
        assert_eq!(idents(r#"let s = "HashMap thread_rng";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"a \"quoted\" HashMap\"#; let t = 1;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            idents("let s = b\"HashMap\"; let c = b'x';"),
            vec!["let", "s", "let", "c"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let lits = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn line_comments_captured_with_trailing_flag() {
        let l = lex("let x = 1; // trailing note\n// standalone note\nlet y = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text.trim(), "trailing note");
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), vec!["let", "x"]);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let l = lex("let s = \"line\nbreak\";\nlet y = 2;");
        let y = l.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn numbers_do_not_absorb_method_calls() {
        let l = lex("let x = 1.5f64; y.unwrap();");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "1.5f64"));
    }
}
