//! R6: call-graph nondeterminism taint (DESIGN.md §16).
//!
//! R2 is lexical: it flags the *tokens* of ambient nondeterminism
//! (`Instant::now`, `thread_rng`, …) but cannot see a sim-crate
//! function that reaches a wall clock through a wrapper defined in an
//! allowlisted (or out-of-crate) file. R6 closes that hole:
//!
//! 1. **Seed**: every `fn` whose body lexically contains an ambient
//!    source (`Instant::now`, `SystemTime::now`, `thread_rng`,
//!    `rand::random`, `from_entropy`, `from_os_rng`, `env::var{,_os}`,
//!    `env::vars`) is directly tainted.
//! 2. **Propagate**: taint flows caller-ward over the conservative
//!    name-resolved call graph ([`crate::graph`]) to a fixed point. A
//!    function whose definition line carries a valid
//!    `lint:allow(taint, …)` waiver is a **barrier**: it is sanctioned
//!    to touch ambient state and its callers stay clean (the bench
//!    runner's `RunCtx::time` is the canonical barrier).
//! 3. **Flag**: a fn in sim-deterministic library code (outside
//!    `#[cfg(test)]`) is reported when it is *transitively* tainted
//!    through a call, or when it is *directly* tainted inside a file
//!    on R2's wall-clock allowlist — under R6 that file allowlist
//!    shrinks to a per-function waiver, so each clock-touching fn is
//!    individually acknowledged.
//!
//! Directly tainted fns outside the allowlist are NOT re-reported:
//! their source tokens are already R2/R3 violations at the exact line.
//! The reported hit lands on the `fn` line and is waived (and turned
//! into a barrier) by the same `taint` key, so acknowledging a finding
//! and stopping its upward propagation are one act.

use crate::diag::RuleId;
use crate::lexer::{TokKind, Token};
use crate::rules::{FileAnalysis, FileKind, Hit};
use std::collections::BTreeMap;

/// One ambient-nondeterminism source found in a fn body.
#[derive(Debug, Clone)]
struct Source {
    what: &'static str,
    line: u32,
}

fn seq_path(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].kind == TokKind::Ident
        && tokens[i].text == first
        && matches!(tokens.get(i + 1), Some(t) if t.kind == TokKind::Punct && t.text == ":")
        && matches!(tokens.get(i + 2), Some(t) if t.kind == TokKind::Punct && t.text == ":")
        && matches!(tokens.get(i + 3), Some(t) if t.kind == TokKind::Ident && t.text == second)
}

/// Scans one fn body token range for ambient sources.
fn body_sources(tokens: &[Token], range: (usize, usize)) -> Vec<Source> {
    let mut out = Vec::new();
    for i in range.0..=range.1.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" if seq_path(tokens, i, "Instant", "now") => "Instant::now()",
            "SystemTime" if seq_path(tokens, i, "SystemTime", "now") => "SystemTime::now()",
            "thread_rng" => "thread_rng()",
            "rand" if seq_path(tokens, i, "rand", "random") => "rand::random()",
            "from_entropy" => "from_entropy()",
            "from_os_rng" => "from_os_rng()",
            "env"
                if seq_path(tokens, i, "env", "var")
                    || seq_path(tokens, i, "env", "var_os")
                    || seq_path(tokens, i, "env", "vars") =>
            {
                "env read"
            }
            _ => continue,
        };
        out.push(Source { what, line: t.line });
    }
    out
}

/// Per-fn taint state across the whole workspace.
struct Node {
    file: usize,
    fn_ix: usize,
    barrier: bool,
    /// Direct ambient source in this body, if any.
    direct: Option<Source>,
    /// `(callee node, call line)` that tainted this fn transitively.
    via: Option<(usize, u32)>,
}

/// Runs the R6 analysis over every analyzed file; returns extra hits
/// keyed by file index.
pub fn analyze(files: &[FileAnalysis]) -> BTreeMap<usize, Vec<Hit>> {
    // Build the global node list and the name → nodes index.
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, fa) in files.iter().enumerate() {
        for (gi, f) in fa.fns.iter().enumerate() {
            let direct = f
                .body_range()
                .and_then(|r| body_sources(&fa.lexed.tokens, r).into_iter().next());
            let n = nodes.len();
            nodes.push(Node {
                file: fi,
                fn_ix: gi,
                barrier: fa.valid_waiver_on("taint", f.line),
                direct,
                via: None,
            });
            by_name.entry(f.name.as_str()).or_default().push(n);
        }
    }

    // Caller-ward fixed point: conservative name resolution means a
    // call edge to every same-named fn, so taint can only be
    // over-propagated, never missed.
    let mut tainted: Vec<bool> = nodes.iter().map(|n| n.direct.is_some()).collect();
    loop {
        let mut changed = false;
        for n in 0..nodes.len() {
            if tainted[n] {
                continue;
            }
            let fa = &files[nodes[n].file];
            let f = &fa.fns[nodes[n].fn_ix];
            'calls: for c in &f.calls {
                let Some(cands) = by_name.get(c.callee.as_str()) else {
                    continue;
                };
                for &m in cands {
                    if m != n && tainted[m] && !nodes[m].barrier {
                        tainted[n] = true;
                        nodes[n].via = Some((m, c.line));
                        changed = true;
                        break 'calls;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Witness path: follow `via` links down to a direct source.
    let path_of = |start: usize| -> String {
        let mut parts = Vec::new();
        let mut cur = start;
        for _ in 0..16 {
            let node = &nodes[cur];
            let fa = &files[node.file];
            let f = &fa.fns[node.fn_ix];
            parts.push(f.qual.clone());
            if let Some(src) = &node.direct {
                parts.push(format!("{} ({}:{})", src.what, fa.ctx.rel, src.line));
                break;
            }
            match node.via {
                Some((next, _)) => cur = next,
                None => break,
            }
        }
        parts.join(" → ")
    };

    let mut out: BTreeMap<usize, Vec<Hit>> = BTreeMap::new();
    for n in 0..nodes.len() {
        if !tainted[n] {
            continue;
        }
        let node = &nodes[n];
        let fa = &files[node.file];
        let f = &fa.fns[node.fn_ix];
        if !(fa.ctx.in_sim_crate() && fa.ctx.kind == FileKind::LibSrc) || fa.in_test(f.line) {
            continue;
        }
        let transitive = node.direct.is_none() && node.via.is_some();
        let direct_on_allowlist = node.direct.is_some() && fa.ctx.wall_clock_allowlisted();
        // Barrier fns still produce the hit: their `taint` waiver
        // silences it (and is thereby counted live, not dead).
        if !(transitive || direct_on_allowlist) {
            continue;
        }
        let message = if transitive {
            format!(
                "`{}` reaches ambient nondeterminism through its calls: {}",
                f.qual,
                path_of(n)
            )
        } else {
            format!(
                "`{}` reads ambient state directly ({}); the R2 file allowlist is a \
                 per-function waiver under R6",
                f.qual,
                path_of(n)
            )
        };
        out.entry(node.file).or_default().push(Hit {
            rule: RuleId::R6Taint,
            line: f.line,
            message,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{analyze_file, FileCtx};

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        analyze_file(FileCtx::classify(rel).expect("classifiable"), src)
    }

    fn hit_lines(hits: &BTreeMap<usize, Vec<Hit>>, file: usize) -> Vec<u32> {
        hits.get(&file)
            .map(|v| v.iter().map(|h| h.line).collect())
            .unwrap_or_default()
    }

    #[test]
    fn transitive_wrapper_is_caught() {
        // The wrapper lives on the R2 wall-clock allowlist; the sim fn
        // reaches the clock only through the call — exactly the path
        // lexical R2 cannot see.
        let wrapper = fa(
            "crates/bench/src/runner.rs",
            "pub fn now_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
        );
        let sim = fa(
            "crates/mac/src/x.rs",
            "pub fn step() -> f64 { crate::now_secs() }\n",
        );
        let files = vec![wrapper, sim];
        let hits = analyze(&files);
        // Wrapper: direct source on the allowlist → per-function hit.
        assert_eq!(hit_lines(&hits, 0), vec![1]);
        // Sim fn: transitively tainted.
        assert_eq!(hit_lines(&hits, 1), vec![1]);
        let msg = &hits[&1][0].message;
        assert!(msg.contains("step → now_secs → Instant::now()"), "{msg}");
    }

    #[test]
    fn barrier_waiver_stops_propagation() {
        let wrapper = fa(
            "crates/bench/src/runner.rs",
            "// lint:allow(taint, sanctioned experiment timing — results carry wall \
             seconds, sims never see them)\n\
             pub fn now_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
        );
        let sim = fa(
            "crates/mac/src/x.rs",
            "pub fn step() -> f64 { crate::now_secs() }\n",
        );
        let files = vec![wrapper, sim];
        let hits = analyze(&files);
        // The barrier fn still yields its (waivable) hit; the caller is
        // clean.
        assert_eq!(hit_lines(&hits, 0), vec![2]);
        assert!(hit_lines(&hits, 1).is_empty());
    }

    #[test]
    fn direct_sources_outside_allowlist_are_left_to_r2() {
        let sim = fa(
            "crates/mac/src/x.rs",
            "pub fn bad() -> u64 { thread_rng().gen() }\n\
             pub fn caller() -> u64 { bad() }\n",
        );
        let files = vec![sim];
        let hits = analyze(&files);
        // `bad` is R2's finding (line 1 token); R6 flags only the
        // transitive caller.
        assert_eq!(hit_lines(&hits, 0), vec![2]);
    }

    #[test]
    fn test_regions_and_non_sim_crates_are_out_of_scope() {
        let wrapper = fa(
            "crates/bench/src/runner.rs",
            "pub fn now_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
        );
        let phy = fa(
            "crates/phy/src/x.rs",
            "pub fn free() -> f64 { crate::now_secs() }\n",
        );
        let sim_test = fa(
            "crates/mac/src/y.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() -> f64 { crate::now_secs() }\n}\n",
        );
        let files = vec![wrapper, phy, sim_test];
        let hits = analyze(&files);
        assert!(hit_lines(&hits, 1).is_empty(), "phy is not a sim crate");
        assert!(hit_lines(&hits, 2).is_empty(), "test regions may time");
    }

    #[test]
    fn propagation_is_transitive_over_many_hops() {
        let wrapper = fa(
            "crates/bench/src/runner.rs",
            "pub fn now_secs() -> f64 { std::time::Instant::now().elapsed().as_secs_f64() }\n",
        );
        let sim = fa(
            "crates/whitefi/src/x.rs",
            "pub fn a() -> f64 { b() }\npub fn b() -> f64 { c() }\n\
             pub fn c() -> f64 { crate::now_secs() }\n",
        );
        let files = vec![wrapper, sim];
        let hits = analyze(&files);
        assert_eq!(hit_lines(&hits, 1), vec![1, 2, 3]);
    }
}
