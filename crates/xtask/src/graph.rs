//! A lightweight Rust item/call-graph extractor over the whitefi-lint
//! token stream (DESIGN.md §16).
//!
//! This is deliberately *not* name resolution: it recovers just enough
//! structure from [`crate::lexer::Lexed`] to drive whole-workspace
//! analyses — `fn` items with their balanced-brace body extents, the
//! `impl` block (if any) each one lives in, and the call sites inside
//! each body. Calls are recorded by *simple callee name* (`foo(`,
//! `.foo(`, `path::to::foo(` all record `foo`); the taint analysis in
//! [`crate::taint`] resolves a call conservatively to **every**
//! workspace `fn` of that name, which over-approximates the true call
//! graph and therefore never misses a path (soundness limits — what
//! the extractor knowingly cannot see, e.g. turbofish calls and
//! function-pointer indirection — are catalogued in DESIGN.md §16).

use crate::lexer::{Lexed, TokKind, Token};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// `Type::name` when the fn sits in an `impl` block, else `name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body (equal to `line` for bodyless items).
    pub end_line: u32,
    /// Token-index range of the body, `open_brace..=close_brace`.
    body: Option<(usize, usize)>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Whether `tok_idx` falls inside this fn's body tokens.
    pub fn contains(&self, tok_idx: usize) -> bool {
        self.body.is_some_and(|(a, b)| (a..=b).contains(&tok_idx))
    }

    /// The body token range, if the item has a body.
    pub fn body_range(&self) -> Option<(usize, usize)> {
        self.body
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Simple callee name (last path segment).
    pub callee: String,
    /// 1-based source line of the call.
    pub line: u32,
    /// Whether the call was written as a method (`.name(`).
    pub method: bool,
}

/// Rust keywords that can directly precede a `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "else", "move", "fn",
];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Matches every `{` to its `}` by index. Unbalanced files map the
/// stragglers to the last token so analyses degrade gracefully.
fn brace_pairs(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_punct(t, "{") {
            stack.push(i);
        } else if is_punct(t, "}") {
            if let Some(open) = stack.pop() {
                pairs.push((open, i));
            }
        }
    }
    let last = tokens.len().saturating_sub(1);
    for open in stack {
        pairs.push((open, last));
    }
    pairs.sort_unstable();
    pairs
}

/// The matching `}` index for a given `{` index.
fn close_of(pairs: &[(usize, usize)], open: usize) -> usize {
    pairs
        .binary_search_by_key(&open, |&(o, _)| o)
        .map(|k| pairs[k].1)
        .unwrap_or(open)
}

/// `impl` blocks as `(open_brace, close_brace, type_name)`.
fn impl_blocks(tokens: &[Token], pairs: &[(usize, usize)]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if !(t.kind == TokKind::Ident && t.text == "impl") {
            i += 1;
            continue;
        }
        // Scan the header up to its `{`: `impl<G> Type<G> {` or
        // `impl<G> Trait<G> for Type {`. The implemented type is the
        // first ident after `for` when present, else the first ident
        // at angle-depth 0 after the `impl` generics.
        let mut j = i + 1;
        let mut angle = 0i64;
        let mut ty: Option<String> = None;
        let mut after_for = false;
        let mut header_ok = false;
        while j < tokens.len() {
            let h = &tokens[j];
            if h.kind == TokKind::Punct {
                match h.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "{" if angle == 0 => {
                        header_ok = true;
                        break;
                    }
                    ";" => break, // `impl Trait for Type;` — not real Rust, bail
                    _ => {}
                }
            } else if h.kind == TokKind::Ident && angle == 0 {
                if h.text == "for" {
                    after_for = true;
                    ty = None;
                } else if ty.is_none() && h.text != "const" && h.text != "unsafe" {
                    ty = Some(h.text.clone());
                }
            }
            let _ = after_for;
            j += 1;
        }
        if header_ok {
            out.push((j, close_of(pairs, j), ty.unwrap_or_else(|| "?".to_string())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts every `fn` item (with body extent, impl qualification and
/// call sites) from one lexed file.
pub fn file_fns(lexed: &Lexed) -> Vec<FnItem> {
    let tokens = &lexed.tokens;
    let pairs = brace_pairs(tokens);
    let impls = impl_blocks(tokens, &pairs);

    // Pass 1: fn items and their body ranges.
    let mut fns: Vec<FnItem> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let fn_line = t.line;
        let name = name_tok.text.clone();
        // Find the body `{` at paren/bracket depth 0, or a `;` ending a
        // bodyless item (trait method signature). Angle brackets in
        // generics/returns never nest braces, so they need no tracking.
        let mut depth = 0i64;
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            let s = &tokens[j];
            if s.kind == TokKind::Punct {
                match s.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        body = Some((j, close_of(&pairs, j)));
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end_line = body
            .map(|(_, c)| tokens.get(c).map_or(fn_line, |t| t.line))
            .unwrap_or(fn_line);
        let qual = impls
            .iter()
            .filter(|&&(o, c, _)| (o..=c).contains(&i))
            .min_by_key(|&&(o, c, _)| c - o)
            .map(|(_, _, ty)| format!("{ty}::{name}"))
            .unwrap_or_else(|| name.clone());
        fns.push(FnItem {
            name,
            qual,
            line: fn_line,
            end_line,
            body,
            calls: Vec::new(),
        });
        i += 2;
    }

    // Pass 2: call sites, attributed to the innermost enclosing body
    // (nested fns own their calls; the outer fn does not).
    for k in 0..tokens.len().saturating_sub(1) {
        let t = &tokens[k];
        if t.kind != TokKind::Ident || !is_punct(&tokens[k + 1], "(") {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `name!(…)` is a macro, `fn name(` is a definition.
        if k >= 1 && tokens[k - 1].kind == TokKind::Ident && tokens[k - 1].text == "fn" {
            continue;
        }
        let method = k >= 1 && is_punct(&tokens[k - 1], ".");
        let owner = fns
            .iter_mut()
            .filter(|f| f.contains(k))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(a, b)| b - a));
        if let Some(f) = owner {
            f.calls.push(CallSite {
                callee: t.text.clone(),
                line: t.line,
                method,
            });
        }
    }
    // Macro call sites slipped past the check above only when the `!`
    // sits between name and paren — the token stream is `name ! (` so
    // the Ident+`(` adjacency test already excludes them.
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn extract(src: &str) -> Vec<FnItem> {
        file_fns(&lex(src))
    }

    #[test]
    fn free_fn_with_calls() {
        let fns = extract("fn a() { b(); c.d(); e::f(); }\nfn b() {}\n");
        assert_eq!(fns.len(), 2);
        let a = &fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.qual, "a");
        assert_eq!(a.line, 1);
        let callees: Vec<(&str, bool)> = a
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.method))
            .collect();
        assert_eq!(callees, vec![("b", false), ("d", true), ("f", false)]);
        assert!(fns[1].calls.is_empty());
    }

    #[test]
    fn impl_methods_are_qualified() {
        let src = "struct S;\nimpl S {\n    fn m(&self) { helper(); }\n}\n\
                   impl Clone for S {\n    fn clone(&self) -> S { S }\n}\n";
        let fns = extract(src);
        assert_eq!(fns[0].qual, "S::m");
        assert_eq!(fns[1].qual, "S::clone");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = "impl<T: Ord> Holder<T> {\n    fn get(&self) -> &T { inner() }\n}\n";
        let fns = extract(src);
        assert_eq!(fns[0].qual, "Holder::get");
    }

    #[test]
    fn macros_definitions_and_keywords_are_not_calls() {
        let src = "fn a(x: u32) { println!(\"{x}\"); if (x > 0) { b(); } match (x) { _ => {} } }\n";
        let fns = extract(src);
        let callees: Vec<&str> = fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["b"]);
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = "fn outer() {\n    fn inner() { deep(); }\n    shallow();\n}\n";
        let fns = extract(src);
        assert_eq!(fns[0].name, "outer");
        let outer_calls: Vec<&str> = fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(outer_calls, vec!["shallow"]);
        let inner_calls: Vec<&str> = fns[1].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(inner_calls, vec!["deep"]);
    }

    #[test]
    fn bodyless_trait_methods_have_no_extent() {
        let fns =
            extract("trait T {\n    fn sig(&self) -> u32;\n    fn with(&self) { go(); }\n}\n");
        assert_eq!(fns[0].name, "sig");
        assert!(fns[0].body_range().is_none());
        assert_eq!(fns[1].calls.len(), 1);
    }

    #[test]
    fn end_lines_span_the_body() {
        let fns = extract("fn a() {\n    x();\n    y();\n}\n");
        assert_eq!(fns[0].line, 1);
        assert_eq!(fns[0].end_line, 4);
    }
}
