//! The whitefi-lint rule engine: R1–R5 over a lexed token stream, plus
//! waiver-comment handling and `#[cfg(test)]` region tracking.
//!
//! Rule scope matrix (see DESIGN.md §11 for the rationale):
//!
//! | rule        | where it applies                                        |
//! |-------------|---------------------------------------------------------|
//! | R1-hashmap  | every file of the sim-deterministic crates              |
//! | R2-nondet   | everywhere except benches and the wall-clock allowlist; |
//! |             | sync primitives (`Mutex`/`RwLock`/`Condvar`/`mpsc`)     |
//! |             | additionally banned in sim-crate `src/` outside the     |
//! |             | boundary-channel allowlist and `#[cfg(test)]`           |
//! | R3-rng      | everywhere                                              |
//! | R4-unwrap   | `src/` of every crate, outside `#[cfg(test)]`           |
//! | R5-cast     | the hot numeric kernels, outside `#[cfg(test)]`         |
//!
//! A violation is silenced by a waiver comment on the same line or on a
//! comment-only line directly above it:
//!
//! ```text
//! // lint:allow(unwrap, medium invariant: ids are handed out by start())
//! ```
//!
//! The reason text is mandatory; a waiver without one (or with an
//! unknown rule key) is itself a diagnostic, so waivers stay reviewable.
//! A valid waiver that silences *nothing* is also a diagnostic
//! (R8-dead-waiver): when the violation it covered is fixed or moves,
//! the stale waiver must be deleted, or it would silently re-arm.
//!
//! R6 (call-graph taint) and R7 (RNG stream map) are whole-workspace
//! analyses: [`analyze_file`] collects the per-file facts, the passes
//! in [`crate::taint`] and [`crate::streams`] compute cross-file hits,
//! and [`finalize`] merges everything through one waiver filter.

use crate::diag::{Diagnostic, RuleId};
use crate::graph::{file_fns, FnItem};
use crate::lexer::{lex, Comment, Lexed, TokKind, Token};

/// Crates whose state must evolve identically across schedulers and
/// hosts (byte-identical runs, pruned==unpruned, golden digests).
const SIM_CRATES: [&str; 4] = ["mac", "whitefi", "spectrum", "bench"];

/// Files allowed to read the wall clock: experiment timing around the
/// sims, never inside them.
const WALL_CLOCK_ALLOWLIST: [&str; 2] = [
    "crates/bench/src/runner.rs",
    "crates/bench/src/bin/experiments.rs",
];

/// Files allowed to hold shared-memory synchronization primitives: the
/// sanctioned cross-shard boundary channel (DESIGN.md §14) and the
/// deterministic runner pool plus its experiments-binary collector.
/// Everywhere else in the sim crates, cross-thread communication must
/// go through `whitefi_mac::BoundaryBus` or `Runner::map` — an ad-hoc
/// lock or channel is exactly how schedule-dependent state leaks into
/// byte-identical runs.
const SYNC_ALLOWLIST: [&str; 5] = [
    "crates/mac/src/boundary.rs",
    "crates/mac/src/model.rs",
    "crates/mac/src/msync.rs",
    "crates/bench/src/runner.rs",
    "crates/bench/src/bin/experiments.rs",
];

/// The hot numeric kernels held to R5 (no `as` numeric casts).
const NUMERIC_KERNELS: [&str; 4] = [
    "crates/phy/src/kernels.rs",
    "crates/phy/src/sift.rs",
    "crates/spectrum/src/airtime.rs",
    "crates/whitefi/src/mcham.rs",
];

const NUMERIC_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Where a file sits in the workspace — drives rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a crate (library modules and `src/bin` binaries).
    LibSrc,
    /// An integration-test tree (`tests/`).
    TestsDir,
    /// A criterion bench tree (`benches/`).
    Benches,
    /// An example (`examples/`).
    Examples,
}

/// Classified location of one source file.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the lint root, forward slashes.
    pub rel: String,
    /// Crate directory name under `crates/`, if any.
    pub crate_dir: Option<String>,
    /// Which tree of the crate (or workspace root) the file is in.
    pub kind: FileKind,
}

impl FileCtx {
    /// Classifies `rel` (e.g. `crates/mac/src/sim.rs`, `tests/e2e.rs`).
    /// Returns `None` for files the linter does not cover.
    pub fn classify(rel: &str) -> Option<Self> {
        let (crate_dir, rest) = match rel.strip_prefix("crates/") {
            Some(r) => {
                let (name, rest) = r.split_once('/')?;
                (Some(name.to_string()), rest)
            }
            None => (None, rel),
        };
        let kind = if rest.starts_with("src/") {
            FileKind::LibSrc
        } else if rest.starts_with("tests/") {
            FileKind::TestsDir
        } else if rest.starts_with("benches/") {
            FileKind::Benches
        } else if rest.starts_with("examples/") {
            FileKind::Examples
        } else {
            return None;
        };
        Some(Self {
            rel: rel.to_string(),
            crate_dir,
            kind,
        })
    }

    /// Whether the file belongs to one of the sim-deterministic crates.
    pub fn in_sim_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|c| SIM_CRATES.contains(&c))
    }

    /// Whether the file is on the R2 wall-clock allowlist (the bench
    /// runner and the experiments binary). Under R6 this allowlist is
    /// no longer a blanket pass: every *function* in these files that
    /// reads ambient state needs its own `taint` waiver.
    pub fn wall_clock_allowlisted(&self) -> bool {
        WALL_CLOCK_ALLOWLIST.contains(&self.rel.as_str())
    }
}

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule key (`unwrap`, `cast`, …).
    pub key: String,
    /// The mandatory justification; `None` when missing.
    pub reason: Option<String>,
    /// Line the waiver silences.
    pub target_line: u32,
    /// Line of the comment itself.
    pub comment_line: u32,
}

/// Extracts waivers from comments. A trailing comment targets its own
/// line; a standalone comment targets the next line that has tokens.
fn parse_waivers(comments: &[Comment], token_lines: &[u32]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        if c.is_doc() {
            continue; // doc text may *describe* waivers, not enact them
        }
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let body = &c.text[pos + "lint:allow(".len()..];
        let Some(end) = body.find(')') else {
            out.push(Waiver {
                key: String::new(),
                reason: None,
                target_line: c.line,
                comment_line: c.line,
            });
            continue;
        };
        let inner = &body[..end];
        let (key, reason) = match inner.split_once(',') {
            Some((k, r)) => {
                let r = r.trim();
                (k.trim().to_string(), (!r.is_empty()).then(|| r.to_string()))
            }
            None => (inner.trim().to_string(), None),
        };
        let target_line = if c.trailing {
            c.line
        } else {
            token_lines
                .iter()
                .copied()
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        out.push(Waiver {
            key,
            reason,
            target_line,
            comment_line: c.line,
        });
    }
    out
}

/// Computes the set of lines covered by `#[cfg(test)]` (or `#[test]`)
/// items: the attribute through the end of the annotated item.
fn test_region_lines(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = scan_attribute(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes on the same item.
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].kind == TokKind::Punct && tokens[j].text == "#" {
            match scan_attribute(tokens, j) {
                Some((e, _)) => j = e,
                None => break,
            }
        }
        // Item extent: first `{` at delimiter depth 0 opens a balanced
        // block ending the item; a `;` at depth 0 before that ends it.
        let mut depth = 0i64;
        let mut end_line = start_line;
        while j < tokens.len() {
            let t = &tokens[j];
            end_line = t.line;
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    "{" if depth == 0 => {
                        let mut braces = 1i64;
                        j += 1;
                        while j < tokens.len() && braces > 0 {
                            let b = &tokens[j];
                            end_line = b.line;
                            if b.kind == TokKind::Punct {
                                match b.text.as_str() {
                                    "{" => braces += 1,
                                    "}" => braces -= 1,
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

/// Scans an attribute starting at the `#` token. Returns the index one
/// past the closing `]` and whether it marks test-only code
/// (`#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]` — but not
/// `#[cfg(not(test))]`).
fn scan_attribute(tokens: &[Token], hash: usize) -> Option<(usize, bool)> {
    let mut j = hash + 1;
    // Inner attribute `#![…]`.
    if tokens
        .get(j)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == "!")
    {
        j += 1;
    }
    if !tokens
        .get(j)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == "[")
    {
        return None;
    }
    let open = j;
    let mut depth = 0i64;
    let mut is_test = false;
    let mut saw_cfg = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j + 1, is_test));
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "cfg" => saw_cfg = true,
                "test" => {
                    let negated = j >= 2
                        && tokens[j - 1].text == "("
                        && tokens[j - 2].kind == TokKind::Ident
                        && tokens[j - 2].text == "not";
                    // `#[test]` alone, or `test` inside a (non-negated)
                    // `cfg(...)` — either marks test-only code.
                    if !negated && (saw_cfg || j == open + 1) {
                        is_test = true;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// A rule hit before waiver filtering.
#[derive(Debug, Clone)]
pub struct Hit {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Site-specific message.
    pub message: String,
}

fn seq_path(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].kind == TokKind::Ident
        && tokens[i].text == first
        && matches!(tokens.get(i + 1), Some(t) if t.kind == TokKind::Punct && t.text == ":")
        && matches!(tokens.get(i + 2), Some(t) if t.kind == TokKind::Punct && t.text == ":")
        && matches!(tokens.get(i + 3), Some(t) if t.kind == TokKind::Ident && t.text == second)
}

fn scan_rules(ctx: &FileCtx, lexed: &Lexed, test_regions: &[(u32, u32)]) -> Vec<Hit> {
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| (a..=b).contains(&line));
    let tokens = &lexed.tokens;
    let mut hits = Vec::new();

    let r1 = ctx.in_sim_crate();
    let r2 = ctx.kind != FileKind::Benches && !WALL_CLOCK_ALLOWLIST.contains(&ctx.rel.as_str());
    let r2_sync = ctx.in_sim_crate()
        && ctx.kind == FileKind::LibSrc
        && !SYNC_ALLOWLIST.contains(&ctx.rel.as_str());
    let r4 = ctx.kind == FileKind::LibSrc;
    let r5 = NUMERIC_KERNELS.contains(&ctx.rel.as_str());

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if r1 => hits.push(Hit {
                rule: RuleId::R1Hashmap,
                line: t.line,
                message: format!(
                    "`{}` in sim-deterministic crate `{}` (unordered iteration breaks \
                     byte-identical runs)",
                    t.text,
                    ctx.crate_dir.as_deref().unwrap_or("?"),
                ),
            }),
            "thread_rng" if r2 => hits.push(Hit {
                rule: RuleId::R2Nondet,
                line: t.line,
                message: "`thread_rng()` is ambient nondeterminism".to_string(),
            }),
            "rand" if r2 && seq_path(tokens, i, "rand", "random") => hits.push(Hit {
                rule: RuleId::R2Nondet,
                line: t.line,
                message: "`rand::random()` is ambient nondeterminism".to_string(),
            }),
            "SystemTime" if r2 && seq_path(tokens, i, "SystemTime", "now") => hits.push(Hit {
                rule: RuleId::R2Nondet,
                line: t.line,
                message: "`SystemTime::now()` reads the wall clock in a sim path".to_string(),
            }),
            "Instant" if r2 && seq_path(tokens, i, "Instant", "now") => hits.push(Hit {
                rule: RuleId::R2Nondet,
                line: t.line,
                message: "`Instant::now()` reads the wall clock outside the timing allowlist"
                    .to_string(),
            }),
            "thread" if r2 && seq_path(tokens, i, "thread", "spawn") => hits.push(Hit {
                rule: RuleId::R2Nondet,
                line: t.line,
                message: "`thread::spawn` outside the runner pool (ambient scheduling; fan \
                          work out through Runner::map / RunCtx::map so results reassemble \
                          deterministically)"
                    .to_string(),
            }),
            "Mutex" | "RwLock" | "Condvar" | "mpsc" if r2_sync && !in_test(t.line) => {
                hits.push(Hit {
                    rule: RuleId::R2Nondet,
                    line: t.line,
                    message: format!(
                        "`{}` in sim-crate library code outside the sanctioned boundary \
                         channel — cross-shard message passing must go through \
                         `whitefi_mac::BoundaryBus` (or fan out via the allowlisted \
                         runner pool)",
                        t.text
                    ),
                });
            }
            "from_entropy" | "from_os_rng" => hits.push(Hit {
                rule: RuleId::R3Rng,
                line: t.line,
                message: format!(
                    "`{}()` bypasses the per-node stream API (seed_from_u64 + set_stream)",
                    t.text
                ),
            }),
            "unwrap" | "expect" if r4 && !in_test(t.line) => {
                let dotted =
                    i >= 1 && tokens[i - 1].kind == TokKind::Punct && tokens[i - 1].text == ".";
                let called = matches!(
                    tokens.get(i + 1),
                    Some(n) if n.kind == TokKind::Punct && n.text == "("
                );
                if dotted && called {
                    hits.push(Hit {
                        rule: RuleId::R4Unwrap,
                        line: t.line,
                        message: format!("`.{}()` in library code outside #[cfg(test)]", t.text),
                    });
                }
            }
            "as" if r5 && !in_test(t.line) => {
                if let Some(n) = tokens.get(i + 1) {
                    if n.kind == TokKind::Ident
                        && (NUMERIC_TYPES.contains(&n.text.as_str())
                            || n.text == "f32"
                            || n.text == "f64")
                    {
                        hits.push(Hit {
                            rule: RuleId::R5Cast,
                            line: t.line,
                            message: format!(
                                "`as {}` cast in hot numeric kernel (potentially lossy)",
                                n.text
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    hits
}

/// Result of linting one file.
pub struct FileReport {
    /// Diagnostics that survived waiver filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations silenced by a valid waiver.
    pub waived: usize,
}

/// What one valid waiver actually silenced (for `--explain-waiver` and
/// the R8 dead-waiver check).
#[derive(Debug, Clone)]
pub struct WaiverExplain {
    /// File the waiver lives in.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Waiver rule key.
    pub key: String,
    /// The human-written justification.
    pub reason: String,
    /// `(rule, line)` of every hit this waiver silenced. Empty ⇒ dead.
    pub silenced: Vec<(RuleId, u32)>,
}

/// Everything the per-file pass learned about one source file; the
/// whole-workspace analyses (taint, streams) read these and hand their
/// extra hits back to [`finalize`].
pub struct FileAnalysis {
    /// Classified path.
    pub ctx: FileCtx,
    /// The full token/comment stream.
    pub lexed: Lexed,
    /// Source lines (for snippets).
    pub src_lines: Vec<String>,
    /// `#[cfg(test)]` line regions.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed waiver comments (valid or not).
    pub waivers: Vec<Waiver>,
    /// Local (R1–R5) hits.
    pub hits: Vec<Hit>,
    /// Extracted `fn` items with call sites.
    pub fns: Vec<FnItem>,
}

impl FileAnalysis {
    /// Whether `line` falls in a `#[cfg(test)]` region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether a *valid* (keyed + reasoned) waiver targets `line`.
    pub fn valid_waiver_on(&self, key: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.key == key && w.reason.is_some() && w.target_line == line)
    }
}

/// Runs the per-file pass: lex, waivers, test regions, local rules and
/// the call-graph extraction.
pub fn analyze_file(ctx: FileCtx, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let token_lines = lexed.token_lines();
    let waivers = parse_waivers(&lexed.comments, &token_lines);
    let test_regions = test_region_lines(&lexed.tokens);
    let hits = scan_rules(&ctx, &lexed, &test_regions);
    let fns = file_fns(&lexed);
    FileAnalysis {
        ctx,
        src_lines: src.lines().map(str::to_string).collect(),
        lexed,
        test_regions,
        waivers,
        hits,
        fns,
    }
}

const KNOWN_KEYS: [&str; 7] = [
    "hashmap", "nondet", "rng", "unwrap", "cast", "taint", "streams",
];

/// Filters the file's local hits plus any `extra_hits` from the global
/// analyses through the waiver set, reporting malformed waivers and
/// R8 dead waivers alongside. Returns the report and the per-waiver
/// explanation records.
pub fn finalize(fa: &FileAnalysis, extra_hits: Vec<Hit>) -> (FileReport, Vec<WaiverExplain>) {
    let ctx = &fa.ctx;
    let snippet = |line: u32| -> String {
        fa.src_lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut diagnostics = Vec::new();
    let mut explains: Vec<WaiverExplain> = Vec::new();
    for w in &fa.waivers {
        if w.key.is_empty() || !KNOWN_KEYS.contains(&w.key.as_str()) {
            diagnostics.push(Diagnostic {
                file: ctx.rel.clone(),
                line: w.comment_line,
                rule: RuleId::Waiver,
                message: if w.key.is_empty() {
                    "malformed waiver (unclosed or empty lint:allow)".to_string()
                } else {
                    format!(
                        "waiver names unknown rule `{}` (known: {})",
                        w.key,
                        KNOWN_KEYS.join(", ")
                    )
                },
                snippet: snippet(w.comment_line),
            });
            continue;
        }
        if w.reason.is_none() {
            diagnostics.push(Diagnostic {
                file: ctx.rel.clone(),
                line: w.comment_line,
                rule: RuleId::Waiver,
                message: format!(
                    "waiver for `{}` is missing its reason — every waiver must say why \
                     the invariant holds",
                    w.key
                ),
                snippet: snippet(w.comment_line),
            });
            continue;
        }
        explains.push(WaiverExplain {
            file: ctx.rel.clone(),
            line: w.comment_line,
            key: w.key.clone(),
            reason: w.reason.clone().unwrap_or_default(),
            silenced: Vec::new(),
        });
    }

    let mut waived = 0usize;
    let mut hits = fa.hits.clone();
    hits.extend(extra_hits);
    for h in hits {
        let key = h.rule.waiver_key();
        // A waiver's `target_line` is unique per (key, line): the first
        // matching explain record collects every hit on that line.
        let matched = explains
            .iter_mut()
            .find(|e| e.key == key && waiver_targets(fa, e.line, h.line));
        if let Some(e) = matched {
            e.silenced.push((h.rule, h.line));
            waived += 1;
            continue;
        }
        diagnostics.push(Diagnostic {
            file: ctx.rel.clone(),
            line: h.line,
            rule: h.rule,
            message: h.message,
            snippet: snippet(h.line),
        });
    }

    // R8: a valid waiver that silenced nothing is itself a finding.
    for e in &explains {
        if e.silenced.is_empty() {
            diagnostics.push(Diagnostic {
                file: ctx.rel.clone(),
                line: e.line,
                rule: RuleId::R8DeadWaiver,
                message: format!(
                    "dead waiver: `lint:allow({}, …)` no longer silences anything here",
                    e.key
                ),
                snippet: snippet(e.line),
            });
        }
    }

    diagnostics.sort_by_key(|d| (d.line, d.rule));
    (
        FileReport {
            diagnostics,
            waived,
        },
        explains,
    )
}

/// Whether the waiver whose comment sits on `comment_line` targets
/// `hit_line` (trailing: same line; standalone: next token line).
fn waiver_targets(fa: &FileAnalysis, comment_line: u32, hit_line: u32) -> bool {
    fa.waivers
        .iter()
        .any(|w| w.comment_line == comment_line && w.target_line == hit_line)
}

/// Lints one file's source text with the local rules only (R6/R7 need
/// the whole workspace — see [`crate::lint_root`]). R8 dead-waiver
/// detection runs here too, so a waiver must silence a local hit.
pub fn check_file(ctx: &FileCtx, src: &str) -> FileReport {
    let fa = analyze_file(ctx.clone(), src);
    finalize(&fa, Vec::new()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rel: &str) -> FileCtx {
        FileCtx::classify(rel).expect("classifiable path")
    }

    fn lint(rel: &str, src: &str) -> FileReport {
        check_file(&ctx(rel), src)
    }

    #[test]
    fn classify_paths() {
        let c = ctx("crates/mac/src/sim.rs");
        assert_eq!(c.crate_dir.as_deref(), Some("mac"));
        assert_eq!(c.kind, FileKind::LibSrc);
        assert!(c.in_sim_crate());
        let c = ctx("crates/phy/tests/proptests.rs");
        assert_eq!(c.kind, FileKind::TestsDir);
        assert!(!c.in_sim_crate());
        let c = ctx("src/lib.rs");
        assert_eq!(c.crate_dir, None);
        assert_eq!(c.kind, FileKind::LibSrc);
        assert!(FileCtx::classify("README.md").is_none());
    }

    #[test]
    fn r1_fires_only_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint("crates/mac/src/x.rs", src).diagnostics.len(), 1);
        assert!(lint("crates/phy/src/x.rs", src).diagnostics.is_empty());
    }

    #[test]
    fn r2_respects_allowlist_and_benches() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint("crates/mac/src/x.rs", src).diagnostics.len(), 1);
        assert!(lint("crates/bench/src/bin/experiments.rs", src)
            .diagnostics
            .is_empty());
        assert!(lint("crates/bench/benches/b.rs", src)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn r2_flags_detached_thread_spawn_but_not_scoped_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint("crates/whitefi/src/city.rs", src).diagnostics.len(), 1);
        // The runner pool (allowlisted) and benches stay free to thread.
        assert!(lint("crates/bench/src/runner.rs", src)
            .diagnostics
            .is_empty());
        assert!(lint("crates/bench/benches/city.rs", src)
            .diagnostics
            .is_empty());
        // `scope.spawn` method calls (the pool's own mechanism) are a
        // different token shape and do not fire.
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint("crates/whitefi/src/city.rs", scoped)
            .diagnostics
            .is_empty());
    }

    #[test]
    fn r2_sync_primitives_confined_to_boundary_channel() {
        let src = "use std::sync::Mutex;\n\
                   fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n";
        let r = lint("crates/whitefi/src/city.rs", src);
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r.diagnostics.iter().all(|d| d.rule == RuleId::R2Nondet));
        assert_eq!(r.diagnostics[0].line, 1);
        assert_eq!(r.diagnostics[1].line, 2);
        // The sanctioned boundary channel and the runner pool are free.
        assert!(lint("crates/mac/src/boundary.rs", src)
            .diagnostics
            .is_empty());
        assert!(lint("crates/bench/src/runner.rs", src)
            .diagnostics
            .is_empty());
        // Non-sim crates and sim-crate test trees are out of scope.
        assert!(lint("crates/phy/src/x.rs", src).diagnostics.is_empty());
        assert!(lint("crates/whitefi/tests/t.rs", src)
            .diagnostics
            .is_empty());
        // Test regions inside sim-crate src may lock freely.
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(lint("crates/whitefi/src/city.rs", test_src)
            .diagnostics
            .is_empty());
        // RwLock and Condvar are the same violation.
        let more = "fn f() { let l = std::sync::RwLock::new(0); let c = Condvar::new(); }\n";
        assert_eq!(lint("crates/mac/src/sim.rs", more).diagnostics.len(), 2);
    }

    #[test]
    fn r4_skips_cfg_test_items() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) { x.unwrap(); }\n}\n";
        let r = lint("crates/spectrum/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(lint("crates/mac/src/x.rs", src).diagnostics.len(), 1);
    }

    #[test]
    fn unwrap_or_and_bare_names_do_not_fire() {
        let src = "fn f(x: Option<u8>) { x.unwrap_or(0); let unwrap = 3; let _ = unwrap; }\n";
        assert!(lint("crates/mac/src/x.rs", src).diagnostics.is_empty());
    }

    #[test]
    fn trailing_waiver_silences_with_reason() {
        let src = "fn f(x: Option<u8>) { x.expect(\"invariant\"); } \
                   // lint:allow(unwrap, checked two lines up)\n";
        let r = lint("crates/mac/src/x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src = "// lint:allow(unwrap, the queue is non-empty by construction)\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let r = lint("crates/mac/src/x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn waiver_without_reason_is_a_diagnostic() {
        let src = "// lint:allow(unwrap)\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let r = lint("crates/mac/src/x.rs", src);
        // Both the malformed waiver and the (unsilenced) unwrap fire.
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].rule, RuleId::Waiver);
        assert_eq!(r.diagnostics[1].rule, RuleId::R4Unwrap);
    }

    #[test]
    fn waiver_with_wrong_key_does_not_silence() {
        let src = "// lint:allow(cast, wrong key for this violation)\n\
                   fn f(x: Option<u8>) { x.unwrap(); }\n";
        let r = lint("crates/mac/src/x.rs", src);
        // The unwrap stays a violation, and the mismatched (valid but
        // useless) waiver is flagged dead by R8.
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].rule, RuleId::R8DeadWaiver);
        assert_eq!(r.diagnostics[0].line, 1);
        assert_eq!(r.diagnostics[1].rule, RuleId::R4Unwrap);
        assert_eq!(r.diagnostics[1].line, 2);
    }

    #[test]
    fn doc_comments_do_not_enact_waivers() {
        let src = "/// lint:allow(unwrap, doc example only — must not waive)\n\
                   pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = lint("crates/mac/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::R4Unwrap);
        assert_eq!(r.waived, 0);
    }

    #[test]
    fn dead_waiver_fires_after_the_violation_is_fixed() {
        let src = "// lint:allow(unwrap, the queue is non-empty by construction)\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let r = lint("crates/mac/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::R8DeadWaiver);
        assert_eq!(r.waived, 0);
    }

    #[test]
    fn r5_only_in_kernels() {
        let src = "fn f(n: usize) -> f64 { n as f64 }\n";
        assert_eq!(lint("crates/phy/src/sift.rs", src).diagnostics.len(), 1);
        assert!(lint("crates/phy/src/fft.rs", src).diagnostics.is_empty());
    }

    #[test]
    fn r5_ignores_non_numeric_as() {
        let src = "use std::fmt::Debug as D;\nfn f(x: &dyn D) {}\n";
        assert!(lint("crates/phy/src/sift.rs", src).diagnostics.is_empty());
    }

    #[test]
    fn r3_fires_everywhere() {
        let src = "fn f() { let r = ChaCha8Rng::from_entropy(); }\n";
        assert_eq!(lint("crates/audio/src/x.rs", src).diagnostics.len(), 1);
        assert_eq!(lint("tests/e2e.rs", src).diagnostics.len(), 1);
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap thread_rng from_entropy\n\
                   fn f() -> &'static str { \"HashMap::from_entropy\" }\n";
        assert!(lint("crates/mac/src/x.rs", src).diagnostics.is_empty());
    }
}
