//! Deterministic workspace file discovery for the linter.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory trees scanned relative to the workspace root. Everything
/// the workspace compiles lives under one of these.
const ROOT_TREES: [&str; 3] = ["src", "tests", "examples"];

/// Collects every `.rs` file the linter covers, as root-relative paths
/// with forward slashes, sorted. Skips any directory named `fixtures`
/// (xtask's own test fixtures carry seeded violations) and `target`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    if !root.is_dir() {
        // A typo'd --root must not report a clean scan of zero files.
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("lint root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    for tree in ROOT_TREES {
        collect(&root.join(tree), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            if !krate.is_dir() {
                continue;
            }
            for tree in ["src", "tests", "benches", "examples"] {
                collect(&krate.join(tree), root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}
