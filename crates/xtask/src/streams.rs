//! R7: the RNG stream map (DESIGN.md §16).
//!
//! Determinism rests on every RNG draw being attributable to a
//! `(seed family, stream id)` pair that no other subsystem can
//! collide with (DESIGN.md §9). The seed *families* are separated by
//! salt constants (`FAULT_SEED_SALT`, `FUZZ_SALT`, …) or by being
//! distinct seed parameters (the scenario seed, the synth capture
//! seed); *within* a family, stream ids partition by role. R7 makes
//! that contract machine-checked:
//!
//! * every `set_stream(…)` / `rng_stream(…)` assignment site in
//!   library code must carry a `stream-map:` annotation declaring its
//!   domain, salt, stream range and role:
//!
//!   ```text
//!   // stream-map: domain=fuzz-fields salt=FUZZ_SALT streams=0..=7 role="per-field fuzz draws"
//!   ```
//!
//! * annotated salts that name a `const` must resolve to a workspace
//!   constant, and all salt constants must be pairwise **distinct**
//!   (two equal salts would fold two supposedly independent seed
//!   families onto one ChaCha keystream);
//! * two sites with the **same salt but different domains** must
//!   declare **disjoint** stream ranges — same-domain sites share one
//!   allocation authority and may partition a range internally (the
//!   `role` column documents how), which is the soundness boundary of
//!   the static check;
//! * the whole table is rendered to `STREAM_MAP.md`
//!   (`lint --write-stream-map`), and `lint` fails when the committed
//!   file drifts from the annotated sources — the audit table cannot
//!   go stale.
//!
//! Salts written in lowercase/dashed form (`scenario-seed`,
//! `synth-seed`) are *symbolic families*: seeds that arrive as
//! parameters rather than constants. The checker treats distinct tags
//! as distinct families (it cannot prove runtime distinctness; the
//! mixing argument lives in DESIGN.md §16).

use crate::diag::RuleId;
use crate::lexer::{TokKind, Token};
use crate::rules::{FileAnalysis, FileKind, Hit};
use std::collections::BTreeMap;

/// One parsed `stream-map:` annotation.
#[derive(Debug, Clone)]
pub struct StreamSite {
    /// File (lint-root relative) and line of the assignment site.
    pub file: String,
    /// 1-based line of the `set_stream`/`rng_stream` call.
    pub line: u32,
    /// Allocation authority (`sim-nodes`, `fault-lanes`, …).
    pub domain: String,
    /// Salt constant name or symbolic family tag.
    pub salt: String,
    /// Inclusive stream-id range.
    pub lo: u64,
    /// Inclusive stream-id range.
    pub hi: u64,
    /// Who draws here (free text, quoted in the annotation).
    pub role: String,
}

/// One salt constant discovered in the workspace.
#[derive(Debug, Clone)]
struct SaltConst {
    name: String,
    value: u64,
    file: String,
    line: u32,
    file_ix: usize,
}

/// Output of the R7 pass.
pub struct StreamsReport {
    /// Extra hits keyed by file index.
    pub hits: BTreeMap<usize, Vec<Hit>>,
    /// Rendered `STREAM_MAP.md` content (empty when no sites exist).
    pub map_md: String,
    /// Number of annotated sites.
    pub sites: usize,
}

fn parse_u64(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let t = t
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("usize");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Collects `const NAME: … = <number>;` items from one token stream.
fn salt_consts(fa: &FileAnalysis, file_ix: usize, out: &mut Vec<SaltConst>) {
    let tokens = &fa.lexed.tokens;
    for i in 0..tokens.len() {
        if !(tokens[i].kind == TokKind::Ident && tokens[i].text == "const") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Scan to `=` then take a following number (skipping the type).
        let mut j = i + 2;
        let mut value = None;
        while j < tokens.len() && j < i + 12 {
            let t = &tokens[j];
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            if t.kind == TokKind::Punct && t.text == "=" {
                if let Some(n) = tokens.get(j + 1).filter(|t| t.kind == TokKind::Number) {
                    value = parse_u64(&n.text);
                }
                break;
            }
            j += 1;
        }
        if let Some(v) = value {
            out.push(SaltConst {
                name: name.text.clone(),
                value: v,
                file: fa.ctx.rel.clone(),
                line: name.line,
                file_ix,
            });
        }
    }
}

/// Parses one annotation body (the text after `stream-map:`).
fn parse_annotation(body: &str) -> Result<(String, String, u64, u64, String), String> {
    // Extract role="…" first so the free text can contain spaces.
    let (rest, role) = match body.find("role=\"") {
        Some(p) => {
            let after = &body[p + 6..];
            let Some(q) = after.find('"') else {
                return Err("unterminated role=\"…\"".to_string());
            };
            (
                format!("{} {}", &body[..p], &after[q + 1..]),
                after[..q].to_string(),
            )
        }
        None => return Err("missing role=\"…\"".to_string()),
    };
    let mut domain = None;
    let mut salt = None;
    let mut streams = None;
    for kv in rest.split_whitespace() {
        let Some((k, v)) = kv.split_once('=') else {
            return Err(format!("stray token `{kv}` (expected key=value)"));
        };
        match k {
            "domain" => domain = Some(v.to_string()),
            "salt" => salt = Some(v.to_string()),
            "streams" => streams = Some(v.to_string()),
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    let domain = domain.ok_or("missing domain=")?;
    let salt = salt.ok_or("missing salt=")?;
    let streams = streams.ok_or("missing streams=")?;
    let (lo, hi) = match streams.split_once("..=") {
        Some((a, b)) => (
            parse_u64(a).ok_or_else(|| format!("bad stream range `{streams}`"))?,
            parse_u64(b).ok_or_else(|| format!("bad stream range `{streams}`"))?,
        ),
        None => {
            let v = parse_u64(&streams).ok_or_else(|| format!("bad stream range `{streams}`"))?;
            (v, v)
        }
    };
    if lo > hi {
        return Err(format!("empty stream range `{streams}`"));
    }
    Ok((domain, salt, lo, hi, role))
}

/// A salt name written as a symbolic family tag (`scenario-seed`)
/// rather than a constant reference (`FUZZ_SALT`).
fn is_family_tag(salt: &str) -> bool {
    salt.chars().any(|c| c == '-' || c.is_ascii_lowercase())
}

/// Call sites of the stream-assignment API: `set_stream(` or
/// `rng_stream(` not directly after `fn`.
fn assignment_sites(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..tokens.len().saturating_sub(1) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || (t.text != "set_stream" && t.text != "rng_stream") {
            continue;
        }
        if !(tokens[i + 1].kind == TokKind::Punct && tokens[i + 1].text == "(") {
            continue;
        }
        if i >= 1 && tokens[i - 1].kind == TokKind::Ident && tokens[i - 1].text == "fn" {
            continue; // definition, not a use
        }
        out.push(t.line);
    }
    out.dedup();
    out
}

/// Runs the R7 pass over every analyzed file.
pub fn analyze(files: &[FileAnalysis]) -> StreamsReport {
    let mut hits: BTreeMap<usize, Vec<Hit>> = BTreeMap::new();
    let push = |hits: &mut BTreeMap<usize, Vec<Hit>>, fi: usize, line: u32, msg: String| {
        hits.entry(fi).or_default().push(Hit {
            rule: RuleId::R7Streams,
            line,
            message: msg,
        });
    };

    let mut consts = Vec::new();
    for (fi, fa) in files.iter().enumerate() {
        salt_consts(fa, fi, &mut consts);
    }

    // Collect annotated sites; demand annotations in library code.
    let mut sites: Vec<(usize, StreamSite)> = Vec::new();
    for (fi, fa) in files.iter().enumerate() {
        let token_lines = fa.lexed.token_lines();
        // Map annotation comments to their target line, mirroring the
        // waiver-targeting rule (trailing: own line; standalone: next
        // token line).
        let mut annos: BTreeMap<u32, (u32, String)> = BTreeMap::new();
        for c in &fa.lexed.comments {
            if c.is_doc() {
                continue; // doc text may *describe* the grammar, not enact it
            }
            let Some(p) = c.text.find("stream-map:") else {
                continue;
            };
            let body = c.text[p + "stream-map:".len()..].trim().to_string();
            let target = if c.trailing {
                c.line
            } else {
                token_lines
                    .iter()
                    .copied()
                    .find(|&l| l > c.line)
                    .unwrap_or(c.line)
            };
            annos.insert(target, (c.line, body));
        }
        for line in assignment_sites(&fa.lexed.tokens) {
            let required = fa.ctx.kind == FileKind::LibSrc && !fa.in_test(line);
            match annos.remove(&line) {
                Some((_, body)) => match parse_annotation(&body) {
                    Ok((domain, salt, lo, hi, role)) => sites.push((
                        fi,
                        StreamSite {
                            file: fa.ctx.rel.clone(),
                            line,
                            domain,
                            salt,
                            lo,
                            hi,
                            role,
                        },
                    )),
                    Err(e) => push(
                        &mut hits,
                        fi,
                        line,
                        format!("unparsable stream-map annotation: {e}"),
                    ),
                },
                None if required => push(
                    &mut hits,
                    fi,
                    line,
                    "RNG stream assignment without a stream-map annotation — every \
                     library stream id must be registered in the audit table"
                        .to_string(),
                ),
                None => {}
            }
        }
        // Annotations that matched no site are stale.
        for (target, (cline, _)) in annos {
            push(
                &mut hits,
                fi,
                cline,
                format!(
                    "stream-map annotation targets line {target}, which has no \
                         set_stream/rng_stream call"
                ),
            );
        }
    }

    // Salt resolution + distinctness over the referenced constants.
    let mut referenced: BTreeMap<&str, &SaltConst> = BTreeMap::new();
    for (fi, s) in &sites {
        if is_family_tag(&s.salt) {
            continue;
        }
        match consts.iter().find(|c| c.name == s.salt) {
            Some(c) => {
                referenced.insert(&s.salt, c);
            }
            None => push(
                &mut hits,
                *fi,
                s.line,
                format!(
                    "stream-map salt `{}` does not resolve to a numeric const in the \
                     workspace",
                    s.salt
                ),
            ),
        }
    }
    // Include every *_SALT const in the distinctness check even when
    // unreferenced — a colliding salt is a bug before anyone draws.
    for c in &consts {
        if c.name.contains("SALT") {
            referenced.entry(&c.name).or_insert(c);
        }
    }
    let salts: Vec<&SaltConst> = referenced.values().copied().collect();
    for (a, b) in pairs(salts.len()) {
        if salts[a].value == salts[b].value {
            for s in [salts[a], salts[b]] {
                push(
                    &mut hits,
                    s.file_ix,
                    s.line,
                    format!(
                        "salt collision: `{}` and `{}` share the value {:#x} — two seed \
                         families fold onto one keystream",
                        salts[a].name, salts[b].name, s.value
                    ),
                );
            }
        }
    }

    // Same-salt, cross-domain ranges must be disjoint.
    for (a, b) in pairs(sites.len()) {
        let (fa_ix, sa) = &sites[a];
        let (fb_ix, sb) = &sites[b];
        if sa.salt != sb.salt || sa.domain == sb.domain {
            continue;
        }
        if sa.lo <= sb.hi && sb.lo <= sa.hi {
            let msg = |other: &StreamSite| {
                format!(
                    "stream range collision on salt `{}`: domains `{}` and `{}` overlap \
                     ({}..={} vs {}..={}; other site {}:{})",
                    sa.salt,
                    sa.domain,
                    sb.domain,
                    sa.lo,
                    sa.hi,
                    sb.lo,
                    sb.hi,
                    other.file,
                    other.line
                )
            };
            push(&mut hits, *fa_ix, sa.line, msg(sb));
            push(&mut hits, *fb_ix, sb.line, msg(sa));
        }
    }

    for v in hits.values_mut() {
        v.sort_by_key(|h| h.line);
    }
    let map_md = render_map(&sites, &salts);
    StreamsReport {
        hits,
        map_md,
        sites: sites.len(),
    }
}

fn pairs(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).flat_map(move |a| (a + 1..n).map(move |b| (a, b)))
}

fn render_map(sites: &[(usize, StreamSite)], salts: &[&SaltConst]) -> String {
    if sites.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(
        "# RNG stream map\n\n\
         Generated from `// stream-map:` annotations by\n\
         `cargo run -p xtask -- lint --write-stream-map`. Do not edit by hand:\n\
         `lint` (R7-streams) fails when this file drifts from the sources.\n\
         Semantics: salts separate seed *families* (pairwise-distinct values\n\
         checked below); within a family, stream ranges of different domains\n\
         are pairwise disjoint; same-domain roles partition their range as\n\
         documented in the role column (DESIGN.md §16).\n\n\
         ## Salt families\n\n\
         | salt | value | declared at |\n\
         |------|-------|-------------|\n",
    );
    let mut salt_rows: Vec<String> = salts
        .iter()
        .map(|c| {
            format!(
                "| `{}` | `{:#018x}` | {}:{} |\n",
                c.name, c.value, c.file, c.line
            )
        })
        .collect();
    let mut families: Vec<&str> = sites
        .iter()
        .filter(|(_, s)| is_family_tag(&s.salt))
        .map(|(_, s)| s.salt.as_str())
        .collect();
    families.sort_unstable();
    families.dedup();
    for f in families {
        salt_rows.push(format!("| `{f}` | (runtime seed family) | — |\n"));
    }
    salt_rows.sort();
    out.extend(salt_rows);
    out.push_str(
        "\n## Stream assignments\n\n\
         | domain | salt | streams | role | site |\n\
         |--------|------|---------|------|------|\n",
    );
    let mut rows: Vec<String> = sites
        .iter()
        .map(|(_, s)| {
            format!(
                "| `{}` | `{}` | {}..={} | {} | {}:{} |\n",
                s.domain, s.salt, s.lo, s.hi, s.role, s.file, s.line
            )
        })
        .collect();
    rows.sort();
    out.extend(rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{analyze_file, FileCtx};

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        analyze_file(FileCtx::classify(rel).expect("classifiable"), src)
    }

    fn lines_of(r: &StreamsReport, fi: usize) -> Vec<u32> {
        r.hits
            .get(&fi)
            .map(|v| v.iter().map(|h| h.line).collect())
            .unwrap_or_default()
    }

    const GOOD: &str = "const MY_SALT: u64 = 0x10;\n\
        pub fn mk(seed: u64) -> u64 {\n\
            // stream-map: domain=lanes salt=MY_SALT streams=0..=7 role=\"lane draws\"\n\
            set_stream(seed);\n\
            seed\n\
        }\n";

    #[test]
    fn annotated_site_is_clean_and_mapped() {
        let files = vec![fa("crates/mac/src/x.rs", GOOD)];
        let r = analyze(&files);
        assert!(r.hits.is_empty(), "{:?}", r.hits);
        assert_eq!(r.sites, 1);
        assert!(r.map_md.contains("| `lanes` | `MY_SALT` | 0..=7 |"));
        assert!(r.map_md.contains("`MY_SALT` | `0x0000000000000010`"));
    }

    #[test]
    fn missing_annotation_is_required_in_lib_src_only() {
        let src = "pub fn mk(s: u64) { set_stream(s); }\n";
        let lib = vec![fa("crates/mac/src/x.rs", src)];
        assert_eq!(lines_of(&analyze(&lib), 0), vec![1]);
        let tests = vec![fa("crates/mac/tests/t.rs", src)];
        assert!(analyze(&tests).hits.is_empty());
    }

    #[test]
    fn salt_collision_is_flagged_at_both_consts() {
        let a = fa(
            "crates/mac/src/a.rs",
            "pub const A_SALT: u64 = 0x42;\n\
             pub fn f(s: u64) {\n\
                 // stream-map: domain=a salt=A_SALT streams=0..=1 role=\"a\"\n\
                 set_stream(s);\n\
             }\n",
        );
        let b = fa(
            "crates/whitefi/src/b.rs",
            "pub const B_SALT: u64 = 0x42;\n\
             pub fn g(s: u64) {\n\
                 // stream-map: domain=b salt=B_SALT streams=0..=1 role=\"b\"\n\
                 set_stream(s);\n\
             }\n",
        );
        let r = analyze(&[a, b]);
        assert_eq!(lines_of(&r, 0), vec![1]);
        assert_eq!(lines_of(&r, 1), vec![1]);
        assert!(r.hits[&0][0].message.contains("salt collision"));
    }

    #[test]
    fn cross_domain_overlap_on_one_salt_is_flagged() {
        let src = "const S_SALT: u64 = 7;\n\
            pub fn f(s: u64) {\n\
                // stream-map: domain=alpha salt=S_SALT streams=0..=4 role=\"a\"\n\
                set_stream(s);\n\
                // stream-map: domain=beta salt=S_SALT streams=4..=9 role=\"b\"\n\
                set_stream(s + 1);\n\
            }\n";
        let r = analyze(&[fa("crates/mac/src/x.rs", src)]);
        assert_eq!(lines_of(&r, 0), vec![4, 6]);
        assert!(r.hits[&0][0].message.contains("range collision"));
        // Same-domain partitions may overlap freely.
        let ok = src.replace("domain=beta", "domain=alpha");
        let r = analyze(&[fa("crates/mac/src/x.rs", &ok)]);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn unresolved_salt_and_stale_annotation_are_flagged() {
        let src = "pub fn f(s: u64) {\n\
            // stream-map: domain=a salt=NO_SUCH_SALT streams=0..=1 role=\"a\"\n\
            set_stream(s);\n\
        }\n\
        // stream-map: domain=b salt=scenario-seed streams=0..=1 role=\"b\"\n\
        pub fn g() {}\n";
        let r = analyze(&[fa("crates/mac/src/x.rs", src)]);
        assert_eq!(lines_of(&r, 0), vec![3, 5]);
    }

    #[test]
    fn family_tags_are_symbolic_salts() {
        let src = "pub fn mk(s: u64) -> u64 {\n\
            // stream-map: domain=nodes salt=scenario-seed streams=0..=99 role=\"per node\"\n\
            set_stream(s);\n\
            s\n\
        }\n";
        let r = analyze(&[fa("crates/mac/src/x.rs", src)]);
        assert!(r.hits.is_empty(), "{:?}", r.hits);
        assert!(r
            .map_md
            .contains("| `scenario-seed` | (runtime seed family) | — |"));
    }
}
