//! whitefi-lint: a workspace determinism/safety linter.
//!
//! The simulator's core guarantees — byte-identical results across
//! sequential and parallel runs, pruned==unpruned equality, golden
//! trace digests (DESIGN.md §7–§10) — are conventions about *how* code
//! is written: ordered containers in sim state, seeded per-node RNG
//! streams, no wall-clock reads in sim paths. This crate turns those
//! conventions into machine-checked rules that run at check time
//! (`cargo run -p xtask -- lint`), before any simulation executes.
//!
//! Rules (full rationale and waiver policy in DESIGN.md §11):
//!
//! - **R1-hashmap** — no `HashMap`/`HashSet` in the sim-deterministic
//!   crates (`mac`, `whitefi`, `spectrum`, `bench`).
//! - **R2-nondet** — no `thread_rng`, `rand::random`,
//!   `SystemTime::now`, `Instant::now` outside the wall-clock
//!   allowlist (bench runner timing, criterion benches).
//! - **R3-rng** — no `from_entropy`/`from_os_rng`; RNGs go through
//!   `seed_from_u64` + `set_stream`.
//! - **R4-unwrap** — no `.unwrap()`/`.expect(…)` in library code
//!   outside `#[cfg(test)]` without a reasoned waiver.
//! - **R5-cast** — no `as` numeric casts in the hot numeric kernels
//!   (`phy::sift`, `spectrum::airtime`, `whitefi::mcham`).

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use diag::Diagnostic;
use rules::FileCtx;
use std::io;
use std::path::Path;

/// Outcome of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations (and malformed waivers) that must be fixed.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Violations silenced by a valid waiver.
    pub waived: usize,
}

impl LintOutcome {
    /// Whether the tree is clean.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints the workspace rooted at `root`.
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut outcome = LintOutcome::default();
    for rel in walk::workspace_files(root)? {
        let Some(ctx) = FileCtx::classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(root.join(&rel))?;
        let report = rules::check_file(&ctx, &src);
        outcome.files += 1;
        outcome.waived += report.waived;
        outcome.diagnostics.extend(report.diagnostics);
    }
    Ok(outcome)
}
