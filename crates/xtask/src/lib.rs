//! whitefi-lint: a workspace determinism/safety linter.
//!
//! The simulator's core guarantees — byte-identical results across
//! sequential and parallel runs, pruned==unpruned equality, golden
//! trace digests (DESIGN.md §7–§10) — are conventions about *how* code
//! is written: ordered containers in sim state, seeded per-node RNG
//! streams, no wall-clock reads in sim paths. This crate turns those
//! conventions into machine-checked rules that run at check time
//! (`cargo run -p xtask -- lint`), before any simulation executes.
//!
//! Rules (full rationale and waiver policy in DESIGN.md §11, §16):
//!
//! - **R1-hashmap** — no `HashMap`/`HashSet` in the sim-deterministic
//!   crates (`mac`, `whitefi`, `spectrum`, `bench`).
//! - **R2-nondet** — no `thread_rng`, `rand::random`,
//!   `SystemTime::now`, `Instant::now` outside the wall-clock
//!   allowlist (bench runner timing, criterion benches).
//! - **R3-rng** — no `from_entropy`/`from_os_rng`; RNGs go through
//!   `seed_from_u64` + `set_stream`.
//! - **R4-unwrap** — no `.unwrap()`/`.expect(…)` in library code
//!   outside `#[cfg(test)]` without a reasoned waiver.
//! - **R5-cast** — no `as` numeric casts in the hot numeric kernels
//!   (`phy::sift`, `spectrum::airtime`, `whitefi::mcham`).
//! - **R6-taint** — whole-workspace call-graph taint: no path from
//!   sim-deterministic library code into a fn that transitively
//!   reaches ambient nondeterminism ([`taint`]).
//! - **R7-streams** — every RNG stream-assignment site is registered
//!   in the stream map, salts are pairwise distinct, cross-domain
//!   ranges on one salt are disjoint, and `STREAM_MAP.md` matches the
//!   sources ([`streams`]).
//! - **R8-dead-waiver** — a valid waiver that silences nothing is
//!   itself a finding.
//!
//! R1–R5 are per-file lexical passes; R6/R7 are whole-workspace
//! passes over the item/call-graph facts extracted by [`graph`]. Both
//! kinds of hit flow through the same waiver filter in
//! [`rules::finalize`], which is also where R8 falls out: any valid
//! waiver left silencing nothing is dead.

#![forbid(unsafe_code)]

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod streams;
pub mod taint;
pub mod walk;

use diag::{Diagnostic, RuleId};
use rules::{FileCtx, WaiverExplain};
use std::io;
use std::path::Path;

/// Outcome of linting a workspace tree.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations (and malformed waivers) that must be fixed.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Violations silenced by a valid waiver.
    pub waived: usize,
    /// What every valid waiver silences (for `--explain-waiver`).
    pub waiver_explains: Vec<WaiverExplain>,
    /// Rendered stream-map content (empty when no annotated sites).
    pub stream_map: String,
}

impl LintOutcome {
    /// Whether the tree is clean.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints the workspace rooted at `root`.
///
/// Two phases: per-file analysis collects lexical hits plus the fn/
/// call-site facts, then the whole-workspace passes ([`taint`], R6;
/// [`streams`], R7) contribute extra hits, and every file is
/// finalized through one waiver filter (R8 dead waivers fall out
/// there). Finally the committed `STREAM_MAP.md` is checked against
/// the rendered map — drift is a non-waivable R7 finding.
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let mut analyses = Vec::new();
    for rel in walk::workspace_files(root)? {
        let Some(ctx) = FileCtx::classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(root.join(&rel))?;
        analyses.push(rules::analyze_file(ctx, &src));
    }

    let mut taint_hits = taint::analyze(&analyses);
    let streams_report = streams::analyze(&analyses);
    let mut stream_hits = streams_report.hits;

    let mut outcome = LintOutcome {
        stream_map: streams_report.map_md.clone(),
        ..LintOutcome::default()
    };
    for (fi, fa) in analyses.iter().enumerate() {
        let mut extra = taint_hits.remove(&fi).unwrap_or_default();
        extra.extend(stream_hits.remove(&fi).unwrap_or_default());
        let (report, explains) = rules::finalize(fa, extra);
        outcome.files += 1;
        outcome.waived += report.waived;
        outcome.diagnostics.extend(report.diagnostics);
        outcome.waiver_explains.extend(explains);
    }

    // Stream-map drift: once any site is annotated (or a map is
    // committed), the committed file must match the rendered one
    // byte-for-byte. Not waivable — regenerating is one command.
    let map_path = root.join("STREAM_MAP.md");
    let committed = std::fs::read_to_string(&map_path).ok();
    if (streams_report.sites > 0 || committed.is_some())
        && committed.as_deref() != Some(streams_report.map_md.as_str())
    {
        let state = match &committed {
            None => "missing".to_string(),
            Some(c) => format!(
                "stale ({} committed byte(s) vs {} rendered)",
                c.len(),
                streams_report.map_md.len()
            ),
        };
        outcome.diagnostics.push(Diagnostic {
            file: "STREAM_MAP.md".to_string(),
            line: 1,
            rule: RuleId::R7Streams,
            message: format!(
                "stream map is {state}; regenerate with \
                 `cargo run -p xtask -- lint --write-stream-map`"
            ),
            snippet: String::new(),
        });
    }

    outcome
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(outcome)
}
