//! Property-based tests for the spectrum model.

use proptest::prelude::*;
use whitefi_spectrum::{
    fragment_histogram, SpectrumMap, UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS,
};

fn arb_map() -> impl Strategy<Value = SpectrumMap> {
    (0u32..(1 << NUM_UHF_CHANNELS)).prop_map(SpectrumMap::from_bits)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W5), Just(Width::W10), Just(Width::W20)]
}

proptest! {
    #[test]
    fn bits_round_trip(m in arb_map()) {
        prop_assert_eq!(SpectrumMap::from_bits(m.bits()), m);
    }

    #[test]
    fn occupied_plus_free_is_thirty(m in arb_map()) {
        prop_assert_eq!(m.occupied_count() + m.free_count(), NUM_UHF_CHANNELS);
    }

    #[test]
    fn hamming_is_a_metric(a in arb_map(), b in arb_map(), c in arb_map()) {
        prop_assert_eq!(a.hamming(b), b.hamming(a));
        prop_assert_eq!(a.hamming(a), 0);
        // Triangle inequality.
        prop_assert!(a.hamming(c) <= a.hamming(b) + b.hamming(c));
        // Identity of indiscernibles.
        if a.hamming(b) == 0 { prop_assert_eq!(a, b); }
    }

    #[test]
    fn union_is_monotone(a in arb_map(), b in arb_map()) {
        let u = a.union(b);
        for ch in UhfChannel::all() {
            if a.is_occupied(ch) || b.is_occupied(ch) {
                prop_assert!(u.is_occupied(ch));
            } else {
                prop_assert!(u.is_free(ch));
            }
        }
        // Union can only shrink the candidate set.
        prop_assert!(u.available_channels().len() <= a.available_channels().len());
    }

    #[test]
    fn fragments_partition_free_channels(m in arb_map()) {
        let frags = m.fragments();
        // Total fragment length equals free count.
        let total: usize = frags.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, m.free_count());
        // Fragments are maximal: separated by at least one occupied channel.
        for w in frags.windows(2) {
            prop_assert!(w[0].start() + w[0].len() < w[1].start());
        }
        // Every fragment channel is free.
        for f in &frags {
            for ch in f.channels() {
                prop_assert!(m.is_free(ch));
            }
        }
    }

    #[test]
    fn available_channels_fit_in_fragments(m in arb_map()) {
        let frags = m.fragments();
        for wf in m.available_channels() {
            // The span of every available channel lies inside one fragment.
            let hosted = frags.iter().any(|f| {
                f.start() <= wf.low_index() && wf.high_index() < f.start() + f.len()
            });
            prop_assert!(hosted, "channel {wf} not inside any fragment");
        }
        // Conversely, per-fragment enumeration covers exactly the same set.
        let mut from_frags: Vec<WfChannel> =
            frags.iter().flat_map(|f| f.channels_within()).collect();
        let mut avail = m.available_channels();
        from_frags.sort();
        avail.sort();
        prop_assert_eq!(from_frags, avail);
    }

    #[test]
    fn flip_changes_exactly_one_channel(m in arb_map(), i in 0usize..NUM_UHF_CHANNELS) {
        let mut f = m;
        f.flip(UhfChannel::from_index(i));
        prop_assert_eq!(m.hamming(f), 1);
        f.flip(UhfChannel::from_index(i));
        prop_assert_eq!(m, f);
    }

    #[test]
    fn widest_fragment_bounds_widest_available_width(m in arb_map()) {
        let widest = m.widest_fragment();
        for wf in m.available_channels() {
            prop_assert!(wf.width().span() <= widest);
        }
    }

    #[test]
    fn histogram_total_matches_fragment_count(m in arb_map()) {
        let h = fragment_histogram([&m]);
        prop_assert_eq!(h.iter().sum::<usize>(), m.fragments().len());
        prop_assert_eq!(h[0], 0);
    }

    #[test]
    fn overlap_iff_span_intersection(ci in 0usize..NUM_UHF_CHANNELS, wi in arb_width(),
                                      cj in 0usize..NUM_UHF_CHANNELS, wj in arb_width()) {
        let (Some(a), Some(b)) = (
            WfChannel::new(UhfChannel::from_index(ci), wi),
            WfChannel::new(UhfChannel::from_index(cj), wj),
        ) else { return Ok(()); };
        let brute = a.spanned().any(|u| b.contains(u));
        prop_assert_eq!(a.overlaps(b), brute);
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }
}
