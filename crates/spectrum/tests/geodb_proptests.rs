//! Property-based tests for the geo-location database.

use proptest::prelude::*;
use whitefi_spectrum::{contour_radius_km, GeoDatabase, Location, StationRecord, UhfChannel};

fn arb_station() -> impl Strategy<Value = StationRecord> {
    (
        0usize..30,
        -200.0f64..200.0,
        -200.0f64..200.0,
        0.1f64..1000.0,
    )
        .prop_map(|(ch, x, y, erp)| StationRecord {
            channel: UhfChannel::from_index(ch),
            site: Location::new(x, y),
            erp_kw: erp,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contours are monotone in power and floored.
    #[test]
    fn contour_monotone(a in 0.0f64..2000.0, b in 0.0f64..2000.0) {
        prop_assume!(a < b);
        prop_assert!(contour_radius_km(a) <= contour_radius_km(b));
        prop_assert!(contour_radius_km(a) >= 5.0);
    }

    /// Blocking is exactly "inside contour + margin".
    #[test]
    fn blocking_matches_distance(s in arb_station(), x in -400.0f64..400.0, y in -400.0f64..400.0) {
        let mut db = GeoDatabase::new();
        db.register(s);
        let loc = Location::new(x, y);
        let blocked = db.query(loc).is_occupied(s.channel);
        let inside = s.site.distance_km(loc) <= s.contour_km() + db.margin_km;
        prop_assert_eq!(blocked, inside);
        // Channels nobody is licensed on are always free.
        for ch in 0..30usize {
            if ch != s.channel.index() {
                prop_assert!(db.query(loc).is_free(UhfChannel::from_index(ch)));
            }
        }
    }

    /// The database map is the union of per-station maps; moving closer
    /// to a station never frees its channel.
    #[test]
    fn union_and_monotone_distance(
        stations in prop::collection::vec(arb_station(), 1..8),
        x in -300.0f64..300.0,
        y in -300.0f64..300.0,
    ) {
        let mut db = GeoDatabase::new();
        for s in &stations {
            db.register(*s);
        }
        let loc = Location::new(x, y);
        let map = db.query(loc);
        for s in &stations {
            let mut single = GeoDatabase::new();
            single.register(*s);
            if single.query(loc).is_occupied(s.channel) {
                prop_assert!(map.is_occupied(s.channel));
            }
            // Walk 90% of the way toward the transmitter: still blocked
            // if it was blocked from farther out.
            if map.is_occupied(s.channel) && single.query(loc).is_occupied(s.channel) {
                let closer = Location::new(
                    s.site.x_km + (loc.x_km - s.site.x_km) * 0.1,
                    s.site.y_km + (loc.y_km - s.site.y_km) * 0.1,
                );
                prop_assert!(db.query(closer).is_occupied(s.channel));
            }
        }
        // blocking_stations agrees with the map.
        let blockers = db.blocking_stations(loc);
        for b in &blockers {
            prop_assert!(map.is_occupied(b.channel));
        }
        prop_assert_eq!(
            map.occupied_count() == 0,
            blockers.is_empty()
        );
    }

    /// Distance is a metric (symmetric, zero iff same point, triangle).
    #[test]
    fn distance_metric(ax in -100.0f64..100.0, ay in -100.0f64..100.0,
                       bx in -100.0f64..100.0, by in -100.0f64..100.0,
                       cx in -100.0f64..100.0, cy in -100.0f64..100.0) {
        let a = Location::new(ax, ay);
        let b = Location::new(bx, by);
        let c = Location::new(cx, cy);
        prop_assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        prop_assert!(a.distance_km(a) < 1e-12);
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-9);
    }
}
