//! Spectrum maps: per-node incumbent occupancy bit-vectors.
//!
//! "The AP and each client maintains a *spectrum map* which is a bit-vector
//! `{u_0, …, u_k}` where each `u_i` represents whether the corresponding
//! UHF channel is currently in use by an incumbent" (§4.1, Preliminaries).

use crate::channel::{UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};
use crate::fragment::Fragment;
use serde::{Deserialize, Serialize};

/// Incumbent occupancy of the 30 usable UHF channels, as seen by one node.
///
/// Bit `i` set means UHF channel `i` is occupied by an incumbent (a TV
/// broadcast or a wireless microphone) and must not be transmitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SpectrumMap(u32);

impl SpectrumMap {
    /// A map with every channel free.
    pub fn all_free() -> Self {
        Self(0)
    }

    /// A map with every channel occupied.
    pub fn all_occupied() -> Self {
        Self((1u32 << NUM_UHF_CHANNELS) - 1)
    }

    /// Builds a map from an iterator of occupied channel indices.
    pub fn from_occupied<I: IntoIterator<Item = usize>>(occupied: I) -> Self {
        let mut m = Self::all_free();
        for i in occupied {
            m.set_occupied(UhfChannel::from_index(i));
        }
        m
    }

    /// Builds a map from an iterator of *free* channel indices (everything
    /// else occupied). Convenient for scripting the paper's testbed maps,
    /// e.g. §5.4.2: "free UHF channels: 26 to 30, 33 to 35, 39 and 48".
    pub fn from_free<I: IntoIterator<Item = usize>>(free: I) -> Self {
        let mut m = Self::all_occupied();
        for i in free {
            m.set_free(UhfChannel::from_index(i));
        }
        m
    }

    /// Whether `ch` is occupied by an incumbent.
    pub fn is_occupied(self, ch: UhfChannel) -> bool {
        self.0 & (1 << ch.index()) != 0
    }

    /// Whether `ch` is free of incumbents.
    pub fn is_free(self, ch: UhfChannel) -> bool {
        !self.is_occupied(ch)
    }

    /// Marks `ch` occupied.
    pub fn set_occupied(&mut self, ch: UhfChannel) {
        self.0 |= 1 << ch.index();
    }

    /// Marks `ch` free.
    pub fn set_free(&mut self, ch: UhfChannel) {
        self.0 &= !(1 << ch.index());
    }

    /// Flips the occupancy of `ch` (used by the Figure 12 spatial-variation
    /// model).
    pub fn flip(&mut self, ch: UhfChannel) {
        self.0 ^= 1 << ch.index();
    }

    /// Bitwise OR: the set of channels blocked at *any* of the nodes.
    ///
    /// "The first step is to take the bitwise OR of the clients' and AP's
    /// spectrum maps to determine the set of UHF channels available at all
    /// of the nodes" (§4.1, Channel probing).
    pub fn union(self, other: SpectrumMap) -> SpectrumMap {
        SpectrumMap(self.0 | other.0)
    }

    /// Union over any number of maps.
    pub fn union_all<I: IntoIterator<Item = SpectrumMap>>(maps: I) -> SpectrumMap {
        maps.into_iter()
            .fold(SpectrumMap::all_free(), SpectrumMap::union)
    }

    /// Number of occupied channels.
    pub fn occupied_count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Number of free channels.
    pub fn free_count(self) -> usize {
        NUM_UHF_CHANNELS - self.occupied_count()
    }

    /// Hamming distance: the number of channels whose availability differs
    /// between the two maps (§2.1's spatial-variation statistic).
    pub fn hamming(self, other: SpectrumMap) -> usize {
        (self.0 ^ other.0).count_ones() as usize
    }

    /// Iterator over the free UHF channels.
    pub fn free_channels(self) -> impl Iterator<Item = UhfChannel> {
        UhfChannel::all().filter(move |&c| self.is_free(c))
    }

    /// Iterator over the occupied UHF channels.
    pub fn occupied_channels(self) -> impl Iterator<Item = UhfChannel> {
        UhfChannel::all().filter(move |&c| self.is_occupied(c))
    }

    /// Whether the whole span of WhiteFi channel `wf` is incumbent-free.
    pub fn admits(self, wf: WfChannel) -> bool {
        wf.spanned().all(|u| self.is_free(u))
    }

    /// Enumerates every WhiteFi channel `(F, W)` whose full span is free.
    ///
    /// This is the candidate set the spectrum-assignment algorithm scores
    /// with MCham, and the set of channels an AP may beacon on.
    pub fn available_channels(self) -> Vec<WfChannel> {
        WfChannel::all().filter(|&wf| self.admits(wf)).collect()
    }

    /// Enumerates available channels restricted to one width.
    pub fn available_channels_of_width(self, width: Width) -> Vec<WfChannel> {
        self.available_channels()
            .into_iter()
            .filter(|c| c.width() == width)
            .collect()
    }

    /// Maximal runs of contiguous free channels, in ascending order.
    pub fn fragments(self) -> Vec<Fragment> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for i in 0..NUM_UHF_CHANNELS {
            let free = self.is_free(UhfChannel::from_index(i));
            match (free, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push(Fragment::new(s, i - s));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push(Fragment::new(s, NUM_UHF_CHANNELS - s));
        }
        out
    }

    /// Width (in UHF channels) of the largest contiguous free fragment.
    pub fn widest_fragment(self) -> usize {
        self.fragments().iter().map(|f| f.len()).max().unwrap_or(0)
    }

    /// Raw bit representation (bit `i` = channel `i` occupied).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs a map from raw bits, masking out-of-range bits.
    pub fn from_bits(bits: u32) -> Self {
        Self(bits & ((1u32 << NUM_UHF_CHANNELS) - 1))
    }
}

impl std::fmt::Display for SpectrumMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..NUM_UHF_CHANNELS {
            let c = if self.is_occupied(UhfChannel::from_index(i)) {
                'X'
            } else {
                '.'
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut m = SpectrumMap::all_free();
        assert_eq!(m.free_count(), 30);
        m.set_occupied(UhfChannel::from_index(3));
        assert!(m.is_occupied(UhfChannel::from_index(3)));
        assert!(m.is_free(UhfChannel::from_index(4)));
        assert_eq!(m.occupied_count(), 1);
        m.set_free(UhfChannel::from_index(3));
        assert_eq!(m, SpectrumMap::all_free());
    }

    #[test]
    fn union_blocks_channels_blocked_anywhere() {
        let a = SpectrumMap::from_occupied([1, 2]);
        let b = SpectrumMap::from_occupied([2, 5]);
        let u = a.union(b);
        assert_eq!(
            u.occupied_channels().map(|c| c.index()).collect::<Vec<_>>(),
            vec![1, 2, 5]
        );
    }

    #[test]
    fn union_all_of_empty_is_all_free() {
        assert_eq!(SpectrumMap::union_all([]), SpectrumMap::all_free());
    }

    #[test]
    fn hamming_counts_differing_channels() {
        let a = SpectrumMap::from_occupied([0, 1, 2]);
        let b = SpectrumMap::from_occupied([2, 3]);
        assert_eq!(a.hamming(b), 3);
        assert_eq!(a.hamming(a), 0);
        assert_eq!(b.hamming(a), 3);
    }

    #[test]
    fn admits_requires_full_span_free() {
        let m = SpectrumMap::from_occupied([7]);
        // 20 MHz centred at 9 spans 7..=11: blocked by channel 7.
        assert!(!m.admits(WfChannel::from_parts(9, Width::W20)));
        // 20 MHz centred at 10 spans 8..=12: free.
        assert!(m.admits(WfChannel::from_parts(10, Width::W20)));
        // 5 MHz on channel 7 itself is blocked.
        assert!(!m.admits(WfChannel::from_parts(7, Width::W5)));
    }

    #[test]
    fn available_channels_on_empty_map_is_84() {
        assert_eq!(SpectrumMap::all_free().available_channels().len(), 84);
        assert!(SpectrumMap::all_occupied().available_channels().is_empty());
    }

    #[test]
    fn fragments_of_testbed_map_match_section_5_4_2() {
        // "The spectrum map of our building has the following free UHF
        // channels: 26 to 30, 33 to 35, 39 and 48. Therefore, we have
        // fragments of size 20 MHz, 10 MHz and two channels of 5 MHz."
        // TV channels 26..30 → indices 5..9; 33..35 → 12..14; 39 → 17
        // (TV>37 shifts by one); 48 → 26.
        let m = building5_map();
        let frags = m.fragments();
        let lens: Vec<usize> = frags.iter().map(|f| f.len()).collect();
        assert_eq!(lens, vec![5, 3, 1, 1]);
    }

    /// The paper's Building 5 testbed map (§5.4.2).
    pub(crate) fn building5_map() -> SpectrumMap {
        SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26])
    }

    #[test]
    fn widest_fragment_matches() {
        assert_eq!(building5_map().widest_fragment(), 5);
        assert_eq!(SpectrumMap::all_occupied().widest_fragment(), 0);
        assert_eq!(SpectrumMap::all_free().widest_fragment(), 30);
    }

    #[test]
    fn display_renders_occupancy() {
        let m = SpectrumMap::from_occupied([0, 29]);
        let s = m.to_string();
        assert_eq!(s.len(), 30);
        assert!(s.starts_with('X'));
        assert!(s.ends_with('X'));
        assert_eq!(s.matches('X').count(), 2);
    }

    #[test]
    fn bits_round_trip() {
        let m = SpectrumMap::from_occupied([3, 17, 29]);
        assert_eq!(SpectrumMap::from_bits(m.bits()), m);
        // Out-of-range bits are masked.
        assert_eq!(SpectrumMap::from_bits(u32::MAX).occupied_count(), 30);
    }
}
