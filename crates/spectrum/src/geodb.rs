//! Geo-location database for incumbent protection.
//!
//! Besides sensing, §3 notes: "The FCC is looking at the use of a
//! geo-location database to regulate and inform clients about the
//! presence of primary users" — the mechanism that ultimately shipped in
//! the real white-space rules. This module implements that substrate: a
//! database of TV station records with transmitter locations and
//! protected service contours, answering "which channels may a device at
//! location X use?".
//!
//! The model is deliberately simple and fully documented:
//!
//! * locations are planar kilometre coordinates (fine at metro scale);
//! * a station's **service contour** is a disc around its transmitter
//!   whose radius grows with effective radiated power (a smooth stand-in
//!   for the FCC's F(50,90) propagation curves);
//! * a white-space device must stay outside the contour *plus a
//!   protection margin* (the real rules add kilometres of separation for
//!   portable devices) — inside that keep-out disc the channel is
//!   occupied.
//!
//! The database view complements sensing: [`GeoDatabase::query`] produces
//! the same [`SpectrumMap`] shape the sensing path produces, so protocol
//! code can combine both (the FCC requires the union).

use crate::channel::UhfChannel;
use crate::map::SpectrumMap;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A planar location in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Location {
    /// East–west coordinate, km.
    pub x_km: f64,
    /// North–south coordinate, km.
    pub y_km: f64,
}

impl Location {
    /// Creates a location.
    pub fn new(x_km: f64, y_km: f64) -> Self {
        Self { x_km, y_km }
    }

    /// Euclidean distance to `other`, km.
    pub fn distance_km(&self, other: Location) -> f64 {
        ((self.x_km - other.x_km).powi(2) + (self.y_km - other.y_km).powi(2)).sqrt()
    }
}

/// Protection margin added outside the service contour for portable
/// white-space devices, km. (The FCC's rules specify kilometre-scale
/// separations outside the protected contour; we use a single
/// representative constant.)
pub const PORTABLE_PROTECTION_MARGIN_KM: f64 = 14.4;

/// Service-contour radius for a transmitter of the given effective
/// radiated power.
///
/// A full-power UHF station (~1000 kW ERP) reaches ≈ 90 km; the radius
/// scales with the cube root of power (free-space-ish over flat terrain),
/// clamped to a 5 km floor for translators/boosters.
pub fn contour_radius_km(erp_kw: f64) -> f64 {
    (90.0 * (erp_kw.max(0.0) / 1000.0).powf(1.0 / 3.0)).max(5.0)
}

/// One TV station record in the database.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StationRecord {
    /// Licensed UHF channel.
    pub channel: UhfChannel,
    /// Transmitter site.
    pub site: Location,
    /// Effective radiated power, kW.
    pub erp_kw: f64,
}

impl StationRecord {
    /// The protected service-contour radius of this station, km.
    pub fn contour_km(&self) -> f64 {
        contour_radius_km(self.erp_kw)
    }

    /// Whether a white-space device at `loc` must avoid this station's
    /// channel (inside contour + margin).
    pub fn blocks(&self, loc: Location, margin_km: f64) -> bool {
        self.site.distance_km(loc) <= self.contour_km() + margin_km
    }
}

/// The geo-location database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoDatabase {
    stations: Vec<StationRecord>,
    /// Protection margin applied on queries, km.
    pub margin_km: f64,
}

impl GeoDatabase {
    /// An empty database with the portable-device protection margin.
    pub fn new() -> Self {
        Self {
            stations: Vec::new(),
            margin_km: PORTABLE_PROTECTION_MARGIN_KM,
        }
    }

    /// Registers a station.
    pub fn register(&mut self, record: StationRecord) {
        self.stations.push(record);
    }

    /// All registered stations.
    pub fn stations(&self) -> &[StationRecord] {
        &self.stations
    }

    /// The spectrum map a device at `loc` must obey: a channel is
    /// occupied iff some station on it blocks `loc`.
    pub fn query(&self, loc: Location) -> SpectrumMap {
        let mut map = SpectrumMap::all_free();
        for s in &self.stations {
            if s.blocks(loc, self.margin_km) {
                map.set_occupied(s.channel);
            }
        }
        map
    }

    /// The stations whose protected area covers `loc` (for UI/diagnosis).
    pub fn blocking_stations(&self, loc: Location) -> Vec<StationRecord> {
        self.stations
            .iter()
            .filter(|s| s.blocks(loc, self.margin_km))
            .copied()
            .collect()
    }

    /// Generates a synthetic metro-area database: `n` stations with
    /// full-power transmitters clustered near the metro centre and
    /// lower-power translators scattered outward.
    pub fn synthetic_metro<R: Rng + ?Sized>(n: usize, radius_km: f64, rng: &mut R) -> Self {
        let mut db = Self::new();
        for _ in 0..n {
            let full_power = rng.gen_bool(0.6);
            let r = if full_power {
                rng.gen_range(0.0..radius_km * 0.3)
            } else {
                rng.gen_range(radius_km * 0.3..radius_km)
            };
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let erp = if full_power {
                rng.gen_range(300.0..1000.0)
            } else {
                rng.gen_range(5.0..100.0)
            };
            db.register(StationRecord {
                channel: UhfChannel::from_index(rng.gen_range(0..crate::channel::NUM_UHF_CHANNELS)),
                site: Location::new(r * theta.cos(), r * theta.sin()),
                erp_kw: erp,
            });
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn station(channel: usize, x: f64, y: f64, erp: f64) -> StationRecord {
        StationRecord {
            channel: UhfChannel::from_index(channel),
            site: Location::new(x, y),
            erp_kw: erp,
        }
    }

    #[test]
    fn contour_scales_with_power() {
        assert!((contour_radius_km(1000.0) - 90.0).abs() < 1e-9);
        // 1/8 the power → half the radius.
        assert!((contour_radius_km(125.0) - 45.0).abs() < 1e-9);
        // Floor for tiny translators.
        assert_eq!(contour_radius_km(0.01), 5.0);
        assert_eq!(contour_radius_km(-3.0), 5.0);
    }

    #[test]
    fn query_inside_and_outside_contour() {
        let mut db = GeoDatabase::new();
        db.register(station(7, 0.0, 0.0, 1000.0)); // contour 90 km
        let ch = UhfChannel::from_index(7);
        // Inside the contour: blocked.
        assert!(db.query(Location::new(50.0, 0.0)).is_occupied(ch));
        // Just outside the contour but inside the margin: still blocked.
        assert!(db.query(Location::new(95.0, 0.0)).is_occupied(ch));
        // Beyond contour + margin: free.
        assert!(db.query(Location::new(110.0, 0.0)).is_free(ch));
        // Other channels unaffected everywhere.
        assert!(db
            .query(Location::new(0.0, 0.0))
            .is_free(UhfChannel::from_index(8)));
    }

    #[test]
    fn maps_union_across_stations() {
        let mut db = GeoDatabase::new();
        db.register(station(3, 0.0, 0.0, 1000.0));
        db.register(station(9, 30.0, 0.0, 1000.0));
        db.register(station(20, 500.0, 0.0, 1000.0)); // far away
        let map = db.query(Location::new(10.0, 0.0));
        assert!(map.is_occupied(UhfChannel::from_index(3)));
        assert!(map.is_occupied(UhfChannel::from_index(9)));
        assert!(map.is_free(UhfChannel::from_index(20)));
        assert_eq!(db.blocking_stations(Location::new(10.0, 0.0)).len(), 2);
    }

    #[test]
    fn hidden_terminal_rationale() {
        // §3's 30 dB detection buffer exists because "a TV is within
        // transmission range of the TV tower but the transmitting device
        // is not". In database terms: the device sits outside the range
        // at which it could *sense* the tower, yet inside the protected
        // area — and the database still blocks it.
        let mut db = GeoDatabase::new();
        db.register(station(5, 0.0, 0.0, 1000.0));
        let fringe = Location::new(100.0, 0.0); // contour 90 + margin 14.4
        assert!(db.query(fringe).is_occupied(UhfChannel::from_index(5)));
    }

    #[test]
    fn database_and_sensing_maps_compose() {
        // The FCC requires obeying the union of database and sensing.
        let mut db = GeoDatabase::new();
        db.register(station(2, 0.0, 0.0, 1000.0));
        let db_map = db.query(Location::new(10.0, 0.0));
        let sensed = SpectrumMap::from_occupied([17]); // a local mic
        let combined = db_map.union(sensed);
        assert!(combined.is_occupied(UhfChannel::from_index(2)));
        assert!(combined.is_occupied(UhfChannel::from_index(17)));
    }

    #[test]
    fn synthetic_metro_blocks_more_downtown_than_exurban() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let db = GeoDatabase::synthetic_metro(25, 60.0, &mut rng);
        let downtown = db.query(Location::new(0.0, 0.0)).occupied_count();
        let exurban = db.query(Location::new(250.0, 0.0)).occupied_count();
        assert!(
            downtown > exurban,
            "downtown {downtown} vs exurban {exurban}"
        );
        assert!(exurban <= 5, "exurban should be mostly free: {exurban}");
    }

    #[test]
    fn determinism_under_seed() {
        let a = GeoDatabase::synthetic_metro(10, 40.0, &mut ChaCha8Rng::seed_from_u64(1));
        let b = GeoDatabase::synthetic_metro(10, 40.0, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a.stations(), b.stations());
    }
}
