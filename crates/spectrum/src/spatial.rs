//! Spatial variation models.
//!
//! Two models from the paper:
//!
//! 1. **Building sampler** (§2.1): occupancy measured in 9 buildings over a
//!    0.9 km × 0.2 km campus showed a *median pairwise Hamming distance of
//!    about 7 channels*. We model each building's map as a shared regional
//!    baseline perturbed by independent per-building flips (obstructions,
//!    construction material, local mics), with the flip rate calibrated so
//!    the median pairwise Hamming distance lands near 7.
//!
//! 2. **Flip model** (Figure 12): "for each client (and AP) and for each
//!    UHF channel i, we randomly flip the entry u_i with probability P" —
//!    the knob the large-scale simulations use to dial spatial variation
//!    from P = 0 to P = 0.14.

use crate::channel::UhfChannel;
#[cfg(test)]
use crate::channel::NUM_UHF_CHANNELS;
use crate::map::SpectrumMap;
use rand::Rng;

/// Returns a copy of `base` with each channel's occupancy independently
/// flipped with probability `p` — the Figure 12 spatial-variation model.
pub fn flip_map<R: Rng + ?Sized>(base: SpectrumMap, p: f64, rng: &mut R) -> SpectrumMap {
    let mut m = base;
    for ch in UhfChannel::all() {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            m.flip(ch);
        }
    }
    m
}

/// Generates correlated per-building spectrum maps around a regional
/// baseline (§2.1's campus measurement).
#[derive(Debug, Clone)]
pub struct BuildingSampler {
    /// The regional baseline every building shares (TV towers dominate).
    pub baseline: SpectrumMap,
    /// Per-building, per-channel flip probability.
    pub flip_prob: f64,
}

impl BuildingSampler {
    /// Flip probability calibrated so that 9 buildings produce a median
    /// pairwise Hamming distance near the paper's measured value of 7.
    ///
    /// For two independent flip vectors with per-channel probability `p`,
    /// a channel differs with probability `2p(1−p)`; the expected Hamming
    /// distance is `30·2p(1−p)`. Solving `30·2p(1−p) = 7` gives
    /// `p ≈ 0.135`.
    pub const CAMPUS_FLIP_PROB: f64 = 0.135;

    /// A sampler reproducing the campus measurement: a mid-density urban
    /// baseline with the calibrated flip probability.
    pub fn campus(baseline: SpectrumMap) -> Self {
        Self {
            baseline,
            flip_prob: Self::CAMPUS_FLIP_PROB,
        }
    }

    /// Samples maps for `buildings` buildings.
    pub fn sample<R: Rng + ?Sized>(&self, buildings: usize, rng: &mut R) -> Vec<SpectrumMap> {
        (0..buildings)
            .map(|_| flip_map(self.baseline, self.flip_prob, rng))
            .collect()
    }
}

/// All pairwise Hamming distances among the given maps (the §2.1
/// statistic), in arbitrary order.
pub fn pairwise_hamming(maps: &[SpectrumMap]) -> Vec<usize> {
    let mut out = Vec::with_capacity(maps.len() * maps.len().saturating_sub(1) / 2);
    for i in 0..maps.len() {
        for j in i + 1..maps.len() {
            out.push(maps[i].hamming(maps[j]));
        }
    }
    out
}

/// Median of a list of values (mean of middle pair for even lengths).
pub fn median(values: &mut [usize]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_unstable();
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2] as f64
    } else {
        (values[n / 2 - 1] + values[n / 2]) as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn flip_with_zero_probability_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = SpectrumMap::from_occupied([1, 5, 9]);
        assert_eq!(flip_map(base, 0.0, &mut rng), base);
    }

    #[test]
    fn flip_with_probability_one_inverts() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = SpectrumMap::from_occupied([1, 5, 9]);
        let flipped = flip_map(base, 1.0, &mut rng);
        assert_eq!(flipped.hamming(base), NUM_UHF_CHANNELS);
    }

    #[test]
    fn flip_rate_matches_probability_in_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = SpectrumMap::all_free();
        let trials = 2000;
        let total: usize = (0..trials)
            .map(|_| flip_map(base, 0.1, &mut rng).hamming(base))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean flips {mean}"); // 30 * 0.1
    }

    #[test]
    fn campus_sampler_median_hamming_near_seven() {
        // §2.1: "the median number of channels available at one point but
        // unavailable at another is close to 7" over 9 buildings.
        let baseline = SpectrumMap::from_occupied([0, 2, 3, 6, 10, 11, 15, 16, 20, 21, 22, 27]);
        let sampler = BuildingSampler::campus(baseline);
        // Average the medians over many 9-building draws to remove noise.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut medians = Vec::new();
        for _ in 0..200 {
            let maps = sampler.sample(9, &mut rng);
            let mut d = pairwise_hamming(&maps);
            medians.push(median(&mut d));
        }
        let mean_median: f64 = medians.iter().sum::<f64>() / medians.len() as f64;
        assert!(
            (mean_median - 7.0).abs() < 0.75,
            "mean median Hamming {mean_median}"
        );
    }

    #[test]
    fn pairwise_count() {
        let maps = vec![SpectrumMap::all_free(); 9];
        assert_eq!(pairwise_hamming(&maps).len(), 36);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&mut [3, 1, 2]), 2.0);
        assert_eq!(median(&mut [4, 1, 2, 3]), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_of_empty_panics() {
        median(&mut []);
    }
}
