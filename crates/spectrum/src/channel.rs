//! UHF channels and variable-width WhiteFi channels.
//!
//! Terminology follows Section 4 of the paper exactly:
//!
//! * a **UHF channel** is one of the 30 usable 6 MHz segments of the US TV
//!   band available to portable devices (TV channels 21–51, excluding the
//!   reserved channel 37);
//! * a **channel** (here [`WfChannel`]) is the tuple `(F, W)` a WhiteFi AP
//!   or client communicates on, where `F` is a centre frequency and `W` the
//!   width. Channels are always centred on a UHF channel's centre
//!   frequency, so a 5 MHz channel fits within one UHF channel, a 10 MHz
//!   channel spans 3 UHF channels, and a 20 MHz channel spans 5.

use serde::{Deserialize, Serialize};

/// Number of usable UHF channels for portable white-space devices in the US
/// (TV channels 21–51 minus the reserved channel 37).
pub const NUM_UHF_CHANNELS: usize = 30;

/// Lower edge of TV channel 21 in MHz.
pub const BAND_START_MHZ: f64 = 512.0;

/// Width of one UHF TV channel in MHz.
pub const UHF_CHANNEL_MHZ: f64 = 6.0;

/// A single 6 MHz UHF channel, indexed `0..NUM_UHF_CHANNELS`.
///
/// Index 0 corresponds to TV channel 21 (512–518 MHz); indices skip TV
/// channel 37, which the FCC reserves for radio astronomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UhfChannel(u8);

impl UhfChannel {
    /// Creates a channel from a raw index, returning `None` out of range.
    pub fn new(index: usize) -> Option<Self> {
        let raw = u8::try_from(index).ok()?;
        (index < NUM_UHF_CHANNELS).then_some(Self(raw))
    }

    /// Creates a channel from a raw index, panicking if out of range.
    ///
    /// # Panics
    /// If `index >= NUM_UHF_CHANNELS`.
    pub fn from_index(index: usize) -> Self {
        // lint:allow(unwrap, the panic is this constructor's documented contract; `new` is the fallible form)
        Self::new(index).expect("UHF channel index out of range")
    }

    /// The raw index in `0..NUM_UHF_CHANNELS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The US TV channel number (21–51, skipping 37).
    pub fn tv_channel(self) -> u32 {
        let n = 21 + self.0 as u32;
        if n >= 37 {
            n + 1
        } else {
            n
        }
    }

    /// Centre frequency in MHz.
    ///
    /// The physical layout skips TV channel 37, so channels at index ≥ 16
    /// sit one 6 MHz slot higher than a naive linear mapping.
    pub fn center_mhz(self) -> f64 {
        let tv = self.tv_channel() as f64;
        BAND_START_MHZ + (tv - 21.0) * UHF_CHANNEL_MHZ + UHF_CHANNEL_MHZ / 2.0
    }

    /// Iterator over all UHF channels in index order.
    pub fn all() -> impl Iterator<Item = UhfChannel> {
        (0u8..).take(NUM_UHF_CHANNELS).map(Self)
    }
}

/// WhiteFi channel widths supported by the prototype hardware.
///
/// The KNOWS platform transmits 5, 10 or 20 MHz signals by scaling the
/// Wi-Fi card's PLL clock (Section 3, "Variable Channel Widths").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 5 MHz — fits inside a single 6 MHz UHF channel.
    W5,
    /// 10 MHz — spans 3 UHF channels.
    W10,
    /// 20 MHz — spans 5 UHF channels.
    W20,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 3] = [Width::W5, Width::W10, Width::W20];

    /// All widths, widest first (the order J-SIFT scans them).
    pub const WIDEST_FIRST: [Width; 3] = [Width::W20, Width::W10, Width::W5];

    /// Width in MHz.
    pub fn mhz(self) -> f64 {
        match self {
            Width::W5 => 5.0,
            Width::W10 => 10.0,
            Width::W20 => 20.0,
        }
    }

    /// Number of UHF channels a channel of this width spans.
    pub fn span(self) -> usize {
        match self {
            Width::W5 => 1,
            Width::W10 => 3,
            Width::W20 => 5,
        }
    }

    /// Half-span in UHF channels on each side of the centre channel.
    pub fn half_span(self) -> usize {
        self.span() / 2
    }

    /// Timing scale factor relative to the 20 MHz reference PHY.
    ///
    /// Halving the channel width doubles symbol period, SIFS, slot time and
    /// packet durations, and halves the effective data rate (Chandra et
    /// al., SIGCOMM 2008 — reference [15] of the paper).
    pub fn scale(self) -> u32 {
        match self {
            Width::W5 => 4,
            Width::W10 => 2,
            Width::W20 => 1,
        }
    }

    /// Optimal capacity of this width relative to an empty 5 MHz channel —
    /// the `W / 5 MHz` factor of the MCham metric (Equation 2).
    pub fn capacity_factor(self) -> f64 {
        self.mhz() / 5.0
    }

    /// Number of valid centre positions for this width over the full band
    /// (30 for 5 MHz, 28 for 10 MHz, 26 for 20 MHz; footnote 3 of §4.2).
    pub fn num_positions(self) -> usize {
        NUM_UHF_CHANNELS - 2 * self.half_span()
    }
}

/// A WhiteFi channel `(F, W)`: centre UHF channel plus width.
///
/// Invariant: the whole span fits inside the band, i.e.
/// `half_span <= center.index() < NUM_UHF_CHANNELS - half_span`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WfChannel {
    center: UhfChannel,
    width: Width,
}

impl WfChannel {
    /// Creates a channel, returning `None` if the span would extend past
    /// either band edge.
    pub fn new(center: UhfChannel, width: Width) -> Option<Self> {
        let h = width.half_span();
        let idx = center.index();
        (idx >= h && idx + h < NUM_UHF_CHANNELS).then_some(Self { center, width })
    }

    /// Creates a channel from a raw centre index and width.
    ///
    /// # Panics
    /// If the span does not fit in the band.
    pub fn from_parts(center_index: usize, width: Width) -> Self {
        Self::new(UhfChannel::from_index(center_index), width)
            // lint:allow(unwrap, the panic is this constructor's documented contract; `new` is the fallible form)
            .expect("WhiteFi channel span exceeds band edge")
    }

    /// The centre UHF channel.
    pub fn center(self) -> UhfChannel {
        self.center
    }

    /// The channel width.
    pub fn width(self) -> Width {
        self.width
    }

    /// Centre frequency in MHz.
    pub fn center_mhz(self) -> f64 {
        self.center.center_mhz()
    }

    /// Index of the lowest spanned UHF channel.
    pub fn low_index(self) -> usize {
        self.center.index() - self.width.half_span()
    }

    /// Index of the highest spanned UHF channel (inclusive).
    pub fn high_index(self) -> usize {
        self.center.index() + self.width.half_span()
    }

    /// Iterator over the UHF channels spanned by this channel.
    pub fn spanned(self) -> impl Iterator<Item = UhfChannel> {
        (self.low_index()..=self.high_index()).map(UhfChannel::from_index)
    }

    /// Whether this channel and `other` share at least one UHF channel.
    ///
    /// Overlapping channels of different widths contend with each other
    /// (§5.4, carrier-sense modification), so this test drives both the
    /// MAC's carrier sensing and the MCham background-traffic accounting.
    pub fn overlaps(self, other: WfChannel) -> bool {
        self.low_index() <= other.high_index() && other.low_index() <= self.high_index()
    }

    /// Whether this channel spans the given UHF channel.
    pub fn contains(self, uhf: UhfChannel) -> bool {
        (self.low_index()..=self.high_index()).contains(&uhf.index())
    }

    /// All 84 WhiteFi channels over the full band (30 + 28 + 26).
    pub fn all() -> impl Iterator<Item = WfChannel> {
        Width::ALL.iter().flat_map(|&w| {
            let h = w.half_span();
            (h..NUM_UHF_CHANNELS - h).map(move |i| WfChannel::from_parts(i, w))
        })
    }
}

impl std::fmt::Display for WfChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(ch{}, {}MHz)",
            self.center.tv_channel(),
            self.width.mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uhf_channel_indices_round_trip() {
        for ch in UhfChannel::all() {
            assert_eq!(UhfChannel::from_index(ch.index()), ch);
        }
        assert!(UhfChannel::new(NUM_UHF_CHANNELS).is_none());
    }

    #[test]
    fn tv_channel_numbering_skips_37() {
        let tvs: Vec<u32> = UhfChannel::all().map(|c| c.tv_channel()).collect();
        assert_eq!(tvs.first(), Some(&21));
        assert_eq!(tvs.last(), Some(&51));
        assert!(!tvs.contains(&37));
        assert_eq!(tvs.len(), 30);
    }

    #[test]
    fn band_edges_match_fcc_ruling() {
        // Channel 21 spans 512–518 MHz; channel 51 ends at 698 MHz.
        let first = UhfChannel::from_index(0);
        assert!((first.center_mhz() - 515.0).abs() < 1e-9);
        let last = UhfChannel::from_index(29);
        assert!((last.center_mhz() - 695.0).abs() < 1e-9);
    }

    #[test]
    fn width_spans() {
        assert_eq!(Width::W5.span(), 1);
        assert_eq!(Width::W10.span(), 3);
        assert_eq!(Width::W20.span(), 5);
        assert_eq!(Width::W5.scale(), 4);
        assert_eq!(Width::W20.scale(), 1);
    }

    #[test]
    fn channel_position_counts_match_paper_footnote() {
        // "30 5MHz WhiteFi channels, 28 10MHz channels, and 26 20MHz
        // channels" — footnote 3 of Section 4.2.
        assert_eq!(Width::W5.num_positions(), 30);
        assert_eq!(Width::W10.num_positions(), 28);
        assert_eq!(Width::W20.num_positions(), 26);
        assert_eq!(WfChannel::all().count(), 84);
    }

    #[test]
    fn spanned_channels_are_contiguous_and_centered() {
        let c = WfChannel::from_parts(10, Width::W20);
        let spanned: Vec<usize> = c.spanned().map(|u| u.index()).collect();
        assert_eq!(spanned, vec![8, 9, 10, 11, 12]);
        assert_eq!(c.low_index(), 8);
        assert_eq!(c.high_index(), 12);
    }

    #[test]
    fn edge_channels_rejected() {
        assert!(WfChannel::new(UhfChannel::from_index(0), Width::W10).is_none());
        assert!(WfChannel::new(UhfChannel::from_index(1), Width::W20).is_none());
        assert!(WfChannel::new(UhfChannel::from_index(29), Width::W10).is_none());
        assert!(WfChannel::new(UhfChannel::from_index(0), Width::W5).is_some());
        assert!(WfChannel::new(UhfChannel::from_index(2), Width::W20).is_some());
    }

    #[test]
    fn overlap_is_symmetric_and_matches_span_intersection() {
        let a = WfChannel::from_parts(5, Width::W20); // spans 3..=7
        let b = WfChannel::from_parts(8, Width::W10); // spans 7..=9
        let c = WfChannel::from_parts(10, Width::W5); // spans 10..=10
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(b.overlaps(b));
        assert!(!c.overlaps(a));
    }

    #[test]
    fn contains_matches_spanned() {
        let c = WfChannel::from_parts(4, Width::W10);
        for u in UhfChannel::all() {
            assert_eq!(c.contains(u), c.spanned().any(|s| s == u));
        }
    }

    #[test]
    fn display_formats_tv_channel() {
        let c = WfChannel::from_parts(7, Width::W10); // index 7 → TV ch 28
        assert_eq!(c.to_string(), "(ch28, 10MHz)");
    }
}
