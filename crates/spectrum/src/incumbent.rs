//! Incumbent (primary user) models: TV stations and wireless microphones.
//!
//! TV broadcasts are the largest incumbent use of the band and are static
//! on the timescales WhiteFi cares about; wireless microphones "can be
//! turned on at any time" (§2.3) and are the source of the temporal
//! variation that motivates the chirping disconnection protocol.
//!
//! Times throughout are integer nanoseconds of simulated time, matching the
//! timebase of the `whitefi-mac` event simulator.

use crate::channel::UhfChannel;
use crate::map::SpectrumMap;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Nanoseconds of simulated time.
pub type Nanos = u64;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A TV station occupying one UHF channel (statically, for the lifetime of
/// a simulation).
///
/// Real stations are detected down to −114 dBm by the KNOWS scanner —
/// 30 dB below the −85 dBm decode threshold, to cover the hidden-terminal
/// case (§3). We carry the received power so detector models can apply the
/// same margins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TvStation {
    /// The occupied UHF channel.
    pub channel: UhfChannel,
    /// Received signal power at the measuring node, in dBm.
    pub power_dbm: f64,
}

impl TvStation {
    /// A station received at a typical in-market strength.
    pub fn strong(channel: UhfChannel) -> Self {
        Self {
            channel,
            power_dbm: -60.0,
        }
    }

    /// A fringe station, below the decode threshold but above the FCC
    /// detection requirement — the hidden-terminal case the 30 dB buffer
    /// exists for.
    pub fn fringe(channel: UhfChannel) -> Self {
        Self {
            channel,
            power_dbm: -100.0,
        }
    }

    /// Whether a scanner with the given sensitivity (dBm) detects this
    /// station. The KNOWS scanner detects TV at −114 dBm (§3).
    pub fn detectable_at(&self, sensitivity_dbm: f64) -> bool {
        self.power_dbm >= sensitivity_dbm
    }
}

/// Activity interval of a wireless microphone: on from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicActivity {
    /// When the mic switches on.
    pub start: Nanos,
    /// When the mic switches off (exclusive).
    pub end: Nanos,
}

impl MicActivity {
    /// Whether the mic is on at time `t`.
    pub fn active_at(&self, t: Nanos) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// Duration of the activity in nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// On/off schedule for one wireless microphone on one channel.
///
/// Mic usage is "highly unpredictable" (§2.3): rooms are over-provisioned
/// with mics on many channels and operators pick a few arbitrarily. We
/// model a schedule as an explicit, sorted, non-overlapping list of
/// activity intervals, either scripted or sampled from exponential on/off
/// holding times.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MicSchedule {
    intervals: Vec<MicActivity>,
}

impl MicSchedule {
    /// An always-off schedule.
    pub fn silent() -> Self {
        Self::default()
    }

    /// A scripted schedule from explicit intervals.
    ///
    /// # Panics
    /// If intervals are unsorted or overlap.
    pub fn scripted(intervals: Vec<MicActivity>) -> Self {
        for w in intervals.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "mic intervals must be sorted and non-overlapping"
            );
        }
        Self { intervals }
    }

    /// Samples a random schedule over `[0, horizon)` with exponential off
    /// periods (mean `mean_off_s` seconds) and on periods (mean
    /// `mean_on_s`).
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        horizon: Nanos,
        mean_off_s: f64,
        mean_on_s: f64,
    ) -> Self {
        // The draw is positive (u < 1 so ln(u) < 0) and truncating the
        // sub-nanosecond remainder is the intended quantization.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let exp = |rng: &mut R, mean: f64| -> Nanos {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            ((-mean * u.ln()) * NANOS_PER_SEC as f64) as Nanos
        };
        let mut t: Nanos = 0;
        let mut intervals = Vec::new();
        loop {
            t = t.saturating_add(exp(rng, mean_off_s));
            if t >= horizon {
                break;
            }
            let end = (t.saturating_add(exp(rng, mean_on_s))).min(horizon);
            intervals.push(MicActivity { start: t, end });
            t = end;
        }
        Self { intervals }
    }

    /// Whether the mic is on at time `t`.
    pub fn active_at(&self, t: Nanos) -> bool {
        // Binary search over sorted intervals.
        self.intervals
            .binary_search_by(|iv| {
                if t < iv.start {
                    std::cmp::Ordering::Greater
                } else if t >= iv.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The next on/off transition strictly after `t`, if any. Used by the
    /// simulator to schedule incumbent-appearance events.
    pub fn next_transition(&self, t: Nanos) -> Option<Nanos> {
        self.intervals
            .iter()
            .flat_map(|iv| [iv.start, iv.end])
            .find(|&edge| edge > t)
    }

    /// The scripted or sampled intervals.
    pub fn intervals(&self) -> &[MicActivity] {
        &self.intervals
    }

    /// Total on-time over the schedule.
    pub fn total_on(&self) -> Nanos {
        self.intervals.iter().map(|iv| iv.duration()).sum()
    }
}

/// A wireless microphone bound to a channel with an activity schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirelessMic {
    /// The UHF channel the mic transmits on.
    pub channel: UhfChannel,
    /// When the mic is on.
    pub schedule: MicSchedule,
    /// Received power at the measuring node, dBm. KNOWS detects mics at
    /// −110 dBm (§3).
    pub power_dbm: f64,
}

impl WirelessMic {
    /// A mic at lecture-room strength with the given schedule.
    pub fn new(channel: UhfChannel, schedule: MicSchedule) -> Self {
        Self {
            channel,
            schedule,
            power_dbm: -50.0,
        }
    }

    /// Whether this mic is transmitting at time `t`.
    pub fn active_at(&self, t: Nanos) -> bool {
        self.schedule.active_at(t)
    }
}

/// The incumbent environment at one node: static TV stations plus mics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IncumbentSet {
    /// TV stations received at this node.
    pub tv: Vec<TvStation>,
    /// Wireless microphones audible at this node.
    pub mics: Vec<WirelessMic>,
}

impl IncumbentSet {
    /// The spectrum map observed at time `t`: a channel is occupied if a
    /// detectable TV station or an active mic is on it.
    pub fn map_at(&self, t: Nanos, sensitivity_dbm: f64) -> SpectrumMap {
        let mut m = SpectrumMap::all_free();
        for s in &self.tv {
            if s.detectable_at(sensitivity_dbm) {
                m.set_occupied(s.channel);
            }
        }
        for mic in &self.mics {
            if mic.active_at(t) && mic.power_dbm >= sensitivity_dbm {
                m.set_occupied(mic.channel);
            }
        }
        m
    }

    /// Next time after `t` at which the observed map may change.
    pub fn next_change(&self, t: Nanos) -> Option<Nanos> {
        self.mics
            .iter()
            .filter_map(|m| m.schedule.next_transition(t))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const SEC: Nanos = NANOS_PER_SEC;

    #[test]
    fn tv_detection_margins_match_knows() {
        let fringe = TvStation::fringe(UhfChannel::from_index(4));
        // Scanner at −114 dBm sees it; a plain transceiver at −85 dBm does
        // not — the hidden-terminal case.
        assert!(fringe.detectable_at(-114.0));
        assert!(!fringe.detectable_at(-85.0));
    }

    #[test]
    fn scripted_schedule_activity() {
        let s = MicSchedule::scripted(vec![
            MicActivity {
                start: SEC,
                end: 3 * SEC,
            },
            MicActivity {
                start: 5 * SEC,
                end: 6 * SEC,
            },
        ]);
        assert!(!s.active_at(0));
        assert!(s.active_at(SEC));
        assert!(s.active_at(2 * SEC));
        assert!(!s.active_at(3 * SEC));
        assert!(s.active_at(5 * SEC + 1));
        assert!(!s.active_at(7 * SEC));
        assert_eq!(s.total_on(), 3 * SEC);
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_intervals_rejected() {
        MicSchedule::scripted(vec![
            MicActivity {
                start: 0,
                end: 2 * SEC,
            },
            MicActivity {
                start: SEC,
                end: 3 * SEC,
            },
        ]);
    }

    #[test]
    fn next_transition_walks_edges() {
        let s = MicSchedule::scripted(vec![MicActivity {
            start: SEC,
            end: 3 * SEC,
        }]);
        assert_eq!(s.next_transition(0), Some(SEC));
        assert_eq!(s.next_transition(SEC), Some(3 * SEC));
        assert_eq!(s.next_transition(3 * SEC), None);
    }

    #[test]
    fn sampled_schedule_is_sorted_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = MicSchedule::sample(&mut rng, 3600 * SEC, 300.0, 60.0);
        assert!(!s.intervals().is_empty());
        for w in s.intervals().windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert!(s.intervals().last().unwrap().end <= 3600 * SEC);
    }

    #[test]
    fn sampled_on_fraction_near_expectation() {
        // mean_off 300 s, mean_on 60 s → on fraction ≈ 60/360 ≈ 0.167.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let horizon = 200_000 * SEC;
        let s = MicSchedule::sample(&mut rng, horizon, 300.0, 60.0);
        let frac = s.total_on() as f64 / horizon as f64;
        assert!((frac - 1.0 / 6.0).abs() < 0.03, "on fraction {frac}");
    }

    #[test]
    fn incumbent_set_map_reflects_mic_activity() {
        let mut set = IncumbentSet::default();
        set.tv.push(TvStation::strong(UhfChannel::from_index(2)));
        set.mics.push(WirelessMic::new(
            UhfChannel::from_index(9),
            MicSchedule::scripted(vec![MicActivity {
                start: 10 * SEC,
                end: 20 * SEC,
            }]),
        ));
        let before = set.map_at(0, -114.0);
        assert!(before.is_occupied(UhfChannel::from_index(2)));
        assert!(before.is_free(UhfChannel::from_index(9)));
        let during = set.map_at(15 * SEC, -114.0);
        assert!(during.is_occupied(UhfChannel::from_index(9)));
        assert_eq!(set.next_change(0), Some(10 * SEC));
        assert_eq!(set.next_change(10 * SEC), Some(20 * SEC));
    }
}
