//! Contiguous free-spectrum fragments and fragmentation statistics.
//!
//! "UHF white spaces are fragmented due to the presence of incumbents. The
//! size of each fragment can vary from 1 channel to several channels"
//! (§2.2). Figure 2 of the paper is a histogram of contiguous fragment
//! widths across urban, suburban and rural locales; [`fragment_histogram`]
//! computes the same statistic over a set of spectrum maps.

use crate::channel::{UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};
use crate::map::SpectrumMap;
use serde::{Deserialize, Serialize};

/// A maximal run of contiguous incumbent-free UHF channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fragment {
    start: usize,
    len: usize,
}

impl Fragment {
    /// Creates a fragment starting at UHF index `start` spanning `len`
    /// channels.
    ///
    /// # Panics
    /// If the fragment extends past the band edge or is empty.
    pub fn new(start: usize, len: usize) -> Self {
        assert!(len >= 1, "fragment must span at least one channel");
        assert!(start + len <= NUM_UHF_CHANNELS, "fragment exceeds band");
        Self { start, len }
    }

    /// Index of the first channel in the fragment.
    pub fn start(self) -> usize {
        self.start
    }

    /// Number of contiguous channels.
    pub fn len(self) -> usize {
        self.len
    }

    /// Always false; fragments are non-empty by construction.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Total bandwidth of the fragment in MHz (6 MHz per channel).
    pub fn mhz(self) -> f64 {
        self.len as f64 * 6.0
    }

    /// Iterator over the channels in the fragment.
    pub fn channels(self) -> impl Iterator<Item = UhfChannel> {
        (self.start..self.start + self.len).map(UhfChannel::from_index)
    }

    /// Whether the fragment contains the given channel.
    pub fn contains(self, ch: UhfChannel) -> bool {
        (self.start..self.start + self.len).contains(&ch.index())
    }

    /// The widest WhiteFi channel width that fits inside this fragment.
    ///
    /// Returns `None` only in the (impossible by construction) zero-length
    /// case; a 1–2 channel fragment fits 5 MHz, 3–4 fits 10 MHz, ≥ 5 fits
    /// 20 MHz.
    pub fn widest_fitting_width(self) -> Option<Width> {
        Width::WIDEST_FIRST
            .iter()
            .copied()
            .find(|w| w.span() <= self.len)
    }

    /// All WhiteFi channels whose span lies entirely within the fragment.
    pub fn channels_within(self) -> Vec<WfChannel> {
        let mut out = Vec::new();
        for w in Width::ALL {
            let span = w.span();
            if span > self.len {
                continue;
            }
            let h = w.half_span();
            for c in self.start + h..=self.start + self.len - 1 - h {
                out.push(WfChannel::from_parts(c, w));
            }
        }
        out
    }
}

/// A histogram of contiguous fragment widths over a collection of spectrum
/// maps — one count per possible width 1..=30 (index 0 unused).
///
/// This reproduces the statistic behind Figure 2: for each map the
/// fragments are extracted and each fragment increments the bucket of its
/// width.
pub fn fragment_histogram<'a, I>(maps: I) -> [usize; NUM_UHF_CHANNELS + 1]
where
    I: IntoIterator<Item = &'a SpectrumMap>,
{
    let mut hist = [0usize; NUM_UHF_CHANNELS + 1];
    for m in maps {
        for f in m.fragments() {
            hist[f.len()] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_accessors() {
        let f = Fragment::new(4, 3);
        assert_eq!(f.start(), 4);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert!((f.mhz() - 18.0).abs() < 1e-12);
        let chans: Vec<usize> = f.channels().map(|c| c.index()).collect();
        assert_eq!(chans, vec![4, 5, 6]);
        assert!(f.contains(UhfChannel::from_index(5)));
        assert!(!f.contains(UhfChannel::from_index(7)));
    }

    #[test]
    #[should_panic(expected = "fragment exceeds band")]
    fn fragment_past_band_edge_panics() {
        let _ = Fragment::new(28, 5);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_fragment_panics() {
        let _ = Fragment::new(0, 0);
    }

    #[test]
    fn widest_fitting_width_thresholds() {
        assert_eq!(Fragment::new(0, 1).widest_fitting_width(), Some(Width::W5));
        assert_eq!(Fragment::new(0, 2).widest_fitting_width(), Some(Width::W5));
        assert_eq!(Fragment::new(0, 3).widest_fitting_width(), Some(Width::W10));
        assert_eq!(Fragment::new(0, 4).widest_fitting_width(), Some(Width::W10));
        assert_eq!(Fragment::new(0, 5).widest_fitting_width(), Some(Width::W20));
        assert_eq!(
            Fragment::new(0, 16).widest_fitting_width(),
            Some(Width::W20)
        );
    }

    #[test]
    fn channels_within_counts() {
        // Fragment of 5: 5 five-MHz, 3 ten-MHz, 1 twenty-MHz channels.
        let f = Fragment::new(10, 5);
        let within = f.channels_within();
        let count = |w: Width| within.iter().filter(|c| c.width() == w).count();
        assert_eq!(count(Width::W5), 5);
        assert_eq!(count(Width::W10), 3);
        assert_eq!(count(Width::W20), 1);
        // Everything admitted by the corresponding map.
        let mut map = SpectrumMap::all_occupied();
        for c in f.channels() {
            map.set_free(c);
        }
        for wf in &within {
            assert!(map.admits(*wf));
        }
        assert_eq!(map.available_channels().len(), within.len());
    }

    #[test]
    fn histogram_counts_fragments() {
        let a = SpectrumMap::from_free([0, 1, 2, 10]); // fragments 3, 1
        let b = SpectrumMap::from_free([5, 6, 7]); // fragment 3
        let h = fragment_histogram([&a, &b]);
        assert_eq!(h[1], 1);
        assert_eq!(h[3], 2);
        assert_eq!(h.iter().sum::<usize>(), 3);
    }
}
