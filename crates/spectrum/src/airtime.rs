//! Airtime utilization vectors and the per-channel share estimate ρ.
//!
//! "Each node also maintains an *airtime utilization vector* `{A_0, …,
//! A_k}`, where `A_i` represents an estimate of the airtime utilization on
//! each UHF channel" (§4.1). Along with the busy fraction the node
//! estimates `B_i`, the number of other access points operating on channel
//! `i`, and combines them into the expected share
//!
//! ```text
//! ρ_n(c) = max(1 − A_c, 1 / (B_c + 1))          (Equation 1)
//! ```
//!
//! The intuition: a node can expect at least the residual airtime `1 − A`,
//! but even on a saturated channel CSMA gives it a fair `1/(B+1)` share
//! once it contends with the `B` other APs.

use crate::channel::{UhfChannel, NUM_UHF_CHANNELS};
use serde::{Deserialize, Serialize};

/// Measured load of a single UHF channel as seen by one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelLoad {
    /// Busy airtime fraction `A ∈ [0, 1]`.
    pub busy: f64,
    /// Estimated number of other (interfering) APs on the channel, `B`.
    pub aps: u32,
}

impl Default for ChannelLoad {
    fn default() -> Self {
        Self { busy: 0.0, aps: 0 }
    }
}

impl ChannelLoad {
    /// An idle channel: no busy airtime, no interfering APs.
    pub const IDLE: ChannelLoad = ChannelLoad { busy: 0.0, aps: 0 };

    /// Creates a load, clamping the busy fraction to `[0, 1]`.
    pub fn new(busy: f64, aps: u32) -> Self {
        Self {
            busy: busy.clamp(0.0, 1.0),
            aps,
        }
    }

    /// Expected share ρ of this channel (Equation 1).
    pub fn rho(self) -> f64 {
        (1.0 - self.busy).max(1.0 / (f64::from(self.aps) + 1.0))
    }
}

/// Per-UHF-channel airtime measurements for all 30 channels.
///
/// For incumbent-occupied channels the paper leaves `A_i` undefined; we
/// store loads for every channel and rely on the spectrum map to exclude
/// occupied ones from candidate enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirtimeVector {
    loads: [ChannelLoad; NUM_UHF_CHANNELS],
}

impl Default for AirtimeVector {
    fn default() -> Self {
        Self::idle()
    }
}

impl AirtimeVector {
    /// A vector with every channel idle.
    pub fn idle() -> Self {
        Self {
            loads: [ChannelLoad::IDLE; NUM_UHF_CHANNELS],
        }
    }

    /// Builds a vector from a function of the channel.
    pub fn from_fn(mut f: impl FnMut(UhfChannel) -> ChannelLoad) -> Self {
        let mut v = Self::idle();
        for ch in UhfChannel::all() {
            v.loads[ch.index()] = f(ch);
        }
        v
    }

    /// The measured load of `ch`.
    pub fn load(&self, ch: UhfChannel) -> ChannelLoad {
        self.loads[ch.index()]
    }

    /// Sets the measured load of `ch`.
    pub fn set_load(&mut self, ch: UhfChannel, load: ChannelLoad) {
        self.loads[ch.index()] = load;
    }

    /// Expected share ρ of `ch` (Equation 1).
    pub fn rho(&self, ch: UhfChannel) -> f64 {
        self.load(ch).rho()
    }

    /// Iterator over `(channel, load)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UhfChannel, ChannelLoad)> + '_ {
        UhfChannel::all().map(move |c| (c, self.load(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_of_idle_channel_is_one() {
        assert_eq!(ChannelLoad::IDLE.rho(), 1.0);
    }

    #[test]
    fn rho_takes_residual_airtime_when_lightly_loaded() {
        // Busy 0.2 with one AP: residual 0.8 beats fair share 0.5.
        let l = ChannelLoad::new(0.2, 1);
        assert!((l.rho() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rho_takes_fair_share_when_saturated() {
        // Busy 1.0 with one AP: residual 0 loses to fair share 0.5.
        let l = ChannelLoad::new(1.0, 1);
        assert!((l.rho() - 0.5).abs() < 1e-12);
        // Saturated with three APs: fair share 0.25.
        let l = ChannelLoad::new(1.0, 3);
        assert!((l.rho() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rho_matches_paper_example_2_components() {
        // Example 2 of §4.1: one channel with 1 AP at airtime 0.9 gives
        // ρ = max(0.1, 0.5) = 0.5; one with 1 AP at 0.2 gives
        // ρ = max(0.8, 0.5) = 0.8.
        assert!((ChannelLoad::new(0.9, 1).rho() - 0.5).abs() < 1e-12);
        assert!((ChannelLoad::new(0.2, 1).rho() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn busy_fraction_is_clamped() {
        assert_eq!(ChannelLoad::new(1.7, 0).busy, 1.0);
        assert_eq!(ChannelLoad::new(-0.3, 0).busy, 0.0);
    }

    #[test]
    fn vector_set_and_get() {
        let mut v = AirtimeVector::idle();
        let ch = UhfChannel::from_index(12);
        v.set_load(ch, ChannelLoad::new(0.4, 2));
        assert_eq!(v.load(ch).aps, 2);
        assert!((v.rho(ch) - 0.6).abs() < 1e-12);
        // Other channels untouched.
        assert_eq!(v.load(UhfChannel::from_index(0)), ChannelLoad::IDLE);
    }

    #[test]
    fn from_fn_visits_every_channel() {
        let v = AirtimeVector::from_fn(|c| ChannelLoad::new(c.index() as f64 / 30.0, 0));
        assert_eq!(v.iter().count(), NUM_UHF_CHANNELS);
        assert!((v.load(UhfChannel::from_index(15)).busy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_never_below_fair_share_nor_above_one() {
        for aps in 0..5 {
            for b in [0.0, 0.3, 0.7, 1.0] {
                let r = ChannelLoad::new(b, aps).rho();
                assert!(r <= 1.0 + 1e-12);
                assert!(r >= 1.0 / (aps as f64 + 1.0) - 1e-12);
            }
        }
    }
}
