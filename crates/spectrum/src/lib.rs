//! UHF white-space band model for the WhiteFi reproduction.
//!
//! This crate captures everything the paper's Section 2 ("Characterizing
//! White Spaces") and Section 4 ("Preliminaries") say about the spectrum
//! itself, independent of any radio or MAC:
//!
//! * the 30 usable 6 MHz **UHF channels** (TV channels 21–51, excluding 37),
//! * variable-width **WhiteFi channels** `(F, W)` with `W ∈ {5, 10, 20} MHz`,
//! * per-node **spectrum maps** (incumbent occupancy bit-vectors) and
//!   **airtime vectors** (busy fraction + interfering-AP count per channel),
//! * **fragmentation** analysis (contiguous free runs),
//! * **incumbent** models: TV stations (static) and wireless microphones
//!   (abrupt temporal variation),
//! * a synthetic **geography** generator reproducing the urban / suburban /
//!   rural fragmentation regimes of Figure 2, and
//! * the **spatial variation** models behind Section 2.1 (pairwise Hamming
//!   distance across buildings) and Figure 12 (random map flips).
//!
//! The crate is deterministic: all randomness flows through caller-provided
//! seeded RNGs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airtime;
pub mod channel;
pub mod fragment;
pub mod geodb;
pub mod geography;
pub mod incumbent;
pub mod map;
pub mod spatial;

pub use airtime::{AirtimeVector, ChannelLoad};
pub use channel::{UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};
pub use fragment::{fragment_histogram, Fragment};
pub use geodb::{contour_radius_km, GeoDatabase, Location, StationRecord};
pub use geography::{Locale, LocaleClass};
pub use incumbent::{IncumbentSet, MicActivity, MicSchedule, Nanos, TvStation, WirelessMic};
pub use map::SpectrumMap;
pub use spatial::{flip_map, median, pairwise_hamming, BuildingSampler};
