//! Synthetic locale generator: urban / suburban / rural spectrum maps.
//!
//! The paper estimates post-DTV-transition fragmentation from the TV Fool
//! tower database for "urban (top 10 populated cities), suburban (10
//! fastest growing suburbs …) and rural (10 random towns … with a
//! population less than 6000)" (§2.2, Figure 2). The database is
//! proprietary, so we substitute a parametric generator whose occupied
//! channel counts are calibrated to reproduce Figure 2's regimes:
//!
//! * every class has at least some locale with a ≥ 4-channel (24 MHz)
//!   fragment,
//! * rural locales exhibit fragments of up to 16 contiguous channels,
//! * urban locales are dominated by 1–4 channel fragments.
//!
//! Station channels are drawn without replacement with light clustering
//! (real stations congregate near each other in frequency due to
//! adjacent-channel siting rules), which slightly fattens the tails of the
//! fragment distribution relative to uniform placement.

use crate::channel::{UhfChannel, NUM_UHF_CHANNELS};
use crate::map::SpectrumMap;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Population-density class of a locale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocaleClass {
    /// Top-10-city density: most of the band occupied.
    Urban,
    /// Fast-growing-suburb density.
    Suburban,
    /// Small-town density: only a handful of stations.
    Rural,
}

impl LocaleClass {
    /// All classes in the order Figure 2 presents them.
    pub const ALL: [LocaleClass; 3] = [
        LocaleClass::Urban,
        LocaleClass::Suburban,
        LocaleClass::Rural,
    ];

    /// Inclusive range of occupied-channel counts for this class.
    ///
    /// Calibration targets (see module docs): urban locales keep roughly a
    /// third of the band free in scattered slivers; rural locales keep most
    /// of it free in long runs.
    pub fn occupied_range(self) -> (usize, usize) {
        match self {
            LocaleClass::Urban => (15, 20),
            LocaleClass::Suburban => (9, 14),
            LocaleClass::Rural => (3, 7),
        }
    }

    /// Probability that a new station is placed adjacent to an existing one
    /// rather than uniformly.
    fn clustering(self) -> f64 {
        match self {
            LocaleClass::Urban => 0.30,
            LocaleClass::Suburban => 0.40,
            LocaleClass::Rural => 0.50,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            LocaleClass::Urban => "urban",
            LocaleClass::Suburban => "suburban",
            LocaleClass::Rural => "rural",
        }
    }
}

/// One synthetic locale: a class plus its baseline TV-occupancy map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Locale {
    /// The density class the locale was sampled from.
    pub class: LocaleClass,
    /// Incumbent occupancy from TV stations alone.
    pub map: SpectrumMap,
}

impl Locale {
    /// Samples one locale of the given class.
    pub fn sample<R: Rng + ?Sized>(class: LocaleClass, rng: &mut R) -> Self {
        let (lo, hi) = class.occupied_range();
        let n = rng.gen_range(lo..=hi);
        let mut map = SpectrumMap::all_free();
        let mut occupied: Vec<usize> = Vec::with_capacity(n);
        while occupied.len() < n {
            let idx = if !occupied.is_empty() && rng.gen_bool(class.clustering()) {
                // Place adjacent to an existing station (clamped to band).
                let base = occupied[rng.gen_range(0..occupied.len())];
                let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                let clamped = (base as i64 + delta).clamp(0, NUM_UHF_CHANNELS as i64 - 1);
                usize::try_from(clamped).unwrap_or(0) // clamp bounds it to [0, 29]
            } else {
                rng.gen_range(0..NUM_UHF_CHANNELS)
            };
            if !occupied.contains(&idx) {
                occupied.push(idx);
                map.set_occupied(UhfChannel::from_index(idx));
            }
        }
        Self { class, map }
    }

    /// Samples `count` locales of the given class (Figure 2 uses 10 per
    /// class).
    pub fn sample_many<R: Rng + ?Sized>(
        class: LocaleClass,
        count: usize,
        rng: &mut R,
    ) -> Vec<Self> {
        (0..count).map(|_| Self::sample(class, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_histogram;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn maps(class: LocaleClass, n: usize, seed: u64) -> Vec<SpectrumMap> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Locale::sample_many(class, n, &mut rng)
            .into_iter()
            .map(|l| l.map)
            .collect()
    }

    #[test]
    fn occupied_counts_respect_class_ranges() {
        for class in LocaleClass::ALL {
            let (lo, hi) = class.occupied_range();
            for m in maps(class, 50, 1) {
                assert!((lo..=hi).contains(&m.occupied_count()), "{class:?}");
            }
        }
    }

    #[test]
    fn rural_has_wide_fragments_urban_does_not() {
        // Figure 2: rural fragments reach up to 16 channels; urban maps
        // are shattered into small pieces.
        let rural = maps(LocaleClass::Rural, 10, 2);
        let urban = maps(LocaleClass::Urban, 10, 3);
        let rural_max = rural.iter().map(|m| m.widest_fragment()).max().unwrap();
        let urban_max = urban.iter().map(|m| m.widest_fragment()).max().unwrap();
        assert!(rural_max >= 10, "rural max fragment {rural_max}");
        assert!(urban_max <= 9, "urban max fragment {urban_max}");
        assert!(rural_max > urban_max);
    }

    #[test]
    fn every_class_reaches_a_24mhz_fragment_somewhere() {
        // "in all 3 settings there is at least one locale in which there is
        // a fragment of 4 contiguous channels available" (§2.2).
        for (seed, class) in LocaleClass::ALL.iter().enumerate() {
            let ms = maps(*class, 10, 100 + seed as u64);
            let hist = fragment_histogram(ms.iter());
            let ge4: usize = hist[4..].iter().sum();
            assert!(ge4 >= 1, "{class:?} produced no >=4-channel fragment");
        }
    }

    #[test]
    fn classes_order_by_mean_widest_fragment() {
        let mean_widest = |class| {
            let ms = maps(class, 40, 9);
            ms.iter().map(|m| m.widest_fragment()).sum::<usize>() as f64 / ms.len() as f64
        };
        let u = mean_widest(LocaleClass::Urban);
        let s = mean_widest(LocaleClass::Suburban);
        let r = mean_widest(LocaleClass::Rural);
        assert!(u < s && s < r, "urban {u} suburban {s} rural {r}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let a = maps(LocaleClass::Suburban, 5, 77);
        let b = maps(LocaleClass::Suburban, 5, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn labels() {
        assert_eq!(LocaleClass::Urban.label(), "urban");
        assert_eq!(LocaleClass::Rural.label(), "rural");
    }
}
