//! Structured experiment output: rows of named columns, rendered as an
//! aligned text table and serializable to JSON.

use serde::Serialize;
use serde_json::{json, Map, Value};

/// The result of one experiment run.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentReport {
    /// Experiment id (e.g. "fig11").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Ordered column names.
    pub columns: Vec<String>,
    /// Data rows (each a JSON object keyed by column name).
    pub rows: Vec<Map<String, Value>>,
    /// Free-form observations (shape checks, paper comparison notes).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// An empty report with the given id/title and columns.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row from `(column, value)` pairs; columns not in the
    /// header are appended to it.
    pub fn push_row(&mut self, pairs: &[(&str, Value)]) {
        let mut row = Map::new();
        for (k, v) in pairs {
            if !self.columns.iter().any(|c| c == k) {
                self.columns.push(k.to_string());
            }
            row.insert(k.to_string(), v.clone());
        }
        self.rows.push(row);
    }

    /// Appends a row from owned `(column, value)` pairs — for columns
    /// whose labels are built at runtime (rate grids and the like).
    /// `push_row` needs `&'static str` keys; routing a formatted label
    /// through `Box::leak` to satisfy that lifetime leaks one allocation
    /// per row for the rest of the process, which adds up over a long
    /// `all` run.
    pub fn push_row_owned(&mut self, pairs: Vec<(String, Value)>) {
        let mut row = Map::new();
        for (k, v) in pairs {
            if !self.columns.contains(&k) {
                self.columns.push(k.clone());
            }
            row.insert(k, v);
        }
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table with the notes below.
    pub fn render_text(&self) -> String {
        let fmt_val = |v: &Value| -> String {
            match v {
                Value::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if f.fract() == 0.0 && f.abs() < 1e15 {
                            format!("{f}")
                        } else {
                            format!("{f:.4}")
                        }
                    } else {
                        n.to_string()
                    }
                }
                Value::String(s) => s.clone(),
                other => other.to_string(),
            }
        };
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = row.get(c).map(&fmt_val).unwrap_or_default();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{:>w$}", s, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Checks the report for unusable output: no rows, an empty row
    /// object, or any null cell. `round4(f64::NAN)` / infinities
    /// serialize as `Value::Null`, so this also catches NaN results.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows.is_empty() {
            return Err(format!("{}: report has no rows", self.id));
        }
        for (i, row) in self.rows.iter().enumerate() {
            if row.is_empty() {
                return Err(format!("{}: row {i} is empty", self.id));
            }
            for (k, v) in row {
                if v.is_null() {
                    return Err(format!(
                        "{}: row {i} column {k:?} is null (NaN/inf?)",
                        self.id
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON.
    ///
    /// Fails only if a row holds a non-serializable `Value` (which
    /// [`Self::validate`] would also reject); callers decide whether
    /// that aborts the run or fails the one report.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&json!({
            "id": self.id,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }))
    }
}

/// Series marker letter for index `i` (A..Z, wrapping).
fn series_marker(i: usize) -> char {
    // i % 26 < 26, so the cast is exact.
    #[allow(clippy::cast_possible_truncation)]
    let off = (i % 26) as u8;
    char::from(b'A' + off)
}

impl ExperimentReport {
    /// Renders a quick ASCII line chart of `y_cols` against `x_col`
    /// (one letter-coded series per column), for terminal inspection of
    /// sweep shapes without leaving the harness.
    pub fn render_ascii_chart(&self, x_col: &str, y_cols: &[&str]) -> String {
        const HEIGHT: usize = 16;
        let xs: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                r.get(x_col)
                    .map(|v| match v {
                        Value::Number(n) => format!("{}", n),
                        Value::String(s) => s.clone(),
                        other => other.to_string(),
                    })
                    .unwrap_or_default()
            })
            .collect();
        let series: Vec<(char, Vec<Option<f64>>)> = y_cols
            .iter()
            .enumerate()
            .map(|(i, col)| {
                let marker = series_marker(i);
                let ys = self
                    .rows
                    .iter()
                    .map(|r| r.get(*col).and_then(|v| v.as_f64()))
                    .collect();
                (marker, ys)
            })
            .collect();
        let all: Vec<f64> = series
            .iter()
            .flat_map(|(_, ys)| ys.iter().flatten().copied())
            .collect();
        if all.is_empty() || self.rows.is_empty() {
            return String::from("(no numeric data to chart)\n");
        }
        let max = all.iter().cloned().fold(f64::MIN, f64::max);
        let min = 0f64.min(all.iter().cloned().fold(f64::MAX, f64::min));
        let span = (max - min).max(1e-12);
        let cols = self.rows.len();
        let mut grid = vec![vec![' '; cols]; HEIGHT];
        for (marker, ys) in &series {
            for (x, y) in ys.iter().enumerate() {
                if let Some(y) = y {
                    // y ≥ min, so the rounded offset is nonnegative; the
                    // `.min` on the next line clamps any overshoot.
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let row = ((y - min) / span * (HEIGHT - 1) as f64).round() as usize;
                    let row = HEIGHT - 1 - row.min(HEIGHT - 1);
                    grid[row][x] = if grid[row][x] == ' ' { *marker } else { '*' };
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} vs {} (top {:.3}, bottom {:.3})\n",
            self.id,
            y_cols.join(","),
            x_col,
            max,
            min
        ));
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(cols));
        out.push('\n');
        out.push_str(&format!("   x: {}\n", xs.join(" ")));
        for (i, col) in y_cols.iter().enumerate() {
            let marker = series_marker(i);
            out.push_str(&format!("   {marker} = {col}\n"));
        }
        out
    }
}

/// Rounds to 4 decimal places for stable, readable output.
pub fn round4(x: f64) -> Value {
    json!((x * 1e4).round() / 1e4)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a slice (mean of middle pair for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    // Metric samples are finite, so `total_cmp` sorts them exactly as
    // `partial_cmp` did; it additionally gives NaN a defined order
    // instead of a panic.
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut r = ExperimentReport::new("t", "demo", &["a", "b"]);
        r.push_row(&[("a", json!(1)), ("b", json!("x"))]);
        r.push_row(&[("a", json!(2.5)), ("b", json!("yy")), ("c", json!(3))]);
        r.note("hello");
        let text = r.render_text();
        assert!(text.contains("demo"));
        assert!(text.contains("2.5000"));
        assert!(text.contains("note: hello"));
        assert_eq!(r.columns, vec!["a", "b", "c"]);
        // JSON round-trips.
        let v: Value = serde_json::from_str(&r.to_json().unwrap()).unwrap();
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn owned_rows_match_borrowed_rows() {
        let mut borrowed = ExperimentReport::new("t", "demo", &["a"]);
        borrowed.push_row(&[("a", json!(1)), ("dyn_col", json!(2.5))]);
        let mut owned = ExperimentReport::new("t", "demo", &["a"]);
        owned.push_row_owned(vec![
            ("a".to_string(), json!(1)),
            ("dyn_col".to_string(), json!(2.5)),
        ]);
        assert_eq!(borrowed.columns, owned.columns);
        assert_eq!(borrowed.rows, owned.rows);
        assert_eq!(borrowed.to_json().unwrap(), owned.to_json().unwrap());
    }

    #[test]
    fn ascii_chart_renders_series() {
        let mut r = ExperimentReport::new("c", "chart", &["x", "y1", "y2"]);
        for i in 0..8 {
            r.push_row(&[
                ("x", json!(i)),
                ("y1", json!(i as f64)),
                ("y2", json!((8 - i) as f64)),
            ]);
        }
        let chart = r.render_ascii_chart("x", &["y1", "y2"]);
        assert!(chart.contains("A = y1"));
        assert!(chart.contains("B = y2"));
        assert!(chart.contains('A') && chart.contains('B'));
        // Crossing point marked with '*'.
        assert!(chart.contains('*'), "{chart}");
        // Empty report degrades gracefully.
        let empty = ExperimentReport::new("e", "empty", &["x"]);
        assert!(empty
            .render_ascii_chart("x", &["y"])
            .contains("no numeric data"));
    }

    #[test]
    fn validate_flags_bad_reports() {
        let empty = ExperimentReport::new("e", "empty", &["x"]);
        assert!(empty.validate().is_err());
        let mut ok = ExperimentReport::new("ok", "fine", &["x"]);
        ok.push_row(&[("x", json!(1.0))]);
        assert!(ok.validate().is_ok());
        let mut nan = ExperimentReport::new("n", "nan", &["x"]);
        nan.push_row(&[("x", round4(f64::NAN))]);
        assert!(nan.validate().is_err());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(round4(0.123456), json!(0.1235));
    }
}
