//! One module per table/figure of the paper. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for the recorded outcomes.

pub mod ablation;
pub mod disconnection;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hamming;
pub mod mos;
pub mod scan_analysis;
pub mod sweep;
pub mod table1;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;

/// Deterministic RNG for experiment `id`/replica.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Runs `f` with a per-thread reusable trace buffer, so the synthesis
/// loops (Table 1, Figures 6/7) stop allocating a fresh ~100k-sample
/// `Vec` per trial. Safe with the parallel trial runner: each worker
/// thread owns its own buffer.
pub(crate) fn with_trace_buf<T>(f: impl FnOnce(&mut Vec<f32>) -> T) -> T {
    thread_local! {
        static BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }
    BUF.with(|b| f(&mut b.borrow_mut()))
}
