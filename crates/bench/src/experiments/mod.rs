//! One module per table/figure of the paper. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for the recorded outcomes.

pub mod ablation;
pub mod city;
pub mod disconnection;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fuzz;
pub mod hamming;
pub mod mos;
pub mod scan_analysis;
pub mod sweep;
pub mod table1;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi_phy::synth::Burst;
use whitefi_phy::{Detection, Sift, SimDuration, StreamingSift, Synthesizer};

/// Deterministic RNG for experiment `id`/replica.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Synthesizes the capture block-at-a-time and runs [`StreamingSift`]
/// over it, returning the detections and the total busy samples. The
/// synthesis loops (Table 1, Figures 6/7) never materialize a whole
/// ~100k-sample trace; only `BLOCK_SAMPLES`-sized blocks exist.
pub(crate) fn stream_sift(
    synth: &Synthesizer,
    bursts: &[Burst],
    window: SimDuration,
    rng: &mut ChaCha8Rng,
) -> (Vec<Detection>, u64) {
    let mut stream = synth.stream(bursts, window, rng);
    let mut sift = StreamingSift::new(Sift::default().config);
    let mut out = Vec::new();
    while let Some(block) = stream.next_block() {
        out.extend(sift.push_block(block));
    }
    out.extend(sift.finish());
    (out, sift.busy_samples())
}
