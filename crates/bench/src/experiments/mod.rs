//! One module per table/figure of the paper. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for the recorded outcomes.

pub mod ablation;
pub mod disconnection;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hamming;
pub mod mos;
pub mod scan_analysis;
pub mod table1;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG for experiment `id`/replica.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
