//! Figure 6: accuracy of airtime utilization measurement using SIFT.
//!
//! Same workload as Table 1 (110 × 1000 B packets per run). The paper's
//! observation: "The total time occupied by the packets doubles on
//! halving the channel width … Since we send the same number of packets
//! at a given width, the total airtime is constant, even when we change
//! the rate of injected packets" (error bars within 2% of the mean).
//!
//! We report the SIFT-measured *busy time* (seconds) per width × rate
//! cell, its ground truth, and the relative error.

use crate::experiments::table1::{cbr_schedule, PACKET_BYTES, RATES_KBPS};
use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_phy::synth::SAMPLE_NS;
use whitefi_phy::{PhyTiming, Synthesizer};
use whitefi_spectrum::Width;

/// SIFT-measured total busy seconds for one run.
pub fn measured_busy_secs(width: Width, rate_kbps: u64, count: usize, seed: u64) -> f64 {
    let (bursts, window) = cbr_schedule(width, rate_kbps, count);
    let mut rng = super::rng(seed);
    let (_, busy_samples) = super::stream_sift(&Synthesizer::new(), &bursts, window, &mut rng);
    busy_samples as f64 * SAMPLE_NS as f64 / 1e9
}

/// Ground-truth busy seconds of the same workload.
pub fn true_busy_secs(width: Width, count: usize) -> f64 {
    let t = PhyTiming::for_width(width);
    let on = t.frame_duration(PACKET_BYTES) + t.ack_duration();
    on.as_secs_f64() * count as f64
}

/// Runs the airtime-accuracy grid.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let count = if ctx.quick() { 40 } else { 110 };
    let mut report = ExperimentReport::new(
        "fig6",
        "SIFT-measured total airtime (s) per width x offered load",
        &["width_mhz", "truth_s"],
    );
    let widths = [Width::W5, Width::W10, Width::W20];
    let measured = ctx.map(widths.len() * RATES_KBPS.len(), |k| {
        let wi = k / RATES_KBPS.len();
        let rate = RATES_KBPS[k % RATES_KBPS.len()];
        measured_busy_secs(
            widths[wi],
            rate,
            count,
            ctx.seed(600 + wi as u64 * 17 + rate),
        )
    });
    let mut per_width_means = Vec::new();
    for (wi, width) in widths.iter().enumerate() {
        let truth = true_busy_secs(*width, count);
        let mut pairs: Vec<(String, serde_json::Value)> = vec![
            ("width_mhz".to_string(), json!(width.mhz())),
            ("truth_s".to_string(), round4(truth)),
        ];
        let mut cells = Vec::new();
        for (ri, rate) in RATES_KBPS.iter().enumerate() {
            let m = measured[wi * RATES_KBPS.len() + ri];
            cells.push(m);
            pairs.push((format!("{:.3}M", *rate as f64 / 1000.0), round4(m)));
        }
        let spread = (cells.iter().cloned().fold(f64::MIN, f64::max)
            - cells.iter().cloned().fold(f64::MAX, f64::min))
            / mean(&cells);
        pairs.push(("spread_frac".to_string(), round4(spread)));
        per_width_means.push(mean(&cells));
        report.push_row_owned(pairs);
    }
    report.note(format!(
        "mean busy time per width: {:.4}/{:.4}/{:.4} s — halving width doubles airtime",
        per_width_means[2], per_width_means[1], per_width_means[0]
    ));
    report
        .note("airtime constant across offered loads at fixed width (paper: error bars within 2%)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_constant_across_rates() {
        let cells: Vec<f64> = RATES_KBPS
            .iter()
            .map(|&r| measured_busy_secs(Width::W10, r, 60, r))
            .collect();
        let m = mean(&cells);
        for c in &cells {
            assert!((c / m - 1.0).abs() < 0.02, "cell {c} vs mean {m}");
        }
    }

    #[test]
    fn airtime_doubles_as_width_halves() {
        let w20 = measured_busy_secs(Width::W20, 500, 60, 1);
        let w10 = measured_busy_secs(Width::W10, 500, 60, 2);
        let w5 = measured_busy_secs(Width::W5, 500, 60, 3);
        assert!((w10 / w20 - 2.0).abs() < 0.1, "{w20} {w10}");
        assert!((w5 / w10 - 2.0).abs() < 0.12, "{w10} {w5}");
    }

    #[test]
    fn measurement_tracks_truth() {
        let m = measured_busy_secs(Width::W20, 1000, 60, 4);
        let t = true_busy_secs(Width::W20, 60);
        assert!((m / t - 1.0).abs() < 0.02, "measured {m} truth {t}");
    }
}
