//! Figure 7: discovery of packets with signal attenuation — SIFT vs a
//! packet sniffer.
//!
//! "We evaluated the accuracy of SIFT at low signal strengths by
//! connecting two KNOWS devices through a tunable RF attenuator … At low
//! attenuation, both SIFT and the packet sniffer perform very well.
//! However, SIFT outperforms the packet sniffer, as it is even able to
//! detect corrupted packets. At higher attenuation, SIFT continues to
//! detect more packets than the sniffer until 96 dB attenuation … Beyond
//! 96 dB we see a very sharp drop … the reception ratio of the packet
//! sniffer falls off more smoothly, and performs better than SIFT beyond
//! 98 dB attenuation. However, at this attenuation the capture ratio is
//! extremely low at around 35%."

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_phy::attenuation::{amplitude_after, NoiseModel, TX_REFERENCE_AMPLITUDE};
use whitefi_phy::synth::data_ack_exchange;
use whitefi_phy::{DetectionKind, SimDuration, SimTime, Sniffer, Synthesizer};
use whitefi_spectrum::Width;

/// SIFT detection fraction at the given attenuation.
pub fn sift_fraction(attenuation_db: f64, packets: usize, seed: u64) -> f64 {
    let amplitude = amplitude_after(TX_REFERENCE_AMPLITUDE, attenuation_db);
    let mut bursts = Vec::with_capacity(packets * 2);
    let mut t = SimTime::from_millis(1);
    for _ in 0..packets {
        let ex = data_ack_exchange(t, Width::W20, 1000, amplitude);
        t = ex[1].start + ex[1].duration + SimDuration::from_millis(1);
        bursts.extend(ex);
    }
    let window = SimDuration::from_nanos(t.as_nanos() + 1_000_000);
    let mut rng = super::rng(seed);
    let (detections, _) = super::stream_sift(&Synthesizer::new(), &bursts, window, &mut rng);
    let found = detections
        .into_iter()
        .filter(|d| d.kind == DetectionKind::DataAck && d.width == Width::W20)
        .count();
    found.min(packets) as f64 / packets as f64
}

/// Sniffer decode fraction (Monte Carlo over the decode model).
pub fn sniffer_fraction(attenuation_db: f64, packets: usize, seed: u64) -> f64 {
    let amplitude = amplitude_after(TX_REFERENCE_AMPLITUDE, attenuation_db);
    let noise = NoiseModel::default_model();
    let sniffer = Sniffer::default();
    let snr = noise.snr_db(amplitude);
    let mut rng = super::rng(seed);
    let ok = (0..packets)
        .filter(|_| sniffer.decodes(snr, &mut rng))
        .count();
    ok as f64 / packets as f64
}

/// Runs the attenuation sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let packets = if ctx.quick() { 60 } else { 200 };
    let mut report = ExperimentReport::new(
        "fig7",
        "Packet detection fraction vs attenuation (20 MHz, 1000 B)",
        &["attenuation_db", "sift", "sniffer"],
    );
    let dbs: Vec<u64> = (80..=106).step_by(2).collect();
    let fractions = ctx.map(dbs.len(), |i| {
        let db2 = dbs[i];
        (
            sift_fraction(db2 as f64, packets, ctx.seed(700 + db2)),
            sniffer_fraction(db2 as f64, packets * 5, ctx.seed(800 + db2)),
        )
    });
    // Cliff/crossover detection needs the previous point, so the scan
    // over the collected results stays sequential.
    let mut cliff_db = None;
    let mut crossover_db = None;
    let mut prev = (1.0f64, 1.0f64);
    for (i, &db2) in dbs.iter().enumerate() {
        let db = db2 as f64;
        let (s, p) = fractions[i];
        report.push_row(&[
            ("attenuation_db", json!(db)),
            ("sift", round4(s)),
            ("sniffer", round4(p)),
        ]);
        if cliff_db.is_none() && prev.0 > 0.9 && s < 0.5 {
            cliff_db = Some(db);
        }
        if crossover_db.is_none() && prev.1 <= prev.0 && p > s {
            crossover_db = Some(db);
        }
        prev = (s, p);
    }
    if let Some(c) = cliff_db {
        report.note(format!(
            "SIFT cliff between {} and {} dB (paper: sharp drop beyond 96 dB)",
            c - 2.0,
            c
        ));
    }
    if let Some(c) = crossover_db {
        report.note(format!(
            "sniffer overtakes SIFT at ~{c} dB (paper: beyond 98 dB, at ~35% capture)"
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_near_perfect_at_low_attenuation() {
        assert!(sift_fraction(80.0, 40, 1) > 0.97);
        assert!(sniffer_fraction(80.0, 400, 1) > 0.97);
    }

    #[test]
    fn sift_beats_sniffer_in_the_mid_range() {
        // 90–96 dB: the sniffer is already lossy, SIFT still near-perfect.
        for db in [90.0, 92.0, 94.0] {
            let s = sift_fraction(db, 60, 2);
            let p = sniffer_fraction(db, 600, 2);
            assert!(s > p, "at {db} dB: sift {s} <= sniffer {p}");
            assert!(s > 0.9, "sift degraded early at {db} dB: {s}");
        }
    }

    #[test]
    fn sift_cliff_after_96db_sniffer_smooth() {
        let s96 = sift_fraction(96.0, 60, 3);
        let s100 = sift_fraction(100.0, 60, 3);
        assert!(s96 > 0.85, "96 dB {s96}");
        assert!(s100 < 0.25, "100 dB {s100}");
        // Sniffer decays smoothly and wins beyond the cliff.
        let p100 = sniffer_fraction(100.0, 600, 3);
        assert!(p100 > s100, "sniffer {p100} vs sift {s100} at 100 dB");
        let p98 = sniffer_fraction(98.0, 2000, 3);
        assert!(
            (0.2..0.5).contains(&p98),
            "98 dB sniffer {p98} (paper ~0.35)"
        );
    }
}
