//! Section 2.3: audio degradation of a wireless-mic recording under
//! co-channel data transmissions.
//!
//! "We sent 70-byte packets every 100 ms on the same UHF channel as the
//! mic. The transmission power level was −30 dBm … The Mean Opinion
//! Score of the received audio, computed using PESQ, decreased by 0.9
//! during the UHF packet transmissions. Other researchers have shown
//! that a MOS reduction of only 0.1 is noticeable by the human ear."
//!
//! The table sweeps packet interval and power around the paper's
//! operating point using the calibrated MOS model (the PESQ substitute —
//! see `DESIGN.md` §2).

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_audio::{paper_workload, Interference, MosModel, AUDIBLE_MOS_DELTA};

/// Runs the MOS degradation sweep. Deterministic closed-form model:
/// nothing to parallelize.
pub fn run(_ctx: &RunCtx) -> ExperimentReport {
    let model = MosModel::calibrated();
    let mut report = ExperimentReport::new(
        "mos",
        "Predicted MOS degradation vs interference pattern",
        &["interval_ms", "power_dbm", "delta_mos", "mos", "audible"],
    );
    for interval_ms in [10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0] {
        for power in [-50.0, -30.0, -10.0, 16.0] {
            let i = Interference {
                packet_bytes: 70,
                interval_ms,
                power_dbm: power,
            };
            report.push_row(&[
                ("interval_ms", json!(interval_ms)),
                ("power_dbm", json!(power)),
                ("delta_mos", round4(model.mos_delta(&i))),
                ("mos", round4(model.mos(&i))),
                ("audible", json!(model.audible(&i))),
            ]);
        }
    }
    let paper = paper_workload();
    report.note(format!(
        "paper operating point (70 B / 100 ms / -30 dBm): ΔMOS = {:.2} (paper: 0.9)",
        model.mos_delta(&paper)
    ));
    report.note(format!(
        "audible threshold at -30 dBm: {:.2} packets/s — even sparse control traffic is audible, motivating the chirp protocol",
        model.audible_rate_threshold_hz(-30.0)
    ));
    report.note(format!("audibility criterion: ΔMOS >= {AUDIBLE_MOS_DELTA}"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_reproduced() {
        let model = MosModel::calibrated();
        assert!((model.mos_delta(&paper_workload()) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn every_swept_point_at_minus30_or_louder_is_audible() {
        let r = run(&RunCtx::sequential(true));
        for row in &r.rows {
            let power = row["power_dbm"].as_f64().unwrap();
            let interval = row["interval_ms"].as_f64().unwrap();
            if power >= -30.0 && interval <= 1000.0 {
                assert_eq!(row["audible"], json!(true), "{row:?}");
            }
        }
    }
}
