//! Figure 5: time-domain view of data-ACK frames at different widths.
//!
//! The paper plots `sqrt(I² + Q²)` of a 132-byte, 6 Mbps data+ACK
//! exchange at 20, 10 and 5 MHz: the whole exchange fits in ~600 µs, ~1.2
//! ms and ~2.5 ms respectively; every duration and the SIFS gap double as
//! the width halves; and the 5 MHz packet begins with a visibly lower
//! amplitude head. This experiment synthesizes the same three traces,
//! measures them back with SIFT, and reports the timing table (the
//! decimated traces themselves go into the JSON output for plotting).

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_phy::synth::{data_ack_exchange, SAMPLE_NS};
use whitefi_phy::{PhyTiming, Sift, SimDuration, SimTime, Synthesizer};
use whitefi_spectrum::Width;

/// Payload size of the Figure 5 exchange.
pub const FIG5_BYTES: usize = 132;

/// Synthesizes one width's trace and returns
/// `(measured_data_us, measured_gap_us, measured_ack_us, window_us, trace)`.
pub fn trace_for(width: Width, seed: u64) -> (f64, f64, f64, f64, Vec<f32>) {
    let start = SimTime::from_micros(50);
    let ex = data_ack_exchange(start, width, FIG5_BYTES, 1000.0);
    let window_ns = (ex[1].start + ex[1].duration + SimDuration::from_micros(100))
        .since(SimTime::ZERO)
        .as_nanos();
    let window = SimDuration::from_nanos(window_ns);
    let mut rng = super::rng(seed);
    let trace = Synthesizer::new().synthesize(&ex, window, &mut rng);
    let sift = Sift::default();
    let bursts = sift.extract_bursts(&trace);
    assert_eq!(bursts.len(), 2, "expected data + ACK bursts at {width:?}");
    let to_us = |samples: usize| samples as f64 * SAMPLE_NS as f64 / 1000.0;
    let data_us = to_us(bursts[0].len);
    let gap_us = to_us(bursts[1].start - bursts[0].end());
    let ack_us = to_us(bursts[1].len);
    (data_us, gap_us, ack_us, window_ns as f64 / 1000.0, trace)
}

/// Runs the Figure 5 trace synthesis and timing measurement.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "Data-ACK exchange timing per width (132 B at 6 Mbps-equivalent)",
        &[
            "width_mhz",
            "data_us",
            "sifs_gap_us",
            "ack_us",
            "exchange_us",
            "paper_window_us",
        ],
    );
    let paper_windows = [
        (Width::W20, 600.0),
        (Width::W10, 1200.0),
        (Width::W5, 2500.0),
    ];
    let traces = ctx.map(paper_windows.len(), |i| {
        trace_for(paper_windows[i].0, ctx.seed(500 + i as u64))
    });
    let mut exchanges = Vec::new();
    for (i, (width, paper_window)) in paper_windows.iter().enumerate() {
        let (data_us, gap_us, ack_us, _w, ref trace) = traces[i];
        let timing = PhyTiming::for_width(*width);
        let exchange_us = timing.exchange_duration(FIG5_BYTES).as_micros() as f64;
        exchanges.push(exchange_us);
        // Truncating the f32 amplitudes to integers keeps the embedded
        // trace snippet compact; the precision loss is intended.
        #[allow(clippy::cast_possible_truncation)]
        let trace_head: Vec<i64> = trace.iter().take(64).map(|&s| s as i64).collect();
        report.push_row(&[
            ("width_mhz", json!(width.mhz())),
            ("data_us", round4(data_us)),
            ("sifs_gap_us", round4(gap_us)),
            ("ack_us", round4(ack_us)),
            ("exchange_us", round4(exchange_us)),
            ("paper_window_us", json!(paper_window)),
            ("trace_head", json!(trace_head)),
        ]);
        assert!(
            exchange_us < *paper_window,
            "{width:?} exchange {exchange_us} µs exceeds the paper's {paper_window} µs axis"
        );
    }
    report.note(format!(
        "exchange durations {:.0}/{:.0}/{:.0} µs — each doubles as width halves (paper axes: 600/1200/2500 µs)",
        exchanges[0], exchanges[1], exchanges[2]
    ));
    report.note("5 MHz trace carries the low-amplitude packet head (w5_head in SynthesizerConfig)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_timing_doubles_per_halving() {
        let (d20, g20, a20, ..) = trace_for(Width::W20, 1);
        let (d10, g10, a10, ..) = trace_for(Width::W10, 2);
        let (d5, g5, a5, ..) = trace_for(Width::W5, 3);
        // 5 MHz data may be measured short because of the head droop, so
        // compare 10 vs 20 strictly and 5 loosely.
        assert!((d10 / d20 - 2.0).abs() < 0.1, "data {d20} {d10}");
        assert!((a10 / a20 - 2.0).abs() < 0.15, "ack {a20} {a10}");
        assert!((g10 / g20 - 2.0).abs() < 0.4, "gap {g20} {g10}");
        assert!(d5 > 1.5 * d10 && a5 > 1.7 * a10 && g5 > 1.5 * g10);
    }

    #[test]
    fn report_contains_three_rows_and_fits_paper_axes() {
        let r = run(&RunCtx::sequential(true));
        assert_eq!(r.rows.len(), 3);
    }
}
