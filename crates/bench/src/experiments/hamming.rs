//! Section 2.1: spatial variation across campus buildings.
//!
//! "We computed the Hamming distance, defined as the number of channels
//! available at one location but unavailable at another, across all
//! pairwise buildings. Our results showed that the median number of
//! channels available at one point but unavailable at another is close
//! to 7."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_spectrum::{median, pairwise_hamming, BuildingSampler, SpectrumMap};

/// A mid-density urban baseline for the campus region.
pub fn campus_baseline() -> SpectrumMap {
    SpectrumMap::from_occupied([0, 2, 3, 6, 10, 11, 15, 16, 20, 21, 22, 27])
}

/// Median pairwise Hamming distance across one 9-building draw.
pub fn one_draw_median(seed: u64) -> f64 {
    let sampler = BuildingSampler::campus(campus_baseline());
    let mut rng = super::rng(seed);
    let maps = sampler.sample(9, &mut rng);
    let mut d = pairwise_hamming(&maps);
    median(&mut d)
}

/// Runs the campus spatial-variation measurement.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let draws = if ctx.quick() { 30 } else { 300 };
    let mut report = ExperimentReport::new(
        "hamming",
        "Pairwise Hamming distance over 9 campus buildings",
        &["draw_group", "median_hamming"],
    );
    let medians = ctx.map(draws, |i| one_draw_median(ctx.seed(1200 + i as u64)));
    for (i, chunk) in medians.chunks((draws / 5).max(1)).enumerate() {
        report.push_row(&[
            ("draw_group", json!(i)),
            ("median_hamming", round4(mean(chunk))),
        ]);
    }
    let overall = mean(&medians);
    report.push_row(&[
        ("draw_group", json!("overall")),
        ("median_hamming", round4(overall)),
    ]);
    report.note(format!(
        "mean of per-draw medians: {overall:.2} (paper: close to 7)"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_close_to_seven() {
        let medians: Vec<f64> = (0..100).map(one_draw_median).collect();
        let m = mean(&medians);
        assert!((m - 7.0).abs() < 0.8, "mean median {m}");
    }
}
