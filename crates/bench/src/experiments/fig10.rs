//! Figure 10: the MCham microbenchmark.
//!
//! "We simulate a spectrum fragment of 5 adjacent UHF channels (26–30),
//! each having one background client/AP-pair. There is one AP with one
//! associated client, transmitting a link-saturating UDP flow. We vary
//! the traffic intensity of the background nodes (from 0 to 50 ms
//! inter-packet delay) and measure the effect on the MCham metric and
//! client throughput when transmitting on the 5, 10, and 20 MHz channels
//! centered at channel 28. … The MCham metric accurately predicts which
//! channel achieves the highest throughput for any given background
//! intensity."
//!
//! Shape targets: the MCham argmax matches the measured-throughput argmax
//! across the sweep, and the preferred width walks 20 → 10 → 5 MHz as
//! background traffic intensifies. (The paper's prose cites ~18 ms and
//! ~24 ms crossovers; in our substrate, as in the uniform-load analysis,
//! the three crossovers cluster in that same region — see
//! `EXPERIMENTS.md`.)

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::driver::{measure_airtime, run_fixed, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi::mcham;
use whitefi_phy::SimDuration;
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

/// The three candidate channels, centred at TV channel 28 (index 7).
pub fn candidates() -> [WfChannel; 3] {
    [
        WfChannel::from_parts(7, Width::W5),
        WfChannel::from_parts(7, Width::W10),
        WfChannel::from_parts(7, Width::W20),
    ]
}

/// The 5-channel fragment map (TV 26–30 free, indices 5..=9).
pub fn fragment_map() -> SpectrumMap {
    SpectrumMap::from_free([5, 6, 7, 8, 9])
}

fn scenario(delay_ms: u64, seed: u64, quick: bool) -> Scenario {
    let mut s = Scenario::new(seed, fragment_map(), 1);
    s.uplink_bytes = None; // one saturating downlink flow, as in the paper
    s.warmup = SimDuration::from_secs(1);
    s.duration = if quick {
        SimDuration::from_secs(2)
    } else {
        SimDuration::from_secs(4)
    };
    for i in 5..=9usize {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(i, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(delay_ms),
            },
        });
    }
    s
}

/// One sweep point: `(mcham[3], throughput_mbps[3])` indexed 5/10/20 MHz.
pub fn sweep_point(delay_ms: u64, seed: u64, quick: bool) -> ([f64; 3], [f64; 3]) {
    let s = scenario(delay_ms, seed, quick);
    let airtime = measure_airtime(&s, SimDuration::from_secs(2));
    let mut m = [0.0; 3];
    let mut tput = [0.0; 3];
    for (i, cand) in candidates().iter().enumerate() {
        m[i] = mcham(&airtime, *cand);
        tput[i] = run_fixed(&s, *cand).aggregate_mbps;
    }
    (m, tput)
}

fn argmax(xs: &[f64; 3]) -> usize {
    let mut best = 0;
    for i in 1..3 {
        if xs[i] > xs[best] {
            best = i;
        }
    }
    best
}

/// The background-intensity sweep grid (inter-frame delays, ms). Shared
/// with `diag` so its spot checks reproduce the exact sweep points.
pub fn delays(quick: bool) -> &'static [u64] {
    if quick {
        &[4, 14, 30]
    } else {
        &[2, 6, 10, 14, 18, 22, 26, 30, 40, 50]
    }
}

/// Runs the Figure 10 sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let quick = ctx.quick();
    let delays: &[u64] = delays(quick);
    let mut report = ExperimentReport::new(
        "fig10",
        "MCham and throughput of 5/10/20 MHz channels vs background intensity",
        &[
            "delay_ms",
            "mcham5",
            "mcham10",
            "mcham20",
            "tput5",
            "tput10",
            "tput20",
            "mcham_pick",
            "tput_pick",
        ],
    );
    let widths = ["5", "10", "20"];
    let points = ctx.map(delays.len(), |i| {
        sweep_point(delays[i], ctx.seed(4000 + i as u64), quick)
    });
    let mut agree = 0usize;
    let mut near_agree = 0usize;
    let mut heavy_pick = 2usize;
    let mut light_pick = 0usize;
    for (i, &delay) in delays.iter().enumerate() {
        let (m, t) = points[i];
        let mp = argmax(&m);
        let tp = argmax(&t);
        if mp == tp {
            agree += 1;
        }
        // "Near agreement": MCham's pick achieves ≥ 90% of the best
        // measured throughput (ties near crossovers are expected).
        if t[mp] >= 0.9 * t[tp] {
            near_agree += 1;
        }
        if i == 0 {
            heavy_pick = tp;
        }
        if i + 1 == delays.len() {
            light_pick = tp;
        }
        report.push_row(&[
            ("delay_ms", json!(delay)),
            ("mcham5", round4(m[0])),
            ("mcham10", round4(m[1])),
            ("mcham20", round4(m[2])),
            ("tput5", round4(t[0])),
            ("tput10", round4(t[1])),
            ("tput20", round4(t[2])),
            ("mcham_pick", json!(widths[mp])),
            ("tput_pick", json!(widths[tp])),
        ]);
    }
    report.note(format!(
        "MCham argmax equals throughput argmax at {agree}/{} points; within 10% of best at {near_agree}/{}",
        delays.len(),
        delays.len()
    ));
    report.note(format!(
        "heaviest background picks {} MHz, lightest picks {} MHz (narrow wins under load, wide when clear)",
        widths[heavy_pick], widths[light_pick]
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_background_prefers_wide_heavy_prefers_narrow() {
        let (m_light, t_light) = sweep_point(50, 90, true);
        let (m_heavy, t_heavy) = sweep_point(3, 2, true);
        // Light: 20 MHz wins both metric and measurement.
        assert_eq!(argmax(&m_light), 2, "mcham light {m_light:?}");
        assert_eq!(argmax(&t_light), 2, "tput light {t_light:?}");
        // Heavy: the narrow channel wins (5 or at worst 10 MHz) — with
        // all five underlying channels saturated the wide channel rarely
        // finds the whole span idle and all but starves.
        assert!(argmax(&m_heavy) < 2, "mcham heavy {m_heavy:?}");
        assert!(argmax(&t_heavy) < 2, "tput heavy {t_heavy:?}");
    }

    /// Characterization of the known Figure 10 mid-sweep deviation:
    /// near 14 ms MCham's narrow pick undershoots the DCF's
    /// width-scaled contention advantage (DESIGN.md §7). The bounds pin
    /// the shape from *both* sides — the lower bounds fail if the
    /// metric degrades further, the upper bound fails if the deviation
    /// silently disappears (re-document it then).
    #[test]
    fn mcham_pick_is_reasonable_throughout() {
        // "The MCham metric yields a reasonably accurate prediction":
        // across the sweep, the channel MCham picks must achieve a solid
        // fraction of the best measured throughput. Near the crossover
        // region the metric and the DCF dynamics disagree mildly (the
        // product model under-credits the wide channel's burstiness), so
        // the bound is 60% there and tighter at the extremes.
        // Mid-sweep (delay 14 ms) the disagreement is largest: our DCF
        // gives the wide channel a width-scaled slot/DIFS advantage in
        // contention races that Equation 1's share model does not
        // capture, so MCham's narrow pick undershoots (see
        // EXPERIMENTS.md).
        for (delay, bound) in [(4u64, 0.60), (14, 0.25), (30, 0.60)] {
            let (m, t) = sweep_point(delay, 10 + delay, true);
            let mp = argmax(&m);
            let tp = argmax(&t);
            assert!(
                t[mp] >= bound * t[tp],
                "delay {delay}: MCham pick {mp} gets {:.2} vs best {:.2}",
                t[mp],
                t[tp]
            );
            // The deviation's signature: mid-sweep the pick ratio stays
            // visibly below perfect agreement.
            if delay == 14 {
                assert!(
                    t[mp] <= 0.90 * t[tp],
                    "mid-sweep deviation gone: pick {mp} gets {:.2} vs best {:.2}",
                    t[mp],
                    t[tp]
                );
            }
        }
    }
}
