//! Ablations of WhiteFi's design choices (beyond the paper's figures,
//! but directly testing its design arguments):
//!
//! 1. **MCham combiner** — §4.1 argues the per-channel shares must be
//!    *multiplied*: "simply taking the minimum or the maximum across all
//!    channels, instead of the product, will be an underestimate since
//!    the traffic on a narrower channel contends with traffic on an
//!    overlapping wider channel." We re-run the Figure 10 microbenchmark
//!    with product/min/max combiners and score each on how much of the
//!    best measured throughput its picked channel achieves.
//!
//! 2. **J-SIFT pass order** — Algorithm 1 scans widest-first ("Generally,
//!    if more widths are available, we would do the staggered search
//!    starting from the widest channel width"). We compare against a
//!    narrowest-first stagger on the open band.

use crate::experiments::fig10::{candidates, sweep_point};
use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use rand::Rng;
use serde_json::json;
use whitefi::driver::{measure_airtime, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi::{mcham_with, Combiner, ScanOracle, SyntheticOracle};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{SpectrumMap, UhfChannel, WfChannel, Width};

fn argmax(xs: &[f64; 3]) -> usize {
    // Throughputs are finite, so `total_cmp` picks the same maximum as
    // `partial_cmp` did; the range is nonempty so the fallback never
    // fires.
    (0..3).max_by(|&a, &b| xs[a].total_cmp(&xs[b])).unwrap_or(0)
}

/// For one background intensity: the throughput fraction (picked/best)
/// achieved by each combiner's pick.
pub fn combiner_fractions(delay_ms: u64, seed: u64, quick: bool) -> [f64; 3] {
    // Reuse the Figure 10 scenario: measured airtime + per-width truth.
    let (_m, tput) = sweep_point(delay_ms, seed, quick);
    let best = tput[argmax(&tput)];
    let mut s = Scenario::new(seed, crate::experiments::fig10::fragment_map(), 1);
    for i in 5..=9usize {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(i, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(delay_ms),
            },
        });
    }
    let airtime = measure_airtime(&s, SimDuration::from_secs(2));
    let mut out = [0.0; 3];
    for (k, combiner) in [Combiner::Product, Combiner::Min, Combiner::Max]
        .into_iter()
        .enumerate()
    {
        let scores: Vec<f64> = candidates()
            .iter()
            .map(|&c| mcham_with(combiner, &airtime, c))
            .collect();
        let pick = (0..3)
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap_or(0);
        out[k] = if best > 0.0 { tput[pick] / best } else { 1.0 };
    }
    out
}

/// A narrowest-first staggered scan (the anti-Algorithm-1 ordering) for
/// the pass-order ablation.
pub fn narrowest_first_scans<O: ScanOracle>(oracle: &mut O, map: SpectrumMap) -> Option<u32> {
    let mut scans = 0;
    for _ in 0..8 {
        let mut scanned = [false; 30];
        for w in Width::ALL {
            // narrowest first
            let stride = w.span();
            let mut cur = 0usize;
            while cur < 30 {
                let ch = UhfChannel::from_index(cur);
                if !scanned[cur] && map.is_free(ch) {
                    scanned[cur] = true;
                    scans += 1;
                    if let Some(found) = oracle.sift_scan(ch) {
                        for cand in whitefi_phy::Scanner::candidate_centers(ch, found) {
                            if !map.admits(cand) {
                                continue;
                            }
                            scans += 1;
                            if oracle.decode_scan(cand) {
                                return Some(scans);
                            }
                        }
                    }
                }
                cur += stride;
            }
        }
    }
    None
}

/// Runs both ablations.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let quick = ctx.quick();
    let mut report = ExperimentReport::new(
        "ablation",
        "Design ablations: MCham combiner; J-SIFT pass order",
        &["delay_ms", "product_frac", "min_frac", "max_frac"],
    );
    // --- MCham combiner over the Figure 10 sweep -----------------------
    let delays: &[u64] = if quick {
        &[4, 30]
    } else {
        &[3, 8, 14, 22, 30, 45]
    };
    let fractions = ctx.map(delays.len(), |i| {
        combiner_fractions(delays[i], ctx.seed(4400 + i as u64), quick)
    });
    let mut sums = [0.0; 3];
    for (i, &d) in delays.iter().enumerate() {
        let f = fractions[i];
        for k in 0..3 {
            sums[k] += f[k] / delays.len() as f64;
        }
        report.push_row(&[
            ("delay_ms", json!(d)),
            ("product_frac", round4(f[0])),
            ("min_frac", round4(f[1])),
            ("max_frac", round4(f[2])),
        ]);
    }
    report.note(format!(
        "mean fraction of best throughput achieved: product {:.3}, min {:.3}, max {:.3} — the paper's product combiner dominates",
        sums[0], sums[1], sums[2]
    ));

    // --- J-SIFT pass order on the open band -----------------------------
    let map = SpectrumMap::all_free();
    let placements = map.available_channels();
    // Trials share one RNG (placement draws feed oracle seeds), so the
    // pass-order Monte Carlo stays sequential.
    let trials = if quick { 60 } else { 300 };
    let mut rng = super::rng(ctx.seed(4500));
    let mut widest = Vec::new();
    let mut narrowest = Vec::new();
    for _ in 0..trials {
        let ap = placements[rng.gen_range(0..placements.len())];
        let mut o = SyntheticOracle::new(ap, super::rng(rng.gen()));
        widest.push(
            whitefi::j_sift_discovery(&mut o, map)
                // lint:allow(unwrap, the open band always admits discovery; a None here is a harness bug worth a panic)
                .expect("open-band discovery")
                .scans as f64,
        );
        let mut o = SyntheticOracle::new(ap, super::rng(rng.gen()));
        // lint:allow(unwrap, the open band always admits discovery; a None here is a harness bug worth a panic)
        narrowest.push(narrowest_first_scans(&mut o, map).expect("open-band discovery") as f64);
    }
    report.note(format!(
        "J-SIFT pass order, mean scans on the open band: widest-first {:.2} vs narrowest-first {:.2} — Algorithm 1's ordering wins",
        mean(&widest),
        mean(&narrowest)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_combiner_never_worse_on_average() {
        let mut sums = [0.0; 3];
        for (i, d) in [4u64, 30].into_iter().enumerate() {
            let f = combiner_fractions(d, 4600 + i as u64, true);
            for k in 0..3 {
                sums[k] += f[k] / 2.0;
            }
        }
        assert!(
            sums[0] >= sums[1] - 0.05 && sums[0] >= sums[2] - 0.05,
            "product {:.3} vs min {:.3} max {:.3}",
            sums[0],
            sums[1],
            sums[2]
        );
    }

    #[test]
    fn widest_first_beats_narrowest_first() {
        let map = SpectrumMap::all_free();
        let placements = map.available_channels();
        let mut rng = super::super::rng(4700);
        let mut w = 0.0;
        let mut n = 0.0;
        for _ in 0..150 {
            let ap = placements[rng.gen_range(0..placements.len())];
            let mut o = SyntheticOracle::new(ap, super::super::rng(rng.gen()));
            w += whitefi::j_sift_discovery(&mut o, map).unwrap().scans as f64;
            let mut o = SyntheticOracle::new(ap, super::super::rng(rng.gen()));
            n += narrowest_first_scans(&mut o, map).unwrap() as f64;
        }
        assert!(w < n, "widest-first {w} vs narrowest-first {n}");
    }
}
