//! Figure 8: reduction in AP discovery time using L-SIFT and J-SIFT,
//! versus the non-SIFT baseline, as a function of the width of the single
//! available spectrum fragment.
//!
//! "In this experiment, we set the spectrum map to have only one
//! available fragment. We varied the number of UHF channels in the
//! fragment from 1 to 30 … When there is only one available UHF channel,
//! the time taken by all the algorithms is the same. However, when we
//! increase the width of the available fragment, L-SIFT and J-SIFT
//! perform much better than the baseline. As expected, L-SIFT outperforms
//! J-SIFT initially (for narrow white-spaces) … J-SIFT becomes more
//! efficient for white spaces spanning more than 10 UHF channels."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use rand::Rng;
use serde_json::json;
use whitefi::{baseline_discovery, j_sift_discovery, l_sift_discovery, SyntheticOracle};
use whitefi_spectrum::{SpectrumMap, UhfChannel, NUM_UHF_CHANNELS};

/// Mean scan counts `(baseline, l_sift, j_sift)` over random admissible
/// AP placements within a single fragment of `width` channels.
pub fn mean_scans(width: usize, trials: usize, seed: u64) -> (f64, f64, f64) {
    let mut map = SpectrumMap::all_occupied();
    for i in 0..width {
        map.set_free(UhfChannel::from_index(i));
    }
    let placements = map.available_channels();
    let mut rng = super::rng(seed);
    let mut b = Vec::new();
    let mut l = Vec::new();
    let mut j = Vec::new();
    for _ in 0..trials {
        let ap = placements[rng.gen_range(0..placements.len())];
        let mk = |seed| SyntheticOracle::new(ap, super::rng(seed));
        b.push(
            baseline_discovery(&mut mk(rng.gen()), map)
                // lint:allow(unwrap, every map here has `width` free channels, so discovery always succeeds; None is a harness bug)
                .expect("discovery")
                .scans as f64,
        );
        l.push(
            l_sift_discovery(&mut mk(rng.gen()), map)
                // lint:allow(unwrap, every map here has `width` free channels, so discovery always succeeds; None is a harness bug)
                .expect("discovery")
                .scans as f64,
        );
        j.push(
            j_sift_discovery(&mut mk(rng.gen()), map)
                // lint:allow(unwrap, every map here has `width` free channels, so discovery always succeeds; None is a harness bug)
                .expect("discovery")
                .scans as f64,
        );
    }
    (mean(&b), mean(&l), mean(&j))
}

/// Runs the fragment-width sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let trials = if ctx.quick() { 60 } else { 300 };
    let mut report = ExperimentReport::new(
        "fig8",
        "Discovery time as a fraction of the non-SIFT baseline vs fragment width",
        &[
            "fragment_width",
            "baseline_scans",
            "l_sift_frac",
            "j_sift_frac",
        ],
    );
    // Trials within one width share an RNG (placements feed oracle
    // seeds), so the parallel unit is the width, not the trial.
    let per_width = ctx.map(NUM_UHF_CHANNELS, |wi| {
        let width = wi + 1;
        mean_scans(width, trials, ctx.seed(900 + width as u64))
    });
    let mut last_l_win = 0usize;
    for width in 1..=NUM_UHF_CHANNELS {
        let (b, l, j) = per_width[width - 1];
        report.push_row(&[
            ("fragment_width", json!(width)),
            ("baseline_scans", round4(b)),
            ("l_sift_frac", round4(l / b)),
            ("j_sift_frac", round4(j / b)),
        ]);
        // L "wins" a width when it beats J by more than sampling noise.
        if l < j * 0.99 {
            last_l_win = width;
        }
    }
    report.note(format!(
        "L-SIFT last decisively ahead at fragment width {last_l_win}; J-SIFT ahead beyond          (paper: crossover ~10 — our J-SIFT prunes its centre-frequency endgame with the          spectrum map, which pulls the crossover earlier on narrow fragments)"
    ));
    report.note("width 1: all algorithms take the same single scan");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_one_all_equal() {
        let (b, l, j) = mean_scans(1, 20, 1);
        assert_eq!(b, 1.0);
        // L-SIFT/J-SIFT: one SIFT scan plus one decode.
        assert!(l <= 2.0 && j <= 2.0, "l {l} j {j}");
    }

    #[test]
    fn both_sift_variants_beat_baseline_on_wide_fragments() {
        let (b, l, j) = mean_scans(24, 80, 2);
        assert!(l < 0.6 * b, "l {l} vs baseline {b}");
        assert!(j < 0.45 * b, "j {j} vs baseline {b}");
    }

    #[test]
    fn j_sift_improvement_exceeds_70_percent_on_open_band() {
        // §5.2: "J-SIFT improves the time to discover APs by more than
        // 75% compared to non-SIFT based techniques." Our J-SIFT pays a
        // slightly larger centre-frequency endgame (it decode-scans each
        // admissible F ± W/2 candidate), landing at ~73% improvement.
        let (b, _, j) = mean_scans(30, 150, 3);
        assert!(j < 0.30 * b, "j {j} vs baseline {b}");
    }

    /// Characterization of the known L/J crossover deviation: our
    /// J-SIFT prunes its centre-frequency endgame with the spectrum
    /// map, pulling the crossover *earlier* than the paper's ~10
    /// channels (DESIGN.md §7, EXPERIMENTS.md). The test pins that
    /// shape — it fails loudly if the deviation silently changes.
    #[test]
    fn crossover_in_expected_region() {
        // Below the crossover L-SIFT holds its own.
        let (_, l_narrow, j_narrow) = mean_scans(4, 150, 4);
        assert!(
            l_narrow <= j_narrow + 0.5,
            "narrow: l {l_narrow} j {j_narrow}"
        );
        // The deviation itself: by 8 channels J-SIFT has caught up to
        // within noise of L-SIFT — two channels before the paper's
        // crossover — and under the streaming-SIFT numerics (PR 6) it
        // oscillates within ~1-2% of parity at this width. Pin the
        // *region*, not a strict ordering: if J-SIFT falls clearly
        // behind here the early crossover has moved — re-document it.
        let (_, l_mid, j_mid) = mean_scans(8, 150, 6);
        assert!(
            j_mid <= l_mid * 1.05,
            "early crossover gone: width 8 l {l_mid} j {j_mid}"
        );
        // Far above the crossover J-SIFT wins decisively.
        let (_, l_wide, j_wide) = mean_scans(20, 150, 5);
        assert!(j_wide < l_wide, "wide: l {l_wide} j {j_wide}");
    }
}
