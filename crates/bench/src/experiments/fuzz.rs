//! Corpus-driven torture rows: run seeded fuzz scenarios from the
//! declarative schema (`whitefi::scenario_fuzz`, DESIGN.md §15) under
//! the full oracle bank and tabulate what each case exercised.
//!
//! This is the experiment-harness face of the fuzz sweep in
//! `crates/whitefi/tests/fuzz_sweep.rs`: the same generator, fanned
//! over the worker pool, reporting per-seed oracle coverage instead of
//! a pass/fail bit. The invariant columns must read zero on every row;
//! `checked_tx` and `aggregate_mbps` show the sweep is not vacuous.

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::scenario_file::{CaseOutcome, ScenarioDoc};
use whitefi::scenario_fuzz::generate_doc;

/// Runs the fuzz corpus sweep: 8 seeds quick, 32 full.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let cases: usize = if ctx.quick() { 8 } else { 32 };
    let mut report = ExperimentReport::new(
        "fuzz",
        "Generative scenario corpus under the oracle bank",
        &[
            "seed",
            "kind",
            "violations",
            "oracle_violations",
            "checked_tx",
            "aggregate_mbps",
        ],
    );
    let rows = ctx.map(cases, |i| {
        let seed = ctx.seed(i as u64);
        let doc = generate_doc(seed);
        let kind = match &doc {
            ScenarioDoc::SingleAp(_) => "single_ap",
            ScenarioDoc::City(_) => "city",
            _ => "other",
        };
        let compiled = doc.compile_sim();
        // lint:allow(unwrap, generate_doc emits only SingleAp/City documents, both simulate)
        let out = compiled.expect("simulation document").run();
        let cells = match &out {
            CaseOutcome::SingleAp(_) => 1,
            CaseOutcome::City(city) => city.cells.len(),
        };
        (
            seed,
            kind,
            out.violations(),
            out.oracle_violation_count(),
            out.checked_tx(),
            out.aggregate_mbps(),
            cells,
        )
    });
    let mut total_tx = 0u64;
    let mut bad = 0u64;
    let mut cities = 0usize;
    for (seed, kind, violations, oracle_violations, checked_tx, mbps, cells) in rows {
        total_tx += checked_tx;
        bad += violations + oracle_violations as u64;
        if kind == "city" {
            cities += 1;
        }
        report.push_row(&[
            ("seed", json!(seed)),
            ("kind", json!(kind)),
            ("violations", json!(violations)),
            ("oracle_violations", json!(oracle_violations)),
            ("checked_tx", json!(checked_tx)),
            ("aggregate_mbps", round4(mbps)),
            ("cells", json!(cells)),
        ]);
    }
    report.note(format!(
        "{cases} sampled scenarios ({cities} city, {} single-AP): {bad} invariant \
         violations across {total_tx} oracle-checked transmissions",
        cases - cities
    ));
    report
}
