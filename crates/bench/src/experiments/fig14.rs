//! Figure 14: experimental validation of the spectrum-assignment
//! algorithm on the Building 5 testbed (§5.4.2).
//!
//! "Initially, when there is no background traffic, the AP and client
//! operate on the 20 MHz spectrum chunk between channels 26 and 30. Then
//! at time 50 seconds, we introduce background traffic on channels 26
//! through 29 … the AP and its clients move to the 10 MHz spectrum
//! fragment. … Then at time 100 seconds, we introduce background traffic
//! on channels 33 and 34 … the system switches to channel 39 (any 5 MHz
//! chunk could have been chosen). Then at times 150 and 200 seconds, we
//! remove the background interference from channels 33 and 34, and from
//! channels 26 through 29, respectively. Correspondingly, WhiteFi
//! switches to the fragment with the best MCham value, i.e. to the
//! 10 MHz fragment at 150 seconds, and to the 20 MHz fragment at 200
//! seconds."
//!
//! Timeline (compressed 5× by default — the shape, not the wall-clock,
//! is the target; `--full` runs the paper's 250 s):

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::building5_map;
use whitefi_spectrum::{WfChannel, Width};

/// Phase boundaries (seconds), scaled by `stretch`.
pub fn phases(stretch: u64) -> [u64; 5] {
    [
        10 * stretch,
        20 * stretch,
        30 * stretch,
        40 * stretch,
        50 * stretch,
    ]
}

/// Builds the Figure 14 scripted scenario. `stretch = 5` reproduces the
/// paper's 250 s timeline; `stretch = 1` compresses it to 50 s.
pub fn scenario(seed: u64, stretch: u64) -> Scenario {
    let map = building5_map();
    let mut s = Scenario::new(seed, map, 1);
    let [p1, p2, p3, p4, p5] = phases(stretch);
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(p5) - s.warmup;
    s.sample_interval = SimDuration::from_millis(500);
    // Background on TV channels 26–29 (indices 5..=8) during [p1, p4).
    for ch in 5..=8usize {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch, Width::W5),
            traffic: BackgroundTraffic::Scripted {
                interval: SimDuration::from_millis(5),
                windows: vec![(SimTime::from_secs(p1), SimTime::from_secs(p4))],
            },
        });
    }
    // Background on TV channels 33–34 (indices 12..=13) during [p2, p3).
    for ch in 12..=13usize {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch, Width::W5),
            traffic: BackgroundTraffic::Scripted {
                interval: SimDuration::from_millis(5),
                windows: vec![(SimTime::from_secs(p2), SimTime::from_secs(p3))],
            },
        });
    }
    s
}

/// The width the AP sat on during the majority of `[from, to)` seconds.
pub fn dominant_width(samples: &[whitefi::driver::Sample], from: u64, to: u64) -> Option<Width> {
    let mut counts = [0usize; 3];
    for s in samples {
        let t = s.t.as_secs_f64();
        if t >= from as f64 && t < to as f64 {
            counts[match s.ap_channel.width() {
                Width::W5 => 0,
                Width::W10 => 1,
                Width::W20 => 2,
            }] += 1;
        }
    }
    let best = (0..3).max_by_key(|&i| counts[i])?;
    if counts[best] == 0 {
        return None;
    }
    Some([Width::W5, Width::W10, Width::W20][best])
}

/// Runs the scripted prototype trace. Single-shot: the `experiments`
/// binary overlaps it with other experiments rather than splitting it.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let stretch = if ctx.quick() { 1 } else { 5 };
    let s = scenario(ctx.seed(9000), stretch);
    let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
    let [p1, p2, p3, p4, p5] = phases(stretch);

    let mut report = ExperimentReport::new(
        "fig14",
        "AP channel and goodput timeline under scripted background traffic",
        &["t_s", "tv_center", "width_mhz", "goodput_mbps"],
    );
    // Aggregate into ~5 s windows like the paper's plot.
    let window = 5.0 * stretch as f64 / 5.0;
    let mut acc_bytes = 0u64;
    let mut acc_start = out
        .samples
        .first()
        .map(|s| s.t.as_secs_f64())
        .unwrap_or(0.0);
    let mut last = None;
    for smp in &out.samples {
        acc_bytes += smp.bytes_delta;
        let t = smp.t.as_secs_f64();
        if t - acc_start >= window {
            report.push_row(&[
                ("t_s", round4(t)),
                ("tv_center", json!(smp.ap_channel.center().tv_channel())),
                ("width_mhz", json!(smp.ap_channel.width().mhz())),
                (
                    "goodput_mbps",
                    round4(acc_bytes as f64 * 8.0 / (t - acc_start) / 1e6),
                ),
            ]);
            acc_bytes = 0;
            acc_start = t;
        }
        last = Some(smp.ap_channel);
    }

    // Phase verdicts.
    let expect = [
        (0, p1, Width::W20, "start: clean 20 MHz fragment"),
        (
            p1,
            p2,
            Width::W10,
            "bg on 26–29: move to the 10 MHz fragment",
        ),
        (
            p2,
            p3,
            Width::W5,
            "bg on 33–34 too: fall back to a 5 MHz channel",
        ),
        (p3, p4, Width::W10, "33–34 clear: return to 10 MHz"),
        (p4, p5, Width::W20, "26–29 clear: return to 20 MHz"),
    ];
    for (from, to, want, label) in expect {
        // Allow a settling margin after each phase boundary: a full
        // scanner cycle (30 channels x 200 ms) may be needed before the
        // airtime vector reflects the change, plus a reassessment round.
        let settle = 5;
        let got = dominant_width(&out.samples, from + settle, to.max(from + settle + 1));
        let ok = got == Some(want);
        report.note(format!(
            "[{from}-{to}s] {label}: dominant width {:?} — {}",
            got,
            if ok { "as in the paper" } else { "MISMATCH" }
        ));
    }
    report.note(format!(
        "final channel {:?}; violations {}",
        last, out.violations
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapts_through_all_five_phases() {
        let s = scenario(9100, 1);
        let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
        let [p1, p2, p3, p4, p5] = phases(1);
        let settle = 5;
        assert_eq!(
            dominant_width(&out.samples, 2, p1),
            Some(Width::W20),
            "phase 0"
        );
        assert_eq!(
            dominant_width(&out.samples, p1 + settle, p2),
            Some(Width::W10),
            "phase 1"
        );
        assert_eq!(
            dominant_width(&out.samples, p2 + settle, p3),
            Some(Width::W5),
            "phase 2"
        );
        assert_eq!(
            dominant_width(&out.samples, p3 + settle, p4),
            Some(Width::W10),
            "phase 3"
        );
        assert_eq!(
            dominant_width(&out.samples, p4 + settle, p5),
            Some(Width::W20),
            "phase 4"
        );
        assert_eq!(out.violations, 0);
    }
}
