//! Figure 11: impact of background traffic on throughput.
//!
//! "There are X background AP/client-pairs in the system, each being
//! randomly assigned to one of the free UHF channels, and each sending
//! at a packet interval delay of 30 ms. … WhiteFi achieves close to
//! optimal performance for varying degree of background traffic. With
//! little or no background traffic, WhiteFi performs as well as picking
//! the widest available channel (OPT 20 MHz) … As the traffic increases
//! … OPT 10 MHz becomes better (at about 10 background AP/client-pairs).
//! Even at this point WhiteFi performs near-optimally … WhiteFi is
//! always within 14% of the optimal value throughput OPT."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use rand::Rng;
use serde_json::json;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario, StaticBaselines};
use whitefi_phy::SimDuration;
use whitefi_repro::campus_sim_map;
use whitefi_spectrum::{WfChannel, Width};

/// Builds the Figure 11 scenario for `pairs` background pairs.
pub fn scenario(pairs: usize, seed: u64, quick: bool) -> Scenario {
    let map = campus_sim_map();
    let mut s = Scenario::new(seed, map, 4);
    s.warmup = SimDuration::from_secs(2);
    s.duration = if quick {
        SimDuration::from_secs(3)
    } else {
        SimDuration::from_secs(6)
    };
    let free: Vec<usize> = map.free_channels().map(|c| c.index()).collect();
    let mut rng = super::rng(seed ^ 0xbac0);
    for _ in 0..pairs {
        let ch = free[rng.gen_range(0..free.len())];
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(30),
            },
        });
    }
    s
}

/// One simulated run at `(pairs, seed)`: per-client
/// `(whitefi, opt5, opt10, opt20, opt)` in Mbps.
pub fn one_run(pairs: usize, seed: u64, quick: bool) -> (f64, f64, f64, f64, f64) {
    let s = scenario(pairs, seed, quick);
    let n = s.client_maps.len() as f64;
    let wf = run_whitefi(&s, None);
    let base = StaticBaselines::measure(&s);
    (
        wf.aggregate_mbps / n,
        base.opt5 / n,
        base.opt10 / n,
        base.opt20 / n,
        base.opt / n,
    )
}

/// Measured per-client throughputs for one point, averaged over seeds:
/// `(whitefi, opt5, opt10, opt20, opt)` in Mbps per client.
pub fn point(pairs: usize, seeds: &[u64], quick: bool) -> (f64, f64, f64, f64, f64) {
    mean_runs(
        &seeds
            .iter()
            .map(|&s| one_run(pairs, s, quick))
            .collect::<Vec<_>>(),
    )
}

fn mean_runs(runs: &[(f64, f64, f64, f64, f64)]) -> (f64, f64, f64, f64, f64) {
    let col =
        |f: fn(&(f64, f64, f64, f64, f64)) -> f64| mean(&runs.iter().map(f).collect::<Vec<_>>());
    (
        col(|r| r.0),
        col(|r| r.1),
        col(|r| r.2),
        col(|r| r.3),
        col(|r| r.4),
    )
}

/// Runs the background-traffic sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let quick = ctx.quick();
    let (points, seeds): (&[usize], Vec<u64>) = if quick {
        (&[0, 8, 17], vec![ctx.seed(5000)])
    } else {
        (
            &[0, 2, 5, 8, 10, 13, 17],
            (0..5).map(|i| ctx.seed(5000 + i)).collect(),
        )
    };
    let mut report = ExperimentReport::new(
        "fig11",
        "Per-client throughput (Mbps) vs number of background pairs",
        &[
            "pairs",
            "whitefi",
            "opt5",
            "opt10",
            "opt20",
            "opt",
            "wf_over_opt",
        ],
    );
    // Fan every (point, seed) trial's WhiteFi run *and* every OPT
    // candidate's fixed run out as independent work units (the sweep
    // fan-out), then average per point in seed order.
    let scenarios: Vec<Scenario> = (0..points.len() * seeds.len())
        .map(|k| scenario(points[k / seeds.len()], seeds[k % seeds.len()], quick))
        .collect();
    let runs: Vec<(f64, f64, f64, f64, f64)> = super::sweep::measure_all(ctx, &scenarios)
        .iter()
        .zip(&scenarios)
        .map(|(out, s)| {
            let n = s.client_maps.len() as f64;
            let b = out.baselines;
            (
                out.whitefi_aggregate_mbps / n,
                b.opt5 / n,
                b.opt10 / n,
                b.opt20 / n,
                b.opt / n,
            )
        })
        .collect();
    let mut worst_frac: f64 = 1.0;
    for (pi, &pairs) in points.iter().enumerate() {
        let (w, o5, o10, o20, o) = mean_runs(&runs[pi * seeds.len()..(pi + 1) * seeds.len()]);
        let frac = if o > 0.0 { w / o } else { 1.0 };
        worst_frac = worst_frac.min(frac);
        report.push_row(&[
            ("pairs", json!(pairs)),
            ("whitefi", round4(w)),
            ("opt5", round4(o5)),
            ("opt10", round4(o10)),
            ("opt20", round4(o20)),
            ("opt", round4(o)),
            ("wf_over_opt", round4(frac)),
        ]);
    }
    report.note(format!(
        "worst WhiteFi/OPT fraction {worst_frac:.3} (paper: always within 14% of OPT)"
    ));
    report.note(
        "OPT-20 degrades as pairs increase; narrower static widths catch up — no single best width",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_background_whitefi_matches_opt20() {
        let (w, _o5, _o10, o20, o) = point(0, &[9000], true);
        assert!(w > 0.8 * o20, "whitefi {w} vs opt20 {o20}");
        assert!(w > 0.8 * o, "whitefi {w} vs opt {o}");
    }

    #[test]
    fn heavy_background_still_near_opt() {
        let (w, _, _, o20, o) = point(14, &[9100], true);
        assert!(w > 0.7 * o, "whitefi {w} vs opt {o}");
        // And the widest static choice is no longer clearly dominant.
        assert!(o20 < 1.3 * o, "opt20 {o20} opt {o}");
    }
}
