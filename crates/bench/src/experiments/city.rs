//! Scale: city-wide multi-AP simulation on the influence-sharded
//! parallel event core (DESIGN.md §13).
//!
//! Lays a grid of WhiteFi cells (urban/suburban/rural locale mix) with
//! sites spaced beyond radio range, so the influence graph decomposes
//! into one component per cell and the shard planner can balance
//! freely — the regime where sharding pays and the one the paper's
//! deployment model (disjoint home networks, §5.1) corresponds to.
//! Coupled topologies (range above spacing) are the differential
//! suite's territory; they reduce the available parallelism to the
//! component structure without changing the outcome.
//!
//! Each row runs the same city at one shard count with a worker pool
//! sized to that count, and reports groups, components, barrier rounds,
//! handled events, events/sec and wall time. Every sharded outcome is
//! asserted byte-identical to the unsharded reference before the row is
//! emitted, and every run must stay oracle-clean (the experiments
//! binary additionally gates on the process-wide adaptive-violation
//! totals).
//!
//! Determinism note: outcome columns (`aggregate_mbps`, `sync_rounds`,
//! `events_handled`, …) are pure functions of the scenario; the timing
//! columns (`wall_s`, `events_per_sec`, `speedup`) are wall-clock
//! measurements and vary run to run. `scripts/bench_compare.sh` tracks
//! the experiment's total wall time across runs via
//! `results/BENCH_experiments.json`, which also embeds these scaling
//! rows.

use crate::report::{round4, ExperimentReport};
use crate::runner::{RunCtx, Runner};
use serde_json::json;
use whitefi::{merge_city, run_city_group, shard_plan, CityOutcome, CityRunStats, CityScenario};
use whitefi_phy::SimDuration;

/// The bench city: `n_aps` cells on a grid spaced beyond radio range
/// (150 m spacing, 60 m range), locale mix drawn from the seed.
pub fn bench_city(
    seed: u64,
    n_aps: usize,
    clients_per_ap: usize,
    duration: SimDuration,
) -> CityScenario {
    let mut city = CityScenario::grid(seed, n_aps, clients_per_ap, 150.0, 60.0);
    city.warmup = SimDuration::from_millis(300);
    city.duration = duration;
    city.sample_interval = SimDuration::from_millis(100);
    city
}

/// Runs `city` at the given shard count on a worker pool of the same
/// size (a scaling row measures "S shards on S workers", independent of
/// the harness `--jobs` budget) and returns the merged outcome, the run
/// stats and the measured wall seconds. The outcome is a pure function
/// of `(city, shards)` — only the wall time varies.
pub fn timed_run(
    ctx: &RunCtx,
    city: &CityScenario,
    shards: usize,
) -> (CityOutcome, CityRunStats, f64) {
    let plan = shard_plan(city, shards);
    let n_groups = plan.groups.len();
    let pool = Runner::new(shards, 0);
    let (groups, wall_s) =
        ctx.time(|| pool.map(n_groups, |g| run_city_group(city, &plan.groups[g])));
    let (outcome, sync_rounds, events) = merge_city(city, groups);
    (
        outcome,
        CityRunStats {
            groups: n_groups,
            components: plan.components,
            sync_rounds,
            events,
        },
        wall_s,
    )
}

/// Runs one city size across a ladder of shard counts (ascending, first
/// entry the unsharded reference), asserting byte-identity and
/// cleanliness per row, and returns the peak speedup observed.
fn scale_rows(
    ctx: &RunCtx,
    report: &mut ExperimentReport,
    city: &CityScenario,
    n_aps: usize,
    shard_counts: &[usize],
) -> f64 {
    let mut base: Option<(CityOutcome, f64)> = None;
    let mut peak = 0.0f64;
    for &shards in shard_counts {
        let (outcome, stats, wall_s) = timed_run(ctx, city, shards);
        assert_eq!(
            outcome.violations(),
            0,
            "{n_aps} APs / {shards} shards: incumbent violations"
        );
        assert_eq!(
            outcome.oracle_violations(),
            0,
            "{n_aps} APs / {shards} shards: oracle violations"
        );
        if let Some((reference, _)) = &base {
            assert!(
                *reference == outcome,
                "{n_aps} APs: {shards}-shard outcome diverged from the unsharded \
                 reference — influence sharding unsound"
            );
        }
        let wall_ref = base.as_ref().map_or(wall_s, |&(_, w)| w);
        let speedup = if wall_s > 0.0 { wall_ref / wall_s } else { 1.0 };
        peak = peak.max(speedup);
        // Event totals are bounded well below 2^53, so the cast is exact.
        #[allow(clippy::cast_precision_loss)]
        let events_per_sec = if wall_s > 0.0 {
            (stats.events.handled as f64 / wall_s).round()
        } else {
            0.0
        };
        report.push_row(&[
            ("aps", json!(n_aps)),
            ("nodes", json!(city.total_nodes())),
            ("shards", json!(shards)),
            ("groups", json!(stats.groups)),
            ("components", json!(stats.components)),
            ("sync_rounds", json!(stats.sync_rounds)),
            ("events_handled", json!(stats.events.handled)),
            ("events_per_sec", json!(events_per_sec)),
            ("wall_s", round4(wall_s)),
            ("speedup", round4(speedup)),
            ("aggregate_mbps", round4(outcome.aggregate_mbps)),
        ]);
        if base.is_none() {
            base = Some((outcome, wall_s));
        }
    }
    peak
}

/// Runs the city scaling ladder.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "city",
        "City-scale sharded simulation: wall time vs shard count",
        &[
            "aps",
            "nodes",
            "shards",
            "groups",
            "components",
            "sync_rounds",
            "events_handled",
            "events_per_sec",
            "wall_s",
            "speedup",
            "aggregate_mbps",
        ],
    );
    let (n_aps, clients, shard_counts, duration): (usize, usize, &[usize], SimDuration) =
        if ctx.quick() {
            (16, 1, &[1, 4], SimDuration::from_millis(500))
        } else {
            (64, 2, &[1, 2, 4, 8], SimDuration::from_millis(1_500))
        };
    let city = bench_city(ctx.seed(9_100), n_aps, clients, duration);
    let peak = scale_rows(ctx, &mut report, &city, n_aps, shard_counts);
    report.note(format!(
        "{n_aps} APs: sharded outcomes byte-identical to the unsharded reference; \
         peak speedup {peak:.2}x (wall-clock, machine-dependent)"
    ));
    if !ctx.quick() {
        // The headline city scale: ~1000 APs, 2000 nodes, a short
        // measurement window. Runs under the full per-cell oracle banks;
        // the assertions in `scale_rows` (and the process-wide
        // adaptive-violation gate in the experiments binary) require it
        // to finish clean.
        let n_aps = 1_000;
        let big = bench_city(ctx.seed(9_200), n_aps, 1, SimDuration::from_millis(400));
        let peak = scale_rows(ctx, &mut report, &big, n_aps, &[1, 8]);
        report.note(format!(
            "{n_aps} APs: completed oracle-clean; 8-shard speedup {peak:.2}x"
        ));
    }
    report.note(
        "timing columns (wall_s, events_per_sec, speedup) are wall-clock measurements; \
         all other columns are deterministic functions of the scenario",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_city_decomposes_per_cell_and_shards_exactly() {
        let ctx = RunCtx::sequential(true);
        let city = bench_city(5, 6, 1, SimDuration::from_millis(300));
        let (reference, stats1, _) = timed_run(&ctx, &city, 1);
        assert_eq!(stats1.groups, 1);
        assert_eq!(stats1.components, 6, "bench grid cells must decouple");
        let (out, stats, _) = timed_run(&ctx, &city, 3);
        assert_eq!(stats.groups, 3);
        assert_eq!(reference, out, "pooled run diverged from sequential");
        assert_eq!(out.violations(), 0);
        assert_eq!(out.oracle_violations(), 0);
    }

    #[test]
    fn quick_report_has_expected_shape() {
        let report = run(&RunCtx::sequential(true));
        assert_eq!(report.rows.len(), 2);
        assert!(report.validate().is_ok());
        for row in &report.rows {
            assert_eq!(row["aps"].as_f64(), Some(16.0));
            assert_eq!(row["components"].as_f64(), Some(16.0));
        }
        // Identical outcomes across rows, by construction. (Scheduling
        // counters like sync_rounds legitimately differ per sharding.)
        assert_eq!(
            report.rows[0]["aggregate_mbps"],
            report.rows[1]["aggregate_mbps"]
        );
    }
}
