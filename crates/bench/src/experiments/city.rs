//! Scale: city-wide multi-AP simulation on the influence-sharded
//! parallel event core (DESIGN.md §13–14).
//!
//! Two city regimes, two ladders:
//!
//! * **Sparse** — a grid of WhiteFi cells spaced beyond radio range, so
//!   the influence graph decomposes into one component per cell and the
//!   component planner can balance freely: the regime where component
//!   sharding pays and the one the paper's deployment model (disjoint
//!   home networks, §5.1) corresponds to.
//! * **Dense urban** — the checkerboard pathology: every cell couples
//!   into one influence component, the component planner collapses to a
//!   single group (`largest_component_fraction == 1`), and only the
//!   cut partitioner (DESIGN.md §14) can recover parallelism. Those
//!   rows run with `partition == "cut"` and must certify silent
//!   (`fallback == false`) — the speedup they report is the tentpole
//!   before/after measurement for `scripts/bench_compare.sh`.
//!
//! Each row runs the same city at one shard count with a worker pool
//! sized to the executed group count, and reports groups, components,
//! barrier rounds, handled events, events/sec, wall time, and the new
//! partition-quality columns (largest component fraction, load
//! imbalance against the requested shard count, cut pairs, fallback).
//! Every sharded outcome is asserted byte-identical to the unsharded
//! reference before the row is emitted, and every run must stay
//! oracle-clean (the experiments binary additionally gates on the
//! process-wide adaptive-violation totals).
//!
//! Determinism note: outcome columns (`aggregate_mbps`, `sync_rounds`,
//! `events_handled`, …) are pure functions of the scenario; the timing
//! columns (`wall_s`, `events_per_sec`, `speedup`) are wall-clock
//! measurements and vary run to run. `scripts/bench_compare.sh` tracks
//! the experiment's total wall time across runs via
//! `results/BENCH_experiments.json`, which also embeds these scaling
//! rows.

use crate::report::{round4, ExperimentReport};
use crate::runner::{RunCtx, Runner};
use serde_json::json;
use whitefi::{
    largest_component_fraction, load_imbalance, merge_city, run_city_cut_group, run_city_group,
    shard_plan, shard_plan_cut, CityOutcome, CityPartition, CityRunStats, CityScenario,
};
use whitefi_mac::BoundaryBus;
use whitefi_phy::SimDuration;

/// The bench city: `n_aps` cells on a grid spaced beyond radio range
/// (150 m spacing, 60 m range), locale mix drawn from the seed.
pub fn bench_city(
    seed: u64,
    n_aps: usize,
    clients_per_ap: usize,
    duration: SimDuration,
) -> CityScenario {
    let mut city = CityScenario::grid(seed, n_aps, clients_per_ap, 150.0, 60.0);
    city.warmup = SimDuration::from_millis(300);
    city.duration = duration;
    city.sample_interval = SimDuration::from_millis(100);
    city
}

/// The bench dense-urban city: the checkerboard pathology (100 m
/// spacing, 105 m range, parity-alternating spectrum maps chained into
/// one influence component by a shared never-transmitted channel) with
/// the bench measurement cadence.
pub fn dense_city(
    seed: u64,
    n_aps: usize,
    clients_per_ap: usize,
    duration: SimDuration,
) -> CityScenario {
    let mut city = CityScenario::checkerboard(seed, n_aps, clients_per_ap);
    city.warmup = SimDuration::from_millis(300);
    city.duration = duration;
    city.sample_interval = SimDuration::from_millis(100);
    city
}

/// Runs `city` at the given shard count on a worker pool sized to the
/// executed group count (a scaling row measures "S shards on S
/// workers", independent of the harness `--jobs` budget) and returns
/// the merged outcome, the run stats and the measured wall seconds.
/// The outcome is a pure function of `(city, shards)` — partition mode
/// included, by the §14 identity contract — and only the wall time
/// varies.
///
/// `Cut` rows run every cut group concurrently on the pool: the pool
/// has exactly one worker per group, so each worker owns one group and
/// the blocking boundary exchange always has all its peers resident.
/// On cross-cut contact the attempt is discarded and the whole city is
/// rerun on the component plan *inside the timed window* — the row
/// honestly pays for the failed attempt.
pub fn timed_run(
    ctx: &RunCtx,
    city: &CityScenario,
    shards: usize,
    partition: CityPartition,
) -> (CityOutcome, CityRunStats, f64) {
    match partition {
        CityPartition::Components => {
            let plan = shard_plan(city, shards);
            let n_groups = plan.groups.len();
            let pool = Runner::new(shards, 0);
            let (groups, wall_s) =
                ctx.time(|| pool.map(n_groups, |g| run_city_group(city, &plan.groups[g])));
            let (outcome, sync_rounds, events) = merge_city(city, groups);
            (
                outcome,
                CityRunStats {
                    groups: n_groups,
                    components: plan.components,
                    sync_rounds,
                    events,
                    largest_component_fraction: largest_component_fraction(city),
                    load_imbalance: load_imbalance(city, &plan.groups, shards),
                    cut_pairs: 0,
                    fallback: false,
                },
                wall_s,
            )
        }
        CityPartition::Cut => {
            let plan = shard_plan_cut(city, shards);
            let n_groups = plan.groups.len();
            let pool = Runner::new(n_groups, 0);
            let bus = BoundaryBus::new(n_groups);
            let ((groups, fallback), wall_s) = ctx.time(|| {
                let tries = pool.map(n_groups, |g| run_city_cut_group(city, &plan, g, &bus));
                if tries.iter().any(Result::is_err) {
                    let base = shard_plan(city, shards);
                    let fb_pool = Runner::new(shards, 0);
                    let groups =
                        fb_pool.map(base.groups.len(), |g| run_city_group(city, &base.groups[g]));
                    (groups, true)
                } else {
                    (tries.into_iter().filter_map(Result::ok).collect(), false)
                }
            });
            let (outcome, sync_rounds, events) = merge_city(city, groups);
            (
                outcome,
                CityRunStats {
                    groups: if fallback {
                        shard_plan(city, shards).groups.len()
                    } else {
                        n_groups
                    },
                    components: plan.components,
                    sync_rounds,
                    events,
                    largest_component_fraction: plan.largest_component_fraction,
                    load_imbalance: plan.load_imbalance,
                    cut_pairs: plan.cut_pairs.len(),
                    fallback,
                },
                wall_s,
            )
        }
    }
}

/// Runs one city across a ladder of `(shards, partition)` entries
/// (first entry the unsharded reference), asserting byte-identity and
/// cleanliness per row, and returns the peak speedup observed. When
/// `expect_silent_cut` is set, every `Cut` row must certify silent —
/// a fallback means the partitioner cut a pair the scenario actually
/// talks across, and the row's speedup claim would be a lie.
fn scale_rows(
    ctx: &RunCtx,
    report: &mut ExperimentReport,
    city: &CityScenario,
    n_aps: usize,
    ladder: &[(usize, CityPartition)],
    expect_silent_cut: bool,
) -> f64 {
    let mut base: Option<(CityOutcome, f64)> = None;
    let mut peak = 0.0f64;
    for &(shards, partition) in ladder {
        let (outcome, stats, wall_s) = timed_run(ctx, city, shards, partition);
        assert_eq!(
            outcome.violations(),
            0,
            "{n_aps} APs / {shards} shards: incumbent violations"
        );
        assert_eq!(
            outcome.oracle_violations(),
            0,
            "{n_aps} APs / {shards} shards: oracle violations"
        );
        if expect_silent_cut && partition == CityPartition::Cut {
            assert!(
                !stats.fallback,
                "{n_aps} APs / {shards} shards: cut run fell back to the \
                 component plan — dense-urban ladder no longer measures the cut"
            );
        }
        if let Some((reference, _)) = &base {
            assert!(
                *reference == outcome,
                "{n_aps} APs: {shards}-shard {partition:?} outcome diverged from \
                 the unsharded reference — influence sharding unsound"
            );
        }
        let wall_ref = base.as_ref().map_or(wall_s, |&(_, w)| w);
        let speedup = if wall_s > 0.0 { wall_ref / wall_s } else { 1.0 };
        peak = peak.max(speedup);
        // Event totals are bounded well below 2^53, so the cast is exact.
        #[allow(clippy::cast_precision_loss)]
        let events_per_sec = if wall_s > 0.0 {
            (stats.events.handled as f64 / wall_s).round()
        } else {
            0.0
        };
        report.push_row(&[
            ("aps", json!(n_aps)),
            ("nodes", json!(city.total_nodes())),
            ("shards", json!(shards)),
            (
                "partition",
                json!(match partition {
                    CityPartition::Components => "components",
                    CityPartition::Cut => "cut",
                }),
            ),
            ("groups", json!(stats.groups)),
            ("components", json!(stats.components)),
            (
                "largest_component_fraction",
                round4(stats.largest_component_fraction),
            ),
            ("load_imbalance", round4(stats.load_imbalance)),
            ("cut_pairs", json!(stats.cut_pairs)),
            ("fallback", json!(stats.fallback)),
            ("sync_rounds", json!(stats.sync_rounds)),
            ("events_handled", json!(stats.events.handled)),
            ("events_per_sec", json!(events_per_sec)),
            ("wall_s", round4(wall_s)),
            ("speedup", round4(speedup)),
            ("aggregate_mbps", round4(outcome.aggregate_mbps)),
        ]);
        if base.is_none() {
            base = Some((outcome, wall_s));
        }
    }
    peak
}

/// Runs the city scaling ladder.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "city",
        "City-scale sharded simulation: wall time vs shard count",
        &[
            "aps",
            "nodes",
            "shards",
            "partition",
            "groups",
            "components",
            "largest_component_fraction",
            "load_imbalance",
            "cut_pairs",
            "fallback",
            "sync_rounds",
            "events_handled",
            "events_per_sec",
            "wall_s",
            "speedup",
            "aggregate_mbps",
        ],
    );
    use CityPartition::{Components, Cut};
    let (n_aps, clients, ladder, duration): (usize, usize, &[(usize, CityPartition)], SimDuration) =
        if ctx.quick() {
            (
                16,
                1,
                &[(1, Components), (4, Components)],
                SimDuration::from_millis(500),
            )
        } else {
            (
                64,
                2,
                &[
                    (1, Components),
                    (2, Components),
                    (4, Components),
                    (8, Components),
                ],
                SimDuration::from_millis(1_500),
            )
        };
    let city = bench_city(ctx.seed(9_100), n_aps, clients, duration);
    let peak = scale_rows(ctx, &mut report, &city, n_aps, ladder, false);
    report.note(format!(
        "{n_aps} APs sparse: sharded outcomes byte-identical to the unsharded \
         reference; peak speedup {peak:.2}x (wall-clock, machine-dependent)"
    ));
    // The dense-urban ladder: one influence component, so the component
    // planner is pinned at a single group (largest_component_fraction
    // 1.0, load imbalance == requested shards) and only the cut
    // partitioner parallelizes. Cut rows must certify silent.
    let (d_aps, d_ladder, d_duration): (usize, &[(usize, CityPartition)], SimDuration) =
        if ctx.quick() {
            (
                16,
                &[(1, Components), (4, Cut)],
                SimDuration::from_millis(400),
            )
        } else {
            (
                64,
                &[(1, Components), (2, Cut), (4, Cut), (8, Cut)],
                SimDuration::from_millis(800),
            )
        };
    let dense = dense_city(ctx.seed(9_300), d_aps, 1, d_duration);
    assert_eq!(
        shard_plan(&dense, 8).components,
        1,
        "dense city must chain into one component or the ladder measures nothing"
    );
    let d_peak = scale_rows(ctx, &mut report, &dense, d_aps, d_ladder, true);
    report.note(format!(
        "{d_aps} APs dense urban (components == 1): cut partitioner certified \
         silent on every row; peak cut speedup {d_peak:.2}x over the \
         single-group component plan"
    ));
    if !ctx.quick() {
        // The headline city scale: ~1000 APs, 2000 nodes, a short
        // measurement window. Runs under the full per-cell oracle banks;
        // the assertions in `scale_rows` (and the process-wide
        // adaptive-violation gate in the experiments binary) require it
        // to finish clean.
        let n_aps = 1_000;
        let big = bench_city(ctx.seed(9_200), n_aps, 1, SimDuration::from_millis(400));
        let peak = scale_rows(
            ctx,
            &mut report,
            &big,
            n_aps,
            &[(1, Components), (8, Components)],
            false,
        );
        report.note(format!(
            "{n_aps} APs: completed oracle-clean; 8-shard speedup {peak:.2}x"
        ));
    }
    report.note(
        "timing columns (wall_s, events_per_sec, speedup) are wall-clock measurements; \
         all other columns are deterministic functions of the scenario",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_city_decomposes_per_cell_and_shards_exactly() {
        let ctx = RunCtx::sequential(true);
        let city = bench_city(5, 6, 1, SimDuration::from_millis(300));
        let (reference, stats1, _) = timed_run(&ctx, &city, 1, CityPartition::Components);
        assert_eq!(stats1.groups, 1);
        assert_eq!(stats1.components, 6, "bench grid cells must decouple");
        let (out, stats, _) = timed_run(&ctx, &city, 3, CityPartition::Components);
        assert_eq!(stats.groups, 3);
        assert_eq!(reference, out, "pooled run diverged from sequential");
        assert_eq!(out.violations(), 0);
        assert_eq!(out.oracle_violations(), 0);
    }

    #[test]
    fn dense_city_cut_runs_pooled_and_matches_unsharded() {
        let ctx = RunCtx::sequential(true);
        let city = dense_city(7, 9, 1, SimDuration::from_millis(300));
        let (reference, stats1, _) = timed_run(&ctx, &city, 1, CityPartition::Components);
        assert_eq!(
            stats1.components, 1,
            "checkerboard must chain into one component"
        );
        assert_eq!(
            stats1.groups, 1,
            "component planner must be stuck at one group"
        );
        let (out, stats, _) = timed_run(&ctx, &city, 3, CityPartition::Cut);
        assert_eq!(stats.groups, 3, "cut planner must split the component");
        assert!(!stats.fallback, "checkerboard cut must certify silent");
        assert!(stats.cut_pairs > 0, "a real cut crosses influence pairs");
        assert_eq!(reference, out, "pooled cut run diverged from unsharded");
        assert_eq!(out.violations(), 0);
        assert_eq!(out.oracle_violations(), 0);
    }

    #[test]
    fn quick_report_has_expected_shape() {
        let report = run(&RunCtx::sequential(true));
        assert_eq!(report.rows.len(), 4);
        assert!(report.validate().is_ok());
        for row in &report.rows {
            assert_eq!(row["aps"].as_f64(), Some(16.0));
        }
        // Sparse pair: one component per cell, components partition.
        for row in &report.rows[..2] {
            assert_eq!(row["components"].as_f64(), Some(16.0));
            assert_eq!(row["partition"].as_str(), Some("components"));
        }
        // Dense pair: one component total; the second row is the cut and
        // must have certified silent.
        for row in &report.rows[2..] {
            assert_eq!(row["components"].as_f64(), Some(1.0));
            assert_eq!(row["largest_component_fraction"].as_f64(), Some(1.0));
        }
        assert_eq!(report.rows[2]["partition"].as_str(), Some("components"));
        assert_eq!(report.rows[2]["groups"].as_f64(), Some(1.0));
        assert_eq!(report.rows[3]["partition"].as_str(), Some("cut"));
        assert_eq!(report.rows[3]["groups"].as_f64(), Some(4.0));
        assert_eq!(report.rows[3]["fallback"].as_bool(), Some(false));
        assert!(report.rows[3]["cut_pairs"].as_f64() > Some(0.0));
        // Identical outcomes within each city, by construction.
        // (Scheduling counters like sync_rounds legitimately differ per
        // sharding.)
        assert_eq!(
            report.rows[0]["aggregate_mbps"],
            report.rows[1]["aggregate_mbps"]
        );
        assert_eq!(
            report.rows[2]["aggregate_mbps"],
            report.rows[3]["aggregate_mbps"]
        );
    }
}
