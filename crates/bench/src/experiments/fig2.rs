//! Figure 2: expected spectrum fragmentation after the US DTV transition.
//!
//! Histogram of contiguous free-fragment widths for 10 synthetic locales
//! per class (the TV Fool substitute; see `DESIGN.md` §2). The shape
//! targets from the paper: "in all 3 settings there is at least one
//! locale in which there is a fragment of 4 contiguous channels … In
//! rural areas fragments of up to 16 channels are expected", and "rural
//! and suburban regions exhibit a much lower degree of fragmentation and
//! more contiguous spectrum than urban areas".

use crate::report::ExperimentReport;
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_spectrum::{fragment_histogram, Locale, LocaleClass, NUM_UHF_CHANNELS};

/// Runs the fragmentation histogram for all three locale classes.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let locales_per_class = if ctx.quick() { 10 } else { 40 };
    let mut report = ExperimentReport::new(
        "fig2",
        "Contiguous free-fragment width histogram by locale class",
        &["fragment_width"],
    );
    // Locale draws within a class share one RNG, so the unit is the class.
    let hists = ctx.map(LocaleClass::ALL.len(), |i| {
        let class = LocaleClass::ALL[i];
        let mut rng = super::rng(ctx.seed(2000 + i as u64));
        let maps: Vec<_> = Locale::sample_many(class, locales_per_class, &mut rng)
            .into_iter()
            .map(|l| l.map)
            .collect();
        (class.label(), fragment_histogram(maps.iter()))
    });
    let max_width = hists
        .iter()
        .flat_map(|(_, h)| (1..=NUM_UHF_CHANNELS).filter(|&w| h[w] > 0))
        .max()
        .unwrap_or(1);
    for w in 1..=max_width {
        let mut pairs: Vec<(&str, serde_json::Value)> = vec![("fragment_width", json!(w))];
        for (label, h) in &hists {
            pairs.push((label, json!(h[w])));
        }
        report.push_row(&pairs);
    }
    // Shape notes.
    for (label, h) in &hists {
        let ge4: usize = h[4..].iter().sum();
        let widest = (1..=NUM_UHF_CHANNELS)
            .filter(|&w| h[w] > 0)
            .max()
            .unwrap_or(0);
        report.note(format!(
            "{label}: {ge4} fragments of >=4 channels (24 MHz), widest {widest} channels"
        ));
    }
    let widest = |label: &str| {
        hists
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, h)| {
                (1..=NUM_UHF_CHANNELS)
                    .filter(|&w| h[w] > 0)
                    .max()
                    .unwrap_or(0)
            })
            // lint:allow(unwrap, the three labels are pushed unconditionally in the loop above; a miss is a harness bug)
            .expect("histogram label present")
    };
    report.note(format!(
        "rural widest ({}) > suburban ({}) > urban ({}) — matches the paper's ordering",
        widest("rural"),
        widest("suburban"),
        widest("urban")
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_shape_matches_paper() {
        let r = run(&RunCtx::sequential(false));
        assert!(!r.rows.is_empty());
        // Every class reaches a ≥4-channel fragment; rural reaches ≥10.
        for note in &r.notes {
            if note.starts_with("rural:") {
                let widest: usize = note
                    .rsplit_once("widest ")
                    .unwrap()
                    .1
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap();
                assert!(widest >= 10, "{note}");
            }
            if note.contains("fragments of >=4") {
                let n: usize = note
                    .split(": ")
                    .nth(1)
                    .unwrap()
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap();
                assert!(n >= 1, "{note}");
            }
        }
    }
}
