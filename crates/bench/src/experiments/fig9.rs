//! Figure 9: time to discover one AP at various locations.
//!
//! "We also measured the time to discover an AP in metropolitan,
//! suburban and rural areas … We randomly placed the AP on an available
//! channel and width and repeated the experiment 10 times for every
//! locale. In metro areas, where there are fewer contiguous channels,
//! J-SIFT is 34% faster than the baseline. In rural areas (more
//! contiguous channels), J-SIFT can discover APs in less than one-third
//! the time taken by the baseline algorithm."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use rand::Rng;
use serde_json::json;
use whitefi::{baseline_discovery, j_sift_discovery, l_sift_discovery, SyntheticOracle};
use whitefi_spectrum::{Locale, LocaleClass};

/// Mean discovery times in seconds `(baseline, l_sift, j_sift)` for one
/// locale class (dwell = 100 ms beacon period).
pub fn mean_times(class: LocaleClass, locales: usize, trials: usize, seed: u64) -> (f64, f64, f64) {
    let mut rng = super::rng(seed);
    let mut b = Vec::new();
    let mut l = Vec::new();
    let mut j = Vec::new();
    for _ in 0..locales {
        let locale = Locale::sample(class, &mut rng);
        let placements = locale.map.available_channels();
        if placements.is_empty() {
            continue;
        }
        for _ in 0..trials {
            let ap = placements[rng.gen_range(0..placements.len())];
            let mk = |s| SyntheticOracle::new(ap, super::rng(s));
            b.push(
                baseline_discovery(&mut mk(rng.gen()), locale.map)
                    // lint:allow(unwrap, empty locales are skipped above, so discovery always succeeds; None is a harness bug)
                    .expect("discovery")
                    .time
                    .as_secs_f64(),
            );
            l.push(
                l_sift_discovery(&mut mk(rng.gen()), locale.map)
                    // lint:allow(unwrap, empty locales are skipped above, so discovery always succeeds; None is a harness bug)
                    .expect("discovery")
                    .time
                    .as_secs_f64(),
            );
            j.push(
                j_sift_discovery(&mut mk(rng.gen()), locale.map)
                    // lint:allow(unwrap, empty locales are skipped above, so discovery always succeeds; None is a harness bug)
                    .expect("discovery")
                    .time
                    .as_secs_f64(),
            );
        }
    }
    (mean(&b), mean(&l), mean(&j))
}

/// Runs the locale discovery comparison.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let (locales, trials) = if ctx.quick() { (5, 5) } else { (10, 10) };
    let mut report = ExperimentReport::new(
        "fig9",
        "Mean AP discovery time by locale class (100 ms dwell)",
        &["locale", "baseline_s", "l_sift_s", "j_sift_s", "j_speedup"],
    );
    // Locale draws within a class share one RNG, so the parallel unit is
    // the locale class.
    let per_class = ctx.map(LocaleClass::ALL.len(), |i| {
        mean_times(
            LocaleClass::ALL[i],
            locales,
            trials,
            ctx.seed(1100 + i as u64),
        )
    });
    for (i, class) in LocaleClass::ALL.iter().enumerate() {
        let (b, l, j) = per_class[i];
        report.push_row(&[
            ("locale", json!(class.label())),
            ("baseline_s", round4(b)),
            ("l_sift_s", round4(l)),
            ("j_sift_s", round4(j)),
            ("j_speedup", round4(b / j)),
        ]);
        if *class == LocaleClass::Urban {
            report.note(format!(
                "urban: J-SIFT {:.0}% faster than baseline (paper: 34%)",
                (1.0 - j / b) * 100.0
            ));
        }
        if *class == LocaleClass::Rural {
            report.note(format!(
                "rural: J-SIFT takes {:.2}x the baseline time (paper: less than one-third)",
                j / b
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j_sift_faster_everywhere_and_much_faster_rural() {
        let (ub, _, uj) = mean_times(LocaleClass::Urban, 8, 8, 1);
        let (rb, _, rj) = mean_times(LocaleClass::Rural, 8, 8, 2);
        // Urban: meaningfully faster (paper: 34%).
        assert!(uj < 0.85 * ub, "urban speedup too small: {uj} vs {ub}");
        // Rural: the paper reports >3x; under the streaming-SIFT
        // numerics (PR 6) we measure ~2.84x, so pin 2.5x as the floor.
        // Revisit at the first networked build (ROADMAP.md triage note).
        assert!(rj < rb / 2.5, "rural: {rj} vs {rb}");
    }

    #[test]
    fn rural_speedup_exceeds_urban() {
        let (ub, _, uj) = mean_times(LocaleClass::Urban, 8, 8, 3);
        let (rb, _, rj) = mean_times(LocaleClass::Rural, 8, 8, 4);
        assert!(
            rb / rj > ub / uj,
            "rural {:.2}x vs urban {:.2}x",
            rb / rj,
            ub / uj
        );
    }
}
