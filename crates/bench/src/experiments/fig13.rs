//! Figure 13: impact of churn on throughput.
//!
//! "There are a total of 34 background AP/client-pairs, two per free UHF
//! channel. In order to model churn, we model background nodes using a
//! simple discrete Markov chain with two states (A=active, P=passive). A
//! background node in the active state transmits CBR traffic with 60 ms
//! inter-packet delay. … The extreme cases are (i) all nodes are always
//! in state P, (ii) nodes are in each state with equal likelihood and
//! they remain in their current state for an average of 30 seconds, and
//! (iii) all nodes are always in state A. … For high churn … always
//! picking the widest channel (OPT 20 MHz) becomes the worst performing
//! algorithm. Instead, WhiteFi is better than any static channel width
//! choice. In fact, WhiteFi even outperforms OPT [because] OPT is the
//! optimal *static* channel selection throughout the entire execution …
//! WhiteFi is adaptive and can adjust to the current values of
//! background traffic."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario, StaticBaselines};
use whitefi_phy::SimDuration;
use whitefi_repro::campus_sim_map;
use whitefi_spectrum::{WfChannel, Width};

/// A churn sweep point: mean dwell in each state (zero mean = never in
/// that state).
#[derive(Debug, Clone, Copy)]
pub struct ChurnPoint {
    /// Label for the report.
    pub label: &'static str,
    /// Mean active dwell (s); 0 = never active.
    pub active_s: u64,
    /// Mean passive dwell (s); 0 = never passive.
    pub passive_s: u64,
}

/// The sweep, from all-passive to all-active (the paper's x-axis).
pub const SWEEP: [ChurnPoint; 6] = [
    ChurnPoint {
        label: "all-passive",
        active_s: 0,
        passive_s: 3600,
    },
    ChurnPoint {
        label: "1/3 active, 45s",
        active_s: 30,
        passive_s: 60,
    },
    ChurnPoint {
        label: "1/2 active, 30s",
        active_s: 30,
        passive_s: 30,
    },
    ChurnPoint {
        label: "1/2 active, 10s",
        active_s: 10,
        passive_s: 10,
    },
    ChurnPoint {
        label: "2/3 active, 45s",
        active_s: 60,
        passive_s: 30,
    },
    ChurnPoint {
        label: "all-active",
        active_s: 3600,
        passive_s: 0,
    },
];

/// Builds the Figure 13 scenario.
pub fn scenario(pt: ChurnPoint, seed: u64, quick: bool) -> Scenario {
    let map = campus_sim_map();
    let mut s = Scenario::new(seed, map, 4);
    s.warmup = SimDuration::from_secs(2);
    s.duration = if quick {
        SimDuration::from_secs(20)
    } else {
        SimDuration::from_secs(40)
    };
    // Two pairs per free channel = 34 pairs on the 17-channel map.
    for ch in map.free_channels() {
        for _ in 0..2 {
            s.background.push(BackgroundPair {
                channel: WfChannel::from_parts(ch.index(), Width::W5),
                traffic: BackgroundTraffic::Markov {
                    interval: SimDuration::from_millis(60),
                    mean_active: SimDuration::from_secs(pt.active_s),
                    mean_passive: SimDuration::from_secs(pt.passive_s),
                },
            });
        }
    }
    s
}

/// One simulated run at `(pt, seed)`: `(whitefi, opt, opt20, opt5)`.
pub fn one_run(pt: ChurnPoint, seed: u64, quick: bool) -> (f64, f64, f64, f64) {
    let s = scenario(pt, seed, quick);
    let n = s.client_maps.len() as f64;
    let w = run_whitefi(&s, None).aggregate_mbps / n;
    let base = StaticBaselines::measure(&s);
    (w, base.opt / n, base.opt20 / n, base.opt5 / n)
}

/// One churn point averaged over seeds: `(whitefi, opt, opt20, opt5)`.
pub fn point(pt: ChurnPoint, seeds: &[u64], quick: bool) -> (f64, f64, f64, f64) {
    mean_runs(
        &seeds
            .iter()
            .map(|&s| one_run(pt, s, quick))
            .collect::<Vec<_>>(),
    )
}

fn mean_runs(runs: &[(f64, f64, f64, f64)]) -> (f64, f64, f64, f64) {
    let col = |f: fn(&(f64, f64, f64, f64)) -> f64| mean(&runs.iter().map(f).collect::<Vec<_>>());
    (col(|r| r.0), col(|r| r.1), col(|r| r.2), col(|r| r.3))
}

/// Runs the churn sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let quick = ctx.quick();
    let seeds: Vec<u64> = if quick {
        vec![ctx.seed(8000)]
    } else {
        (0..2).map(|i| ctx.seed(8000 + i)).collect()
    };
    let sweep: &[ChurnPoint] = if quick {
        &[SWEEP[0], SWEEP[2], SWEEP[5]]
    } else {
        &SWEEP
    };
    let mut report = ExperimentReport::new(
        "fig13",
        "Per-client throughput (Mbps) vs background churn",
        &["churn", "whitefi", "opt", "opt20", "opt5", "wf_over_opt"],
    );
    // Sweep fan-out: one work unit per WhiteFi run and per OPT
    // candidate's fixed run, across all (point, seed) trials at once.
    let scenarios: Vec<Scenario> = (0..sweep.len() * seeds.len())
        .map(|k| scenario(sweep[k / seeds.len()], seeds[k % seeds.len()], quick))
        .collect();
    let runs: Vec<(f64, f64, f64, f64)> = super::sweep::measure_all(ctx, &scenarios)
        .iter()
        .zip(&scenarios)
        .map(|(out, s)| {
            let n = s.client_maps.len() as f64;
            (
                out.whitefi_aggregate_mbps / n,
                out.baselines.opt / n,
                out.baselines.opt20 / n,
                out.baselines.opt5 / n,
            )
        })
        .collect();
    for (pi, pt) in sweep.iter().enumerate() {
        let (w, o, o20, o5) = mean_runs(&runs[pi * seeds.len()..(pi + 1) * seeds.len()]);
        report.push_row(&[
            ("churn", json!(pt.label)),
            ("whitefi", round4(w)),
            ("opt", round4(o)),
            ("opt20", round4(o20)),
            ("opt5", round4(o5)),
            ("wf_over_opt", round4(if o > 0.0 { w / o } else { 1.0 })),
        ]);
    }
    report.note("under churn, WhiteFi adapts mid-run while OPT is the best *static* pick — WhiteFi can beat OPT (as in the paper)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_passive_equals_clean_spectrum() {
        let (w, _, o20, _) = point(SWEEP[0], &[8100], true);
        // With silent background, WhiteFi rides the widest channel.
        assert!(w > 0.8 * o20, "whitefi {w} vs opt20 {o20}");
        // Per-client share of a clean ~5 Mbps 20 MHz channel across 4
        // clients is ~1.2 Mbps.
        assert!(
            w > 1.0,
            "whitefi {w}/client too low for a clean 20 MHz channel"
        );
    }

    #[test]
    fn whitefi_competitive_under_churn() {
        let (w, o, ..) = point(SWEEP[3], &[8101], true);
        assert!(w > 0.75 * o, "whitefi {w} vs opt {o}");
    }

    #[test]
    fn all_active_reduces_everyones_throughput() {
        let (w_quiet, ..) = point(SWEEP[0], &[8102], true);
        let (w_busy, ..) = point(SWEEP[5], &[8102], true);
        assert!(w_busy < w_quiet, "{w_busy} !< {w_quiet}");
    }
}
