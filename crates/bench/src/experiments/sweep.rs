//! Shared fan-out for the driver-heavy sweeps (Figures 11–13).
//!
//! A sweep trial is one adaptive WhiteFi run plus a [`StaticBaselines`]
//! sweep over ~40 candidate channels — historically one sequential work
//! unit, which made the longest trial the wall-clock floor no matter
//! how many workers were free. Every candidate's fixed run is
//! independent of the others (and of the WhiteFi run), so
//! [`measure_all`] flattens *all* scenarios' runs into a single
//! [`RunCtx::map`] fan-out — one unit per WhiteFi run, one per
//! candidate — and reduces each scenario's candidate results with the
//! order-independent [`StaticBaselines::from_runs`]. Results are
//! reassembled in unit-index order, so output is byte-identical across
//! `--jobs` settings, exactly like every other fan-out in the harness.

use crate::runner::RunCtx;
use whitefi::driver::{run_fixed, run_whitefi, Scenario, StaticBaselines};
use whitefi_spectrum::WfChannel;

/// The measurements of one scenario in a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepOutcome {
    /// Aggregate WhiteFi goodput (Mbps); 0 when the scenario has no
    /// admissible channel at all (fully blocked spectrum).
    pub whitefi_aggregate_mbps: f64,
    /// The four static baselines (all zero when fully blocked).
    pub baselines: StaticBaselines,
}

/// Runs every scenario's WhiteFi trial and OPT candidate sweep as flat,
/// independent work units on the pool; returns one outcome per scenario
/// in input order. Scenarios whose combined map admits no channel get
/// all-zero outcomes and contribute no units (matching the sequential
/// early-return the fig12 sweep has always had).
pub fn measure_all(ctx: &RunCtx, scenarios: &[Scenario]) -> Vec<SweepOutcome> {
    // Per-unit descriptors: (scenario index, None = WhiteFi run,
    // Some(candidate) = fixed run).
    let candidates: Vec<Vec<WfChannel>> =
        scenarios.iter().map(StaticBaselines::candidates).collect();
    let mut units: Vec<(usize, Option<WfChannel>)> = Vec::new();
    for (si, cands) in candidates.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        units.push((si, None));
        units.extend(cands.iter().map(|&c| (si, Some(c))));
    }

    let results = ctx.map(units.len(), |k| {
        let (si, cand) = units[k];
        match cand {
            None => run_whitefi(&scenarios[si], None).aggregate_mbps,
            Some(c) => run_fixed(&scenarios[si], c).aggregate_mbps,
        }
    });

    let mut outcomes = vec![
        SweepOutcome {
            whitefi_aggregate_mbps: 0.0,
            baselines: StaticBaselines::from_runs([]),
        };
        scenarios.len()
    ];
    // Walk the flat results back into per-scenario outcomes: the
    // WhiteFi unit leads, its candidates follow.
    let mut cursor = 0;
    for (si, cands) in candidates.iter().enumerate() {
        if cands.is_empty() {
            continue;
        }
        outcomes[si].whitefi_aggregate_mbps = results[cursor];
        cursor += 1;
        let slice = &results[cursor..cursor + cands.len()];
        outcomes[si].baselines =
            StaticBaselines::from_runs(cands.iter().copied().zip(slice.iter().copied()));
        cursor += cands.len();
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_phy::SimDuration;
    use whitefi_spectrum::SpectrumMap;

    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::new(seed, SpectrumMap::all_free(), 1);
        s.warmup = SimDuration::from_millis(500);
        s.duration = SimDuration::from_secs(1);
        s
    }

    #[test]
    fn matches_sequential_measurement() {
        let scenarios = vec![tiny(41), tiny(42)];
        let fanned = measure_all(&RunCtx::new(true, 2, 0), &scenarios);
        for (s, got) in scenarios.iter().zip(&fanned) {
            let wf = run_whitefi(s, None);
            let base = StaticBaselines::measure(s);
            assert_eq!(got.whitefi_aggregate_mbps, wf.aggregate_mbps);
            assert_eq!(got.baselines, base);
        }
    }

    #[test]
    fn blocked_scenario_yields_zeros() {
        let mut blocked = tiny(43);
        blocked.ap_map = SpectrumMap::all_occupied();
        blocked.client_maps = vec![SpectrumMap::all_occupied()];
        let out = measure_all(&RunCtx::sequential(true), &[blocked]);
        assert_eq!(out[0].whitefi_aggregate_mbps, 0.0);
        assert_eq!(out[0].baselines.opt, 0.0);
    }
}
