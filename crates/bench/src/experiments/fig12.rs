//! Figure 12: impact of spatial variation on throughput.
//!
//! "There are 10 clients connected to the AP, and one background
//! client/AP-pair per UHF channel, transmitting at CBR with 30 ms
//! inter-packet delay. Spatial variation is modeled as follows. Each
//! client and the AP start with a common spectrum map. Then, for each
//! client (and AP) and for each UHF channel i, we randomly flip the
//! entry u_i with probability P [0 … 0.14]. … Because the AP needs to
//! select a channel that is free at all clients, no contiguous free
//! spectrum parts remain available for P > 0.1, and hence, the aggregate
//! throughput reduces to the throughput of a single UHF channel (5 MHz).
//! … no single channel width achieves close-to-optimal throughput in all
//! cases. On the other hand, WhiteFi is near-optimal in all cases."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario, StaticBaselines};
use whitefi_phy::SimDuration;
use whitefi_repro::campus_sim_map;
use whitefi_spectrum::{flip_map, WfChannel, Width};

/// Builds the Figure 12 scenario for flip probability `p`.
pub fn scenario(p: f64, seed: u64, quick: bool) -> Scenario {
    let base = campus_sim_map();
    let n_clients = if quick { 4 } else { 10 };
    let mut rng = super::rng(seed ^ 0x5a71);
    let mut s = Scenario::new(seed, base, n_clients);
    s.ap_map = flip_map(base, p, &mut rng);
    for m in s.client_maps.iter_mut() {
        *m = flip_map(base, p, &mut rng);
    }
    s.warmup = SimDuration::from_secs(2);
    s.duration = if quick {
        SimDuration::from_secs(3)
    } else {
        SimDuration::from_secs(6)
    };
    // One background pair per free (baseline) UHF channel at 30 ms CBR.
    for ch in base.free_channels() {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(ch.index(), Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(30),
            },
        });
    }
    s
}

/// One simulated run at `(p, seed)`:
/// `(whitefi, opt, opt20, widest_remaining_fragment)`.
pub fn one_run(p: f64, seed: u64, quick: bool) -> (f64, f64, f64, f64) {
    let s = scenario(p, seed, quick);
    let combined = s.combined_map();
    if combined.available_channels().is_empty() {
        // Fully blocked at this seed: zero throughput for everyone.
        return (0.0, 0.0, 0.0, 0.0);
    }
    let widest = combined.widest_fragment() as f64;
    let n = s.client_maps.len() as f64;
    let w = run_whitefi(&s, None).aggregate_mbps / n;
    let base = StaticBaselines::measure(&s);
    (w, base.opt / n, base.opt20 / n, widest)
}

/// One sweep point averaged over seeds:
/// `(whitefi, opt, opt20, widest_remaining_fragment)`.
pub fn point(p: f64, seeds: &[u64], quick: bool) -> (f64, f64, f64, f64) {
    mean_runs(
        &seeds
            .iter()
            .map(|&s| one_run(p, s, quick))
            .collect::<Vec<_>>(),
    )
}

fn mean_runs(runs: &[(f64, f64, f64, f64)]) -> (f64, f64, f64, f64) {
    let col = |f: fn(&(f64, f64, f64, f64)) -> f64| mean(&runs.iter().map(f).collect::<Vec<_>>());
    (col(|r| r.0), col(|r| r.1), col(|r| r.2), col(|r| r.3))
}

/// Runs the spatial-variation sweep.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let quick = ctx.quick();
    let (ps, seeds): (&[f64], Vec<u64>) = if quick {
        (&[0.0, 0.05, 0.12], vec![ctx.seed(6000)])
    } else {
        (
            &[0.0, 0.01, 0.03, 0.05, 0.08, 0.11, 0.14],
            (0..5).map(|i| ctx.seed(6000 + i)).collect(),
        )
    };
    let mut report = ExperimentReport::new(
        "fig12",
        "Per-client throughput (Mbps) vs spatial flip probability P",
        &["p", "whitefi", "opt", "opt20", "widest_fragment"],
    );
    // Sweep fan-out: each trial's WhiteFi run and each OPT candidate's
    // fixed run is its own work unit; fully blocked trials contribute
    // no units and come back as zeros (as the sequential early-return
    // always did).
    let scenarios: Vec<Scenario> = (0..ps.len() * seeds.len())
        .map(|k| scenario(ps[k / seeds.len()], seeds[k % seeds.len()], quick))
        .collect();
    let runs: Vec<(f64, f64, f64, f64)> = super::sweep::measure_all(ctx, &scenarios)
        .iter()
        .zip(&scenarios)
        .map(|(out, s)| {
            let combined = s.combined_map();
            if combined.available_channels().is_empty() {
                return (0.0, 0.0, 0.0, 0.0);
            }
            let n = s.client_maps.len() as f64;
            (
                out.whitefi_aggregate_mbps / n,
                out.baselines.opt / n,
                out.baselines.opt20 / n,
                combined.widest_fragment() as f64,
            )
        })
        .collect();
    let mut first = None;
    let mut last = None;
    for (pi, &p) in ps.iter().enumerate() {
        let (w, o, o20, widest) = mean_runs(&runs[pi * seeds.len()..(pi + 1) * seeds.len()]);
        if first.is_none() {
            first = Some(w);
        }
        last = Some(w);
        report.push_row(&[
            ("p", json!(p)),
            ("whitefi", round4(w)),
            ("opt", round4(o)),
            ("opt20", round4(o20)),
            ("widest_fragment", round4(widest)),
        ]);
    }
    if let (Some(f), Some(l)) = (first, last) {
        report.note(format!(
            "throughput falls from {f:.2} to {l:.2} Mbps/client as P grows — spatial variation destroys contiguous common spectrum"
        ));
    }
    report.note("WhiteFi tracks OPT across the sweep while OPT-20 collapses once no 20 MHz span survives at all nodes");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_decreases_with_spatial_variation() {
        let (w0, ..) = point(0.0, &[7000], true);
        let (w14, ..) = point(0.14, &[7000], true);
        assert!(
            w14 < 0.75 * w0,
            "P=0.14 ({w14}) should be well below P=0 ({w0})"
        );
    }

    #[test]
    fn whitefi_near_opt_at_moderate_variation() {
        let (w, o, ..) = point(0.05, &[7001], true);
        assert!(w > 0.7 * o, "whitefi {w} vs opt {o}");
    }

    #[test]
    fn high_variation_shrinks_common_fragments() {
        let (_, _, _, widest0) = point(0.0, &[7002], true);
        let (_, _, _, widest14) = point(0.14, &[7002], true);
        assert!(
            widest14 < widest0,
            "widest fragment should shrink: {widest0} -> {widest14}"
        );
    }
}
