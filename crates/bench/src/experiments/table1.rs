//! Table 1: SIFT's packet detection rate.
//!
//! "We started an iperf session from one KNOWS device, and measured the
//! number of packets received at a second device using a packet sniffer.
//! Simultaneously, we used the scanner of the second device to count the
//! number of packets detected by SIFT. We repeated this experiment for 5,
//! 10 and 20 MHz channel widths, and for each width, we varied the
//! traffic intensity [125 kbps to 1 Mbps]. All reported numbers are over
//! 10 runs. In every run, we sent 110 packets of size 1000 bytes each."
//!
//! A packet counts as *detected* when SIFT reports a data/ACK exchange of
//! the right width whose measured data length matches the transmitted one
//! (±5%) — the criterion that makes the 5 MHz low-amplitude packet head
//! occasionally fail, reproducing the table's slightly lower 5 MHz rates.

use crate::report::{median, round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi_phy::synth::{data_ack_exchange, duration_to_samples, Burst};
use whitefi_phy::{DetectionKind, PhyTiming, SimDuration, SimTime, Synthesizer};
use whitefi_spectrum::Width;

/// Offered loads of the paper's sweep, in kbps.
pub const RATES_KBPS: [u64; 5] = [125, 250, 500, 750, 1000];

/// Payload size per packet.
pub const PACKET_BYTES: usize = 1000;

/// Builds the burst schedule of an iperf-like CBR session: `count`
/// packets of [`PACKET_BYTES`] at `rate_kbps`, each a data/ACK exchange.
pub fn cbr_schedule(width: Width, rate_kbps: u64, count: usize) -> (Vec<Burst>, SimDuration) {
    let gap = SimDuration::from_nanos(PACKET_BYTES as u64 * 8 * 1_000_000 / rate_kbps);
    let mut bursts = Vec::with_capacity(count * 2);
    let mut t = SimTime::from_millis(1);
    for _ in 0..count {
        let ex = data_ack_exchange(t, width, PACKET_BYTES, 1000.0);
        bursts.extend(ex);
        t = t + gap.max(ex[1].start.since(t) + ex[1].duration + SimDuration::from_micros(200));
    }
    let window = t + SimDuration::from_millis(2);
    (bursts, SimDuration::from_nanos(window.as_nanos()))
}

/// Fraction of the `count` sent packets that SIFT detects with the right
/// width and a length-matched data burst.
pub fn detection_rate(width: Width, rate_kbps: u64, count: usize, seed: u64) -> f64 {
    let (bursts, window) = cbr_schedule(width, rate_kbps, count);
    let mut rng = super::rng(seed);
    let expected_len =
        duration_to_samples(PhyTiming::for_width(width).frame_duration(PACKET_BYTES));
    let (detections, _) = super::stream_sift(&Synthesizer::new(), &bursts, window, &mut rng);
    let detected = detections
        .into_iter()
        .filter(|d| {
            d.width == width
                && d.kind == DetectionKind::DataAck
                && (d.first_len as f64 - expected_len).abs() <= expected_len * 0.05
        })
        .count();
    detected.min(count) as f64 / count as f64
}

/// Runs the full Table 1 grid.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let (runs, count) = if ctx.quick() { (3u64, 40) } else { (10, 110) };
    let mut report = ExperimentReport::new(
        "table1",
        "SIFT packet detection rate (median over runs)",
        &["width_mhz"],
    );
    let widths = [Width::W5, Width::W10, Width::W20];
    // One parallel work unit per (width, rate) cell; each cell's trial
    // seeds depend only on its grid position, never on scheduling.
    let cells = ctx.map(widths.len() * RATES_KBPS.len(), |k| {
        let width = widths[k / RATES_KBPS.len()];
        let ri = k % RATES_KBPS.len();
        let rates: Vec<f64> = (0..runs)
            .map(|r| {
                detection_rate(
                    width,
                    RATES_KBPS[ri],
                    count,
                    ctx.seed(1000 + r * 31 + ri as u64),
                )
            })
            .collect();
        median(&rates)
    });
    let mut min_rate: f64 = 1.0;
    let mut w5_mean = 0.0;
    let mut wide_mean = 0.0;
    for (wi, width) in widths.iter().enumerate() {
        let mut pairs: Vec<(String, serde_json::Value)> = Vec::new();
        let label = format!("{}", width.mhz());
        pairs.push(("width_mhz".to_string(), json!(label)));
        for (ri, rate) in RATES_KBPS.iter().enumerate() {
            let med = cells[wi * RATES_KBPS.len() + ri];
            min_rate = min_rate.min(med);
            if *width == Width::W5 {
                w5_mean += med / RATES_KBPS.len() as f64;
            } else {
                wide_mean += med / (2.0 * RATES_KBPS.len() as f64);
            }
            pairs.push((format!("{:.3}M", *rate as f64 / 1000.0), round4(med)));
        }
        report.push_row_owned(pairs);
    }
    report.note(format!(
        "worst-case median detection rate {:.3} (paper: 0.97; worst loss 2–3%)",
        min_rate
    ));
    report.note(format!(
        "5 MHz mean {:.3} vs 10/20 MHz mean {:.3} — the 5 MHz low-amplitude head costs a little, as in the paper",
        w5_mean, wide_mean
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_rates_match_paper_shape() {
        // Abbreviated grid: every cell ≥ 0.95, wide widths ≥ 5 MHz cell.
        let w5 = detection_rate(Width::W5, 500, 60, 7);
        let w20 = detection_rate(Width::W20, 500, 60, 7);
        assert!(w5 >= 0.90, "5 MHz rate {w5}");
        assert!(w20 >= 0.97, "20 MHz rate {w20}");
        assert!(w20 >= w5 - 0.02);
    }

    #[test]
    fn schedule_respects_offered_load() {
        let (bursts, window) = cbr_schedule(Width::W20, 1000, 50);
        assert_eq!(bursts.len(), 100);
        // 50 packets at 1 Mbps of 8 kbit each → ≈ 0.4 s.
        let secs = window.as_secs_f64();
        assert!((secs - 0.4).abs() < 0.05, "window {secs}");
    }

    #[test]
    fn quick_report_has_three_width_rows() {
        let r = run(&RunCtx::sequential(true));
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns.len(), 6);
    }
}
