//! Section 4.2.2: analytic expected scan counts, checked by Monte Carlo.
//!
//! "The expected number of iterations until an AP is discovered is NC/2
//! [for L-SIFT] … While the worst-case discovery time of J-SIFT is the
//! same as for L-SIFT (NC), the expected discovery time can be shown to
//! be (NC + 2^(NW−1) + (NW−1)/2)/NW … we expect J-SIFT to outperform
//! L-SIFT when NC is greater than about 10 UHF channels."

use crate::report::{mean, round4, ExperimentReport};
use crate::runner::RunCtx;
use rand::Rng;
use serde_json::json;
use whitefi::{
    expected_scans_baseline, expected_scans_j_sift, expected_scans_l_sift, j_sift_discovery,
    l_sift_discovery, SyntheticOracle,
};
use whitefi_spectrum::{SpectrumMap, UhfChannel};

/// Monte-Carlo mean scans `(l_sift, j_sift)` for a contiguous band of
/// `nc` channels.
pub fn monte_carlo(nc: usize, trials: usize, seed: u64) -> (f64, f64) {
    let mut map = SpectrumMap::all_occupied();
    for i in 0..nc {
        map.set_free(UhfChannel::from_index(i));
    }
    let placements = map.available_channels();
    let mut rng = super::rng(seed);
    let mut l = Vec::new();
    let mut j = Vec::new();
    for _ in 0..trials {
        let ap = placements[rng.gen_range(0..placements.len())];
        let mut o = SyntheticOracle::new(ap, super::rng(rng.gen()));
        // lint:allow(unwrap, the map has `nc` free channels, so discovery always succeeds; None is a harness bug)
        l.push(l_sift_discovery(&mut o, map).expect("discovery").scans as f64);
        let mut o = SyntheticOracle::new(ap, super::rng(rng.gen()));
        // lint:allow(unwrap, the map has `nc` free channels, so discovery always succeeds; None is a harness bug)
        j.push(j_sift_discovery(&mut o, map).expect("discovery").scans as f64);
    }
    (mean(&l), mean(&j))
}

/// Runs the closed-form vs Monte-Carlo comparison.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let trials = if ctx.quick() { 100 } else { 500 };
    let mut report = ExperimentReport::new(
        "scan_analysis",
        "Expected scans: closed form vs Monte Carlo (NW = 3)",
        &[
            "nc",
            "l_theory",
            "l_measured",
            "j_theory",
            "j_measured",
            "baseline_theory",
        ],
    );
    let ncs = [2usize, 5, 8, 10, 12, 15, 20, 25, 30];
    let measured = ctx.map(ncs.len(), |i| {
        monte_carlo(ncs[i], trials, ctx.seed(1300 + ncs[i] as u64))
    });
    for (i, &nc) in ncs.iter().enumerate() {
        let (l, j) = measured[i];
        report.push_row(&[
            ("nc", json!(nc)),
            ("l_theory", round4(expected_scans_l_sift(nc))),
            ("l_measured", round4(l)),
            ("j_theory", round4(expected_scans_j_sift(nc, 3))),
            ("j_measured", round4(j)),
            ("baseline_theory", round4(expected_scans_baseline(nc, 3))),
        ]);
    }
    report.note("theory crossover: L-SIFT = J-SIFT at NC = 10 exactly");
    report.note(
        "measured counts include the decode endgame (one dwell for L-SIFT, up to span dwells for J-SIFT), so they sit slightly above the closed forms",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monte_carlo_tracks_theory() {
        let (l, j) = monte_carlo(30, 400, 1);
        // L-SIFT: NC/2 = 15 plus one decode.
        assert!((l - (expected_scans_l_sift(30) + 1.0)).abs() < 1.5, "l {l}");
        // J-SIFT: theory ≈ 11.67 plus an endgame of a few decodes.
        let jt = expected_scans_j_sift(30, 3);
        assert!(j >= jt - 1.0 && j <= jt + 4.0, "j {j} theory {jt}");
    }

    #[test]
    fn theory_crossover_at_ten() {
        assert!(expected_scans_l_sift(9) < expected_scans_j_sift(9, 3));
        assert!((expected_scans_l_sift(10) - expected_scans_j_sift(10, 3)).abs() < 1e-12);
        assert!(expected_scans_l_sift(11) > expected_scans_j_sift(11, 3));
    }
}
