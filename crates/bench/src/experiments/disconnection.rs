//! Section 5.3: handling disconnections.
//!
//! "We setup a client and an AP and started a data transfer between
//! them. Then we switched on a wireless microphone near the client. This
//! causes the client to disconnect, and it starts chirping on the backup
//! channel. In our experimental setup, the AP switched to the backup
//! channel once every 3 seconds, and picks up the chirp in at most 3
//! seconds. Immediately, the AP uses the spectrum assignment algorithm
//! to determine the best available channel to operate on, and the system
//! is operational again after a lag of at most 4 seconds."
//!
//! The mic lands only at the *client* (spatial variation!), so the AP
//! never detects it itself and the whole recovery runs through the
//! chirping protocol: client vacates → chirps on backup → AP's scanner
//! hears the chirps → AP reassigns and announces. We measure the gap
//! between mic onset and the first post-recovery traffic.

use crate::report::{round4, ExperimentReport};
use crate::runner::RunCtx;
use serde_json::json;
use whitefi::driver::{run_whitefi, Scenario};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_repro::{building5_map, scripted_mic};
use whitefi_spectrum::IncumbentSet;

/// The simulated mic onset instant.
pub const MIC_ONSET: SimTime = SimTime::from_secs(6);

/// Runs one trial; returns `(reconnect_lag_s, violations)`.
pub fn one_trial(seed: u64) -> (f64, u64) {
    let map = building5_map();
    let mut scenario = Scenario::new(seed, map, 1);
    // Initial channel will be the 20 MHz fragment (TV 26–30, centred at
    // index 7); the mic appears inside it, at the client only.
    let mut inc = IncumbentSet::default();
    inc.mics
        .push(scripted_mic(7, MIC_ONSET, SimTime::from_secs(120)));
    scenario.client_extra_incumbents[0] = Some(inc);
    scenario.warmup = SimDuration::from_secs(1);
    scenario.duration = SimDuration::from_secs(19);
    scenario.sample_interval = SimDuration::from_millis(50);
    let out = run_whitefi(&scenario, None);

    // Recovery: the first sample after onset where the AP has moved off
    // the blocked fragment AND traffic flows again.
    let mut recovered_at = None;
    for s in &out.samples {
        if s.t > MIC_ONSET
            && !s
                .ap_channel
                .contains(whitefi_spectrum::UhfChannel::from_index(7))
            && s.bytes_delta > 0
        {
            recovered_at = Some(s.t);
            break;
        }
    }
    let lag = recovered_at
        .map(|t| t.since(MIC_ONSET).as_secs_f64())
        .unwrap_or(f64::INFINITY);
    (lag, out.violations)
}

/// Runs the disconnection experiment over several seeds.
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let trials: usize = if ctx.quick() { 3 } else { 10 };
    let mut report = ExperimentReport::new(
        "disconnection",
        "Reconnection lag after a mic event at the client (s)",
        &["seed", "lag_s", "violations"],
    );
    let results = ctx.map(trials, |seed| one_trial(ctx.seed(3000 + seed as u64)));
    let mut max_lag: f64 = 0.0;
    for (seed, &(lag, violations)) in results.iter().enumerate() {
        max_lag = max_lag.max(lag);
        report.push_row(&[
            ("seed", json!(seed)),
            ("lag_s", round4(lag)),
            ("violations", json!(violations)),
        ]);
    }
    report.note(format!(
        "worst-case reconnection lag {max_lag:.2} s (paper: at most 4 s with a 3 s backup-scan period)"
    ));
    report.note("violations counts transmissions overlapping the live mic — must be 0");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconnects_within_paper_bound_without_violations() {
        for seed in [3100u64, 3101] {
            let (lag, violations) = one_trial(seed);
            assert!(lag <= 4.5, "seed {seed}: lag {lag}");
            assert_eq!(violations, 0, "seed {seed}: transmitted over the mic");
        }
    }
}
