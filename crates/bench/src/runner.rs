//! Deterministic parallel trial runner.
//!
//! Every experiment is a bag of independent seeded trials: each trial's
//! RNG seed is derived purely from the experiment's fixed base constants
//! and the trial index, never from execution order. The runner fans the
//! trial indices across a scoped-thread work pool (`std::thread::scope`
//! plus an `AtomicUsize` work index — no extra dependencies) and then
//! reassembles the results in index order, so the output of `--jobs N`
//! is byte-identical to `--jobs 1` by construction. A test in
//! `tests/determinism.rs` enforces this end-to-end through the real
//! experiment registry; the work-index / result-slot handoff pattern is
//! additionally model-checked under the deterministic interleaving
//! explorer in `tests/loom_models.rs` (the pool's sync primitives come
//! from `whitefi_mac::msync`, so the modelled algorithm and the
//! production code share one implementation — DESIGN.md §16).
//!
//! The runner also owns the `--seed` perturbation: a user seed of 0 (the
//! default) leaves every base seed untouched, keeping historical outputs
//! stable; any other value mixes it into each derived seed via
//! splitmix64.

use std::sync::atomic::Ordering;
use whitefi_mac::msync::{AtomicU64, AtomicUsize, Mutex};

/// The splitmix64 finalizer — a cheap, well-dispersed u64 mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Work-pool state shared by every trial of one experiment run.
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    user_seed: u64,
    trials: AtomicU64,
}

impl Runner {
    /// A runner executing up to `jobs` trials concurrently (clamped to at
    /// least 1). `user_seed = 0` keeps all derived seeds identical to the
    /// sequential historical outputs.
    pub fn new(jobs: usize, user_seed: u64) -> Self {
        Self {
            jobs: jobs.max(1),
            user_seed,
            trials: AtomicU64::new(0),
        }
    }

    /// The configured concurrency.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total trials dispatched through [`Runner::map`] so far.
    pub fn trials_run(&self) -> u64 {
        self.trials.load(Ordering::Relaxed)
    }

    /// Derives the effective seed for a trial from its base seed. The
    /// identity when no user seed is set, so default runs reproduce the
    /// historical byte-exact outputs.
    pub fn seed(&self, base: u64) -> u64 {
        if self.user_seed == 0 {
            base
        } else {
            splitmix64(base ^ splitmix64(self.user_seed))
        }
    }

    /// Runs `f(0), f(1), …, f(n-1)` across the work pool and returns the
    /// results in index order. `f` must derive all randomness from its
    /// index (via per-trial seeds), which makes the result independent of
    /// scheduling — parallel and sequential runs return identical vectors.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.trials.fetch_add(n as u64, Ordering::Relaxed);
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let done = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    done.lock().extend(local);
                });
            }
        });
        let mut indexed = done.into_inner();
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, v)| v).collect()
    }
}

/// Per-experiment execution context handed to every experiment runner:
/// the quick/full switch plus the trial pool.
#[derive(Debug)]
pub struct RunCtx {
    quick: bool,
    runner: Runner,
}

impl RunCtx {
    /// A context running trials on up to `jobs` threads.
    pub fn new(quick: bool, jobs: usize, user_seed: u64) -> Self {
        Self {
            quick,
            runner: Runner::new(jobs, user_seed),
        }
    }

    /// Today's single-threaded behaviour with unperturbed seeds.
    pub fn sequential(quick: bool) -> Self {
        Self::new(quick, 1, 0)
    }

    /// Whether the experiment should run its abbreviated grid.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The configured concurrency.
    pub fn jobs(&self) -> usize {
        self.runner.jobs()
    }

    /// Total trials dispatched so far.
    pub fn trials_run(&self) -> u64 {
        self.runner.trials_run()
    }

    /// See [`Runner::seed`].
    pub fn seed(&self, base: u64) -> u64 {
        self.runner.seed(base)
    }

    /// See [`Runner::map`].
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.runner.map(n, f)
    }

    /// Runs `f` and returns its result together with the elapsed wall
    /// time in seconds. The only sanctioned wall-clock access for
    /// experiment code: keeping the `Instant` here (inside the
    /// allowlisted runner) lets the determinism linter forbid clock
    /// reads everywhere simulation state lives.
    // lint:allow(taint, sanctioned experiment timing: wall seconds ride beside results and never feed sim state)
    pub fn time<T, F>(&self, f: F) -> (T, f64)
    where
        F: FnOnce() -> T,
    {
        let start = std::time::Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn trial(i: usize, seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ i as u64);
        (0..100).map(|_| rng.gen::<f64>()).sum()
    }

    #[test]
    fn map_preserves_index_order() {
        let r = Runner::new(8, 0);
        let out = r.map(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let seq = Runner::new(1, 0).map(40, |i| trial(i, 42));
        let par = Runner::new(7, 0).map(40, |i| trial(i, 42));
        assert_eq!(seq, par);
    }

    #[test]
    fn trials_are_counted() {
        let r = Runner::new(4, 0);
        r.map(25, |i| i);
        r.map(5, |i| i);
        assert_eq!(r.trials_run(), 30);
    }

    #[test]
    fn seed_zero_is_identity_nonzero_perturbs() {
        let plain = Runner::new(1, 0);
        assert_eq!(plain.seed(1234), 1234);
        assert_eq!(plain.seed(0), 0);
        let salted = Runner::new(1, 7);
        assert_ne!(salted.seed(1234), 1234);
        // Distinct bases stay distinct after perturbation.
        assert_ne!(salted.seed(1), salted.seed(2));
        // Same base, same user seed: stable.
        assert_eq!(salted.seed(9), Runner::new(1, 7).seed(9));
    }

    #[test]
    fn zero_and_single_item_maps() {
        let r = Runner::new(4, 0);
        assert!(r.map(0, |i| i).is_empty());
        assert_eq!(r.map(1, |i| i + 1), vec![1]);
    }
}
