//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment module exposes `run(&RunCtx) -> ExperimentReport`; the
//! `experiments` binary executes them by id, prints the rows the paper
//! reports, and writes machine-readable JSON under `results/`. The
//! [`runner::RunCtx`] carries the quick/full switch plus a deterministic
//! work pool, so trials fan out across cores (`--jobs N`) while the
//! output stays byte-identical to a sequential run. The criterion
//! benches in `benches/` exercise the hot kernels (SIFT, discovery,
//! MCham, the MAC simulator) on the same workloads.
//!
//! Reproduction targets are *shapes*, not absolute numbers: who wins, by
//! roughly what factor, and where crossovers fall (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::ExperimentReport;
pub use runner::{RunCtx, Runner};

/// One registry entry: `(id, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn(&RunCtx) -> ExperimentReport);

/// Registry of all experiments.
pub fn registry() -> Vec<ExperimentEntry> {
    use experiments::*;
    vec![
        (
            "table1",
            "Table 1: SIFT packet detection rate across widths and rates",
            table1::run,
        ),
        (
            "fig2",
            "Figure 2: spectrum fragmentation by locale class",
            fig2::run,
        ),
        (
            "fig5",
            "Figure 5: time-domain view of data-ACK exchanges per width",
            fig5::run,
        ),
        (
            "fig6",
            "Figure 6: airtime utilization measurement accuracy",
            fig6::run,
        ),
        (
            "fig7",
            "Figure 7: detection vs attenuation, SIFT vs packet sniffer",
            fig7::run,
        ),
        (
            "fig8",
            "Figure 8: discovery time vs contiguous fragment width",
            fig8::run,
        ),
        (
            "fig9",
            "Figure 9: discovery time in metro/suburban/rural settings",
            fig9::run,
        ),
        (
            "disconnection",
            "Section 5.3: reconnection lag after a wireless-mic event",
            disconnection::run,
        ),
        (
            "fig10",
            "Figure 10: MCham vs throughput microbenchmark",
            fig10::run,
        ),
        (
            "fig11",
            "Figure 11: impact of background traffic",
            fig11::run,
        ),
        (
            "fig12",
            "Figure 12: impact of spatial variation",
            fig12::run,
        ),
        ("fig13", "Figure 13: impact of churn", fig13::run),
        ("fig14", "Figure 14: prototype adaptation trace", fig14::run),
        (
            "hamming",
            "Section 2.1: pairwise Hamming distance across buildings",
            hamming::run,
        ),
        (
            "mos",
            "Section 2.3: wireless-mic audio degradation (MOS model)",
            mos::run,
        ),
        (
            "ablation",
            "Ablations: MCham combiner (product vs min/max); J-SIFT pass order",
            ablation::run,
        ),
        (
            "scan_analysis",
            "Section 4.2.2: expected scan counts, closed form vs Monte Carlo",
            scan_analysis::run,
        ),
        (
            "city",
            "Scale: influence-sharded city simulation, wall time vs shard count",
            city::run,
        ),
        (
            "fuzz",
            "Generative scenario corpus under the oracle bank",
            fuzz::run,
        ),
    ]
}
