//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments list                     # show available experiment ids
//! experiments all [--quick]            # run everything
//! experiments fig11 table1 ...         # run selected experiments
//! experiments all --jobs 8             # parallel trials + overlapped experiments
//! experiments all --seed 42            # perturb every trial seed (default 0 = historical outputs)
//! ```
//!
//! Results are printed as text tables and written atomically as JSON to
//! `results/<id>.json`. A run summary (per-experiment wall time, trial
//! counts, job counts) goes to `results/BENCH_experiments.json`.
//!
//! Determinism contract: for a fixed `--seed`, the JSON outputs are
//! byte-identical for every `--jobs` value — each trial derives its RNG
//! seed purely from (experiment id, trial index), never from scheduling.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use whitefi::{global_oracle_totals, OracleTotals};
use whitefi_bench::{registry, ExperimentReport, RunCtx};
use whitefi_mac::{global_event_totals, EventCounters};

/// Default chart axes per experiment for `--plot`.
fn plot_axes(id: &str) -> Option<(&'static str, Vec<&'static str>)> {
    match id {
        "fig7" => Some(("attenuation_db", vec!["sift", "sniffer"])),
        "fig8" => Some(("fragment_width", vec!["l_sift_frac", "j_sift_frac"])),
        "fig10" => Some(("delay_ms", vec!["tput5", "tput10", "tput20"])),
        "fig11" => Some(("pairs", vec!["whitefi", "opt", "opt20"])),
        "fig12" => Some(("p", vec!["whitefi", "opt", "opt20"])),
        "fig13" => Some(("churn", vec!["whitefi", "opt", "opt20"])),
        "fig14" => Some(("t_s", vec!["goodput_mbps", "width_mhz"])),
        _ => None,
    }
}

/// Writes `contents` to `path` atomically (temp file in the same
/// directory, then rename) so readers never observe a half-written JSON.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let p = Path::new(path);
    let dir = p.parent().unwrap_or_else(|| Path::new("."));
    let name = p
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, p)
}

fn usage() -> ! {
    eprintln!("usage: experiments [list | all | <id>...] [--quick] [--plot] [--jobs N] [--seed S]");
    std::process::exit(2);
}

struct Options {
    quick: bool,
    plot: bool,
    jobs: usize,
    seed: u64,
    selected: Vec<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut opts = Options {
        quick: false,
        plot: false,
        jobs: default_jobs,
        seed: 0,
        selected: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            opts.quick = true;
        } else if a == "--plot" {
            opts.plot = true;
        } else if a == "--jobs" || a == "--seed" {
            i += 1;
            let Some(v) = args.get(i) else {
                eprintln!("{a} requires a value");
                usage();
            };
            match (a.as_str(), v.parse::<u64>()) {
                ("--jobs", Ok(n)) => {
                    opts.jobs = usize::try_from(n).unwrap_or(usize::MAX).max(1);
                }
                ("--seed", Ok(s)) => opts.seed = s,
                _ => {
                    eprintln!("invalid value for {a}: {v}");
                    usage();
                }
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            match v.parse::<usize>() {
                Ok(n) => opts.jobs = n.max(1),
                Err(_) => {
                    eprintln!("invalid value for --jobs: {v}");
                    usage();
                }
            }
        } else if let Some(v) = a.strip_prefix("--seed=") {
            match v.parse::<u64>() {
                Ok(s) => opts.seed = s,
                Err(_) => {
                    eprintln!("invalid value for --seed: {v}");
                    usage();
                }
            }
        } else if a.starts_with("--") {
            eprintln!("unknown option: {a}");
            usage();
        } else {
            opts.selected.push(a.clone());
        }
        i += 1;
    }
    opts
}

/// One finished experiment, in registry order.
struct Finished {
    id: &'static str,
    report: ExperimentReport,
    wall_s: f64,
    trials: u64,
    jobs: usize,
    /// Simulator event-class counters accumulated while this experiment
    /// ran (delta of the process-wide totals). Exact when experiments
    /// run one at a time; approximate attribution when they overlap.
    events: EventCounters,
    /// Invariant-oracle totals accumulated while this experiment ran
    /// (same delta-of-process-wide-totals attribution as `events`).
    oracles: OracleTotals,
}

// lint:allow(taint, the experiments binary times its own phases; sims only see scenario seeds)
fn main() {
    let opts = parse_args();
    let registry = registry();

    if opts.selected.first().map(|s| s.as_str()) == Some("list") {
        for (id, desc, _) in &registry {
            println!("{id:14} {desc}");
        }
        return;
    }

    let run_all = opts.selected.is_empty() || opts.selected.iter().any(|s| s == "all");
    for sel in &opts.selected {
        if sel != "all" && !registry.iter().any(|(id, ..)| id == sel) {
            eprintln!("unknown experiment id: {sel}");
            eprintln!("no matching experiments; try `experiments list`");
            std::process::exit(1);
        }
    }
    let entries: Vec<_> = registry
        .iter()
        .filter(|(id, ..)| run_all || opts.selected.iter().any(|s| s == id))
        .copied()
        .collect();
    if entries.is_empty() {
        eprintln!("no matching experiments; try `experiments list`");
        std::process::exit(1);
    }

    // Split the job budget: overlap whole experiments (outer) and give
    // each the remaining slots for its own trials (inner). Single-shot
    // experiments (e.g. fig14) parallelize only through the outer level.
    let outer = if entries.len() > 1 {
        opts.jobs.min(entries.len())
    } else {
        1
    };
    let inner = (opts.jobs / outer).max(1);

    let total_start = Instant::now();
    let finished: Vec<Finished> = if outer <= 1 {
        entries
            .iter()
            .map(|&(id, _desc, runner)| {
                let ctx = RunCtx::new(opts.quick, opts.jobs, opts.seed);
                let before = global_event_totals();
                let oracles_before = global_oracle_totals();
                let start = Instant::now();
                let report = runner(&ctx);
                Finished {
                    id,
                    report,
                    wall_s: start.elapsed().as_secs_f64(),
                    trials: ctx.trials_run(),
                    jobs: ctx.jobs(),
                    events: global_event_totals().delta_since(before),
                    oracles: global_oracle_totals().delta_since(oracles_before),
                }
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let done = parking_lot::Mutex::new(Vec::with_capacity(entries.len()));
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= entries.len() {
                        break;
                    }
                    let (id, _desc, runner) = entries[k];
                    let ctx = RunCtx::new(opts.quick, inner, opts.seed);
                    let before = global_event_totals();
                    let oracles_before = global_oracle_totals();
                    let start = Instant::now();
                    let report = runner(&ctx);
                    done.lock().push((
                        k,
                        Finished {
                            id,
                            report,
                            wall_s: start.elapsed().as_secs_f64(),
                            trials: ctx.trials_run(),
                            jobs: ctx.jobs(),
                            events: global_event_totals().delta_since(before),
                            oracles: global_oracle_totals().delta_since(oracles_before),
                        },
                    ));
                });
            }
        });
        let mut indexed = done.into_inner();
        indexed.sort_by_key(|&(k, _)| k);
        indexed.into_iter().map(|(_, f)| f).collect()
    };
    let total_wall_s = total_start.elapsed().as_secs_f64();

    fs::create_dir_all("results").ok();
    let mut failed = false;
    for f in &finished {
        println!("{}", f.report.render_text());
        if opts.plot {
            if let Some((x, ys)) = plot_axes(f.id) {
                println!("{}", f.report.render_ascii_chart(x, &ys));
            }
        }
        println!("({} completed in {:.1}s)\n", f.id, f.wall_s);
        if let Err(e) = f.report.validate() {
            eprintln!("error: invalid report: {e}");
            failed = true;
        }
        let path = format!("results/{}.json", f.id);
        match f.report.to_json() {
            Ok(json) => {
                if let Err(e) = write_atomic(&path, &json) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
            Err(e) => {
                eprintln!("error: could not serialize report {}: {e}", f.id);
                failed = true;
            }
        }
    }

    // Invariant gate: adaptive (WhiteFi-mode) runs must never violate an
    // oracle on the seed scenarios. Fixed-baseline violations are the
    // paper's motivating failure (a static channel cannot vacate for an
    // incumbent) and are reported but do not fail the run.
    let adaptive_violations: u64 = finished.iter().map(|f| f.oracles.adaptive_violations).sum();
    if adaptive_violations > 0 {
        for f in finished
            .iter()
            .filter(|f| f.oracles.adaptive_violations > 0)
        {
            eprintln!(
                "error: {} adaptive oracle violation(s) during {}",
                f.oracles.adaptive_violations, f.id
            );
        }
        failed = true;
    }

    // Run summary for perf tracking (wall time per experiment, trial
    // counts, effective job counts).
    let summary = serde_json::to_string_pretty(&serde_json::json!({
        "jobs": opts.jobs,
        "outer_overlap": outer,
        "inner_jobs_per_experiment": inner,
        "quick": opts.quick,
        "seed": opts.seed,
        "total_wall_s": (total_wall_s * 1e3).round() / 1e3,
        // Counter deltas are read from process-wide totals; with outer
        // overlap > 1 concurrent experiments bleed into each other's
        // windows and attribution is only approximate.
        "event_attribution": if outer > 1 { "overlapped" } else { "exclusive" },
        "experiments": finished.iter().map(|f| {
            let mut entry = serde_json::json!({
                "id": f.id,
                "wall_s": (f.wall_s * 1e3).round() / 1e3,
                "trials": f.trials,
                "jobs": f.jobs,
                "events": {
                    "scheduled": f.events.scheduled,
                    "handled": f.events.handled,
                    "stale_tentative": f.events.stale_tentative,
                    "stale_ack_timeout": f.events.stale_ack_timeout,
                    "lazy_elided": f.events.lazy_elided,
                },
                "oracle": {
                    "adaptive_violations": f.oracles.adaptive_violations,
                    "fixed_violations": f.oracles.fixed_violations,
                    "explained_liveness": f.oracles.explained_liveness,
                    "reports": f.oracles.reports,
                },
                "events_per_sec": if f.wall_s > 0.0 {
                    (f.events.handled as f64 / f.wall_s).round()
                } else {
                    0.0
                },
            });
            // The city scaling ladder (shards, sync rounds, events/sec,
            // wall time per shard count) is perf telemetry, so its rows
            // ride along in the perf summary.
            if f.id == "city" {
                if let serde_json::Value::Object(map) = &mut entry {
                    map.insert(
                        "scaling_rows".to_string(),
                        serde_json::Value::Array(
                            f.report
                                .rows
                                .iter()
                                .cloned()
                                .map(serde_json::Value::Object)
                                .collect(),
                        ),
                    );
                }
            }
            entry
        }).collect::<Vec<_>>(),
    }));
    // The summary is advisory perf telemetry: a serialization failure is
    // reported but does not fail the run.
    match summary {
        Ok(summary) => {
            if let Err(e) = write_atomic("results/BENCH_experiments.json", &summary) {
                eprintln!("warning: could not write results/BENCH_experiments.json: {e}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize run summary: {e}"),
    }
    println!(
        "ran {} experiments in {total_wall_s:.1}s (jobs {}, overlap {outer}x{inner})",
        finished.len(),
        opts.jobs
    );
    if failed {
        std::process::exit(1);
    }
}
