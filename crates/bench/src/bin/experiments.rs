//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments list               # show available experiment ids
//! experiments all [--quick]      # run everything
//! experiments fig11 table1 ...   # run selected experiments
//! ```
//!
//! Results are printed as text tables and written as JSON to
//! `results/<id>.json`.

use std::fs;
use std::time::Instant;
use whitefi_bench::registry;

/// Default chart axes per experiment for `--plot`.
fn plot_axes(id: &str) -> Option<(&'static str, Vec<&'static str>)> {
    match id {
        "fig7" => Some(("attenuation_db", vec!["sift", "sniffer"])),
        "fig8" => Some(("fragment_width", vec!["l_sift_frac", "j_sift_frac"])),
        "fig10" => Some(("delay_ms", vec!["tput5", "tput10", "tput20"])),
        "fig11" => Some(("pairs", vec!["whitefi", "opt", "opt20"])),
        "fig12" => Some(("p", vec!["whitefi", "opt", "opt20"])),
        "fig13" => Some(("churn", vec!["whitefi", "opt", "opt20"])),
        "fig14" => Some(("t_s", vec!["goodput_mbps", "width_mhz"])),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let plot = args.iter().any(|a| a == "--plot");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let registry = registry();

    if selected.first().map(|s| s.as_str()) == Some("list") {
        for (id, desc, _) in &registry {
            println!("{id:14} {desc}");
        }
        return;
    }

    let run_all = selected.is_empty() || selected.iter().any(|s| s.as_str() == "all");
    let mut ran = 0;
    fs::create_dir_all("results").ok();
    for (id, _desc, runner) in &registry {
        if !run_all && !selected.iter().any(|s| s.as_str() == *id) {
            continue;
        }
        let start = Instant::now();
        let report = runner(quick);
        let elapsed = start.elapsed();
        println!("{}", report.render_text());
        if plot {
            if let Some((x, ys)) = plot_axes(id) {
                println!("{}", report.render_ascii_chart(x, &ys));
            }
        }
        println!("({id} completed in {:.1}s)\n", elapsed.as_secs_f64());
        let path = format!("results/{id}.json");
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("warning: could not write {path}: {e}");
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no matching experiments; try `experiments list`");
        std::process::exit(1);
    }
}
