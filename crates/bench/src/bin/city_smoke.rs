//! City sharding smoke: runs one small grid city and prints a canonical
//! JSON summary of the outcome to stdout.
//!
//! ```text
//! city_smoke [--aps N] [--clients N] [--shards S] [--seed X]
//!            [--partition components|cut]
//! ```
//!
//! The output is a pure function of `(--aps, --clients, --seed)` — it
//! deliberately contains **no** wall-clock readings and **no**
//! scheduling metadata (shard count, partition mode, group sizes,
//! barrier rounds, cut pairs and fallback status go to stderr only), so
//! `scripts/check.sh` can diff the stdout of a `--shards 1` run against
//! a `--shards 4` run — and against a `--partition cut` run — byte for
//! byte. That three-way diff is the end-to-end form of the sharding
//! contract (DESIGN.md §13–14): cut-sharded, component-sharded and
//! unsharded runs are identical, oracle reports and fault events
//! included.
//!
//! The grid uses range above spacing, so neighbouring cells couple into
//! multi-cell components and the smoke exercises real shard merging; a
//! deterministic fault plan derived from the seed keeps the fault layer
//! in the loop.

use whitefi::{run_city_with, CityPartition, CityScenario};
use whitefi_mac::{FaultEventKind, FaultPlan};
use whitefi_phy::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: city_smoke [--aps N] [--clients N] [--shards S] [--seed X] \
         [--partition components|cut]"
    );
    std::process::exit(2);
}

fn main() {
    let mut aps = 9usize;
    let mut clients = 1usize;
    let mut shards = 1usize;
    let mut seed = 5u64;
    let mut partition = CityPartition::Components;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else { usage() };
        if flag == "--partition" {
            partition = match value.as_str() {
                "components" => CityPartition::Components,
                "cut" => CityPartition::Cut,
                other => {
                    eprintln!("invalid value for --partition: {other}");
                    usage();
                }
            };
            i += 1;
            continue;
        }
        let Ok(value) = value.parse::<u64>() else {
            eprintln!("invalid value for {flag}: {value}");
            usage();
        };
        match flag {
            "--aps" => aps = usize::try_from(value).unwrap_or(usize::MAX),
            "--clients" => clients = usize::try_from(value).unwrap_or(usize::MAX),
            "--shards" => shards = usize::try_from(value).unwrap_or(usize::MAX).max(1),
            "--seed" => seed = value,
            _ => usage(),
        }
        i += 1;
    }

    let mut city = CityScenario::grid(seed, aps, clients, 100.0, 105.0);
    city.warmup = SimDuration::from_millis(300);
    city.duration = SimDuration::from_millis(600);
    city.sample_interval = SimDuration::from_millis(200);
    city.sync_window = SimDuration::from_millis(150);
    city.faults = Some(FaultPlan {
        seed: seed ^ 0x5A0C_E5ED,
        drop_prob: 0.06,
        dup_prob: 0.04,
        delay_prob: 0.04,
        max_delay: SimDuration::from_micros(800),
        max_detection_extra: SimDuration::from_millis(25),
        history_skew: None,
    });

    let (out, stats) = run_city_with(&city, shards, partition);
    eprintln!(
        "city_smoke: {} APs, {} nodes, shards {} ({:?}) -> groups {}, \
         components {}, largest_component_fraction {:.3}, load_imbalance {:.3}, \
         cut_pairs {}, fallback {}, sync_rounds {}, events handled {}",
        aps,
        city.total_nodes(),
        shards,
        partition,
        stats.groups,
        stats.components,
        stats.largest_component_fraction,
        stats.load_imbalance,
        stats.cut_pairs,
        stats.fallback,
        stats.sync_rounds,
        stats.events.handled,
    );

    let cells: Vec<serde_json::Value> = out
        .cells
        .iter()
        .map(|c| {
            serde_json::json!({
                "aggregate_mbps": c.aggregate_mbps,
                "per_client_mbps": c.per_client_mbps,
                "violations": c.violations,
                "oracle_violations": c.oracle.violations.len(),
                "checked_tx": c.oracle.checked_tx,
                "explained_liveness": c.oracle.explained_liveness,
                "trace_digest": c.oracle.trace_digest,
                "samples": c.samples.iter().map(|s| {
                    serde_json::json!([
                        s.t.as_nanos(),
                        format!("{}", s.ap_channel),
                        s.bytes_delta,
                    ])
                }).collect::<Vec<_>>(),
            })
        })
        .collect();
    let fault_events: Vec<serde_json::Value> = out
        .fault_events
        .iter()
        .map(|e| {
            let kind = match e.kind {
                FaultEventKind::Drop => "drop".to_string(),
                FaultEventKind::Duplicate => "dup".to_string(),
                FaultEventKind::Delay(d) => format!("delay:{}", d.as_nanos()),
                FaultEventKind::DetectionExtra(d) => format!("detect:{}", d.as_nanos()),
            };
            serde_json::json!([e.time.as_nanos(), e.node, kind])
        })
        .collect();
    let summary = serde_json::json!({
        "seed": seed,
        "aps": aps,
        "nodes": city.total_nodes(),
        "aggregate_mbps": out.aggregate_mbps,
        "violations": out.violations(),
        "oracle_violations": out.oracle_violations(),
        "fault_events": fault_events,
        "cells": cells,
    });
    match serde_json::to_string_pretty(&summary) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("error: could not serialize summary: {e}");
            std::process::exit(1);
        }
    }
}
