//! Interactive diagnostics for the simulation-backed experiments:
//! prints channel timelines, background-only airtime vectors, and MCham
//! scores so sweep shapes can be inspected without re-running the full
//! harness.
//!
//! ```text
//! diag fig14   # channel timeline + phase-1 airtime/MCham breakdown
//! diag fig10   # MCham vs throughput across the intensity sweep
//! diag fig12   # adaptive run switch log under spatial variation
//! ```

use whitefi::driver::{measure_airtime, run_whitefi};
use whitefi::mcham;
use whitefi_bench::experiments::{fig12, fig14};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{UhfChannel, WfChannel, Width};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    if which == "fig14" {
        let s = fig14::scenario(9100, 1);
        // Airtime the AP would measure during phase 1 (bg on 5..=8).
        let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
        for smp in out.samples.iter().step_by(4) {
            println!("t={:6.1}s ch={}", smp.t.as_secs_f64(), smp.ap_channel);
        }
        println!("violations {}", out.violations);
        // Background-only airtime at phase-1 time: approximate with a
        // bg-only sim over the scripted window.
        let air = measure_airtime(&s, SimDuration::from_secs(13));
        for i in [5usize, 6, 7, 8, 12, 13, 17] {
            let l = air.load(UhfChannel::from_index(i));
            println!("bg-only ch{i}: busy {:.3} aps {}", l.busy, l.aps);
        }
        for (lbl, c) in [
            ("W20@7", WfChannel::from_parts(7, Width::W20)),
            ("W10@13", WfChannel::from_parts(13, Width::W10)),
            ("W5@17", WfChannel::from_parts(17, Width::W5)),
        ] {
            println!("mcham {lbl} = {:.3}", mcham(&air, c));
        }
    } else if which == "fig10" {
        for delay in [3u64, 8, 14, 20, 30, 40, 50, 60, 80] {
            let (m, t) = whitefi_bench::experiments::fig10::sweep_point(delay, 40 + delay, true);
            println!(
                "delay {delay:3}ms  mcham [{:.2} {:.2} {:.2}]  tput [{:.2} {:.2} {:.2}]",
                m[0], m[1], m[2], t[0], t[1], t[2]
            );
        }
    } else if which == "fig12" {
        let s = fig12::scenario(0.05, 7001, true);
        let out = run_whitefi(&s, None);
        let mut last = None;
        for smp in &out.samples {
            if last != Some(smp.ap_channel) {
                println!("t={:6.2}s -> {}", smp.t.as_secs_f64(), smp.ap_channel);
            }
            last = Some(smp.ap_channel);
        }
        println!("per-client {:?}", out.per_client_mbps);
        println!(
            "aggregate {:.3} violations {}",
            out.aggregate_mbps, out.violations
        );
    } else {
        eprintln!("usage: diag fig14|fig10|fig12");
    }
}
