//! Interactive diagnostics for the simulation-backed experiments:
//! prints channel timelines, background-only airtime vectors, and MCham
//! scores so sweep shapes can be inspected without re-running the full
//! harness.
//!
//! Seeds route through the same [`RunCtx`] derivation the `experiments`
//! binary uses, so every scenario printed here is byte-for-byte the one
//! `experiments <id> --jobs 1` runs (trial 0 for multi-trial sweeps).
//!
//! ```text
//! diag fig14              # channel timeline + phase-1 airtime/MCham breakdown
//! diag fig10              # MCham vs throughput across the intensity sweep
//! diag fig12              # adaptive run switch log under spatial variation
//! diag fig12 --full       # the full-length (non-quick) variant
//! diag fig14 --seed 42    # perturbed seeds, same derivation as experiments
//! ```

use whitefi::driver::{measure_airtime, run_whitefi};
use whitefi::mcham;
use whitefi_bench::experiments::{fig10, fig12, fig14};
use whitefi_bench::RunCtx;
use whitefi_phy::SimDuration;
use whitefi_spectrum::{UhfChannel, WfChannel, Width};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = String::new();
    let mut quick = true;
    let mut seed = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => quick = false,
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer value");
                    std::process::exit(2);
                });
            }
            a if !a.starts_with("--") => which = a.to_string(),
            a => {
                eprintln!("unknown option: {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Same construction as `experiments <id> --jobs 1`: trial seeds are
    // pure functions of (experiment base, trial index, user seed).
    let ctx = RunCtx::new(quick, 1, seed);

    if which == "fig14" {
        let stretch = if ctx.quick() { 1 } else { 5 };
        let s = fig14::scenario(ctx.seed(9000), stretch);
        // Airtime the AP would measure during phase 1 (bg on 5..=8).
        let out = run_whitefi(&s, Some(WfChannel::from_parts(7, Width::W20)));
        for smp in out.samples.iter().step_by(4) {
            println!("t={:6.1}s ch={}", smp.t.as_secs_f64(), smp.ap_channel);
        }
        println!("violations {}", out.violations);
        // Background-only airtime at phase-1 time: approximate with a
        // bg-only sim over the scripted window.
        let air = measure_airtime(&s, SimDuration::from_secs(13));
        for i in [5usize, 6, 7, 8, 12, 13, 17] {
            let l = air.load(UhfChannel::from_index(i));
            println!("bg-only ch{i}: busy {:.3} aps {}", l.busy, l.aps);
        }
        for (lbl, c) in [
            ("W20@7", WfChannel::from_parts(7, Width::W20)),
            ("W10@13", WfChannel::from_parts(13, Width::W10)),
            ("W5@17", WfChannel::from_parts(17, Width::W5)),
        ] {
            println!("mcham {lbl} = {:.3}", mcham(&air, c));
        }
    } else if which == "fig10" {
        let delays = fig10::delays(ctx.quick());
        for (i, &delay) in delays.iter().enumerate() {
            let (m, t) = fig10::sweep_point(delay, ctx.seed(4000 + i as u64), ctx.quick());
            println!(
                "delay {delay:3}ms  mcham [{:.2} {:.2} {:.2}]  tput [{:.2} {:.2} {:.2}]",
                m[0], m[1], m[2], t[0], t[1], t[2]
            );
        }
    } else if which == "fig12" {
        let s = fig12::scenario(0.05, ctx.seed(6000), ctx.quick());
        let out = run_whitefi(&s, None);
        let mut last = None;
        for smp in &out.samples {
            if last != Some(smp.ap_channel) {
                println!("t={:6.2}s -> {}", smp.t.as_secs_f64(), smp.ap_channel);
            }
            last = Some(smp.ap_channel);
        }
        println!("per-client {:?}", out.per_client_mbps);
        println!(
            "aggregate {:.3} violations {}",
            out.aggregate_mbps, out.violations
        );
    } else {
        eprintln!("usage: diag fig14|fig10|fig12 [--quick|--full] [--seed S]");
        std::process::exit(2);
    }
}
