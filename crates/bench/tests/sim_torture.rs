//! The full-width fault-injection sweep: 256 randomized `FaultPlan`s
//! fanned over the `RunCtx` worker pool (DESIGN.md §10).
//!
//! `#[ignore]`d because a full sweep takes minutes; `scripts/check.sh`
//! runs it in the `--ignored` lane. The bounded everyday subset lives
//! in `crates/whitefi/tests/sim_torture.rs` and shares the same case
//! generator shape (a case is a pure function of its index). As there,
//! half the cases (odd indices) come from the `scenario_fuzz`
//! generator rather than the hand-rolled mix.

// Case-mix arithmetic narrows small `Mix::below` draws into indices; the
// values are single digits, the casts exact.
#![allow(clippy::cast_possible_truncation)]

use whitefi::driver::{run_whitefi, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_bench::RunCtx;
use whitefi_mac::FaultPlan;
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{
    IncumbentSet, MicActivity, MicSchedule, SpectrumMap, UhfChannel, WfChannel, Width, WirelessMic,
};

struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fragmented_map() -> SpectrumMap {
    let free = [5usize, 6, 7, 8, 9, 12, 13, 14, 17, 26];
    let mut map = SpectrumMap::all_free();
    for i in 0..whitefi_spectrum::NUM_UHF_CHANNELS {
        if !free.contains(&i) {
            map.set_occupied(UhfChannel::from_index(i));
        }
    }
    map
}

fn mic_on(channel: UhfChannel, on: SimTime, off: SimTime) -> WirelessMic {
    WirelessMic::new(
        channel,
        MicSchedule::scripted(vec![MicActivity {
            start: on.as_nanos(),
            end: off.as_nanos(),
        }]),
    )
}

/// Same generator shape as the whitefi-crate suite, seeded from a
/// different salt so the two suites explore disjoint plans.
fn torture_scenario(case: u64) -> (Scenario, WfChannel) {
    let mut mix = Mix(0x7057_0002 ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let map = fragmented_map();
    let n_clients = 1 + mix.below(2) as usize;
    let mut s = Scenario::new(2000 + case, map, n_clients);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(4);

    let initial = WfChannel::from_parts(7, Width::W20);
    let strike_at = SimTime::ZERO + SimDuration::from_millis(500 + mix.below(2_500));
    let strike_len = SimDuration::from_millis(500 + mix.below(1_500));
    let struck = UhfChannel::from_index(5 + mix.below(5) as usize);
    let mut incumbents = IncumbentSet::default();
    incumbents
        .mics
        .push(mic_on(struck, strike_at, strike_at + strike_len));
    if mix.below(2) == 0 {
        if let Some(backup) = whitefi::choose_backup(s.combined_map(), Some(initial)) {
            let second_at = strike_at + SimDuration::from_millis(50 + mix.below(400));
            incumbents
                .mics
                .push(mic_on(backup.center(), second_at, second_at + strike_len));
        }
    }
    s.ap_extra_incumbents = Some(incumbents.clone());
    s.client_extra_incumbents = vec![Some(incumbents); n_clients];

    if mix.below(2) == 0 {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(13, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(5 + mix.below(10)),
            },
        });
    }

    s.faults = Some(FaultPlan {
        seed: mix.next(),
        drop_prob: mix.unit() * 0.25,
        dup_prob: mix.unit() * 0.2,
        delay_prob: mix.unit() * 0.2,
        max_delay: SimDuration::from_millis(1 + mix.below(4)),
        max_detection_extra: SimDuration::from_millis(mix.below(100)),
        history_skew: (mix.below(4) == 0).then(|| SimDuration::from_secs(1 + mix.below(5))),
    });
    (s, initial)
}

/// Case mix mirroring the whitefi-crate suite: even indices are the
/// hand-rolled adversarial scenarios above, odd indices sample the
/// declarative scenario schema through `whitefi::scenario_fuzz` (with
/// this suite's salt, so the two sweeps explore disjoint documents).
fn sweep_case(case: u64) -> (Scenario, Option<WfChannel>) {
    if case % 2 == 1 {
        let compiled = whitefi::scenario_fuzz::generate_single_ap(0x7057_0002 ^ case).compile();
        let initial = compiled.initial();
        (compiled.scenario, initial)
    } else {
        let (s, initial) = torture_scenario(case);
        (s, Some(initial))
    }
}

/// ≥ 256 randomized fault plans, fanned across the worker pool, all
/// invariant-clean. Run with `cargo test -p bench -- --ignored`.
#[test]
#[ignore = "full 256-plan sweep; run via scripts/check.sh or -- --ignored"]
fn full_torture_sweep_is_invariant_clean() {
    let ctx = RunCtx::new(
        true,
        std::thread::available_parallelism().map_or(4, |n| n.get()),
        0,
    );
    let failures: Vec<String> = ctx
        .map(256, |case| {
            let (s, initial) = sweep_case(case as u64);
            let out = run_whitefi(&s, initial);
            if out.violations != 0 {
                return Some(format!("case {case}: engine compliance meter tripped"));
            }
            if !out.oracle.clean() {
                return Some(format!(
                    "case {case} (plan {:?}): {:?}",
                    s.faults, out.oracle.violations
                ));
            }
            None
        })
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Fan-out determinism: the pool's completion order must not leak into
/// results — a re-run of the same sweep slice yields identical reports.
#[test]
#[ignore = "full-sweep companion; run via scripts/check.sh or -- --ignored"]
fn torture_sweep_is_order_independent() {
    let run = |jobs: usize| {
        let ctx = RunCtx::new(true, jobs, 0);
        ctx.map(16, |case| {
            let (s, initial) = sweep_case(case as u64);
            let out = run_whitefi(&s, initial);
            (out.oracle.trace_digest, out.oracle.violations.len())
        })
    };
    assert_eq!(run(1), run(4));
}
