//! The parallel runner's determinism contract: running an experiment
//! with `--jobs N` must produce byte-identical JSON to `--jobs 1`,
//! because every trial's RNG seed is a pure function of (experiment,
//! trial index, user seed) and results are reassembled in index order.

use whitefi_bench::{registry, RunCtx};

fn entry(id: &str) -> fn(&RunCtx) -> whitefi_bench::ExperimentReport {
    registry()
        .iter()
        .find(|(eid, _, _)| *eid == id)
        .unwrap_or_else(|| panic!("experiment {id} not in registry"))
        .2
}

/// Two experiments with nontrivial fan-out, run quick: parallel output
/// is byte-identical to sequential.
#[test]
fn parallel_matches_sequential_byte_for_byte() {
    for id in ["scan_analysis", "hamming"] {
        let run = entry(id);
        let sequential = run(&RunCtx::new(true, 1, 0)).to_json().expect("serializes");
        let parallel = run(&RunCtx::new(true, 4, 0)).to_json().expect("serializes");
        assert_eq!(
            sequential, parallel,
            "{id}: --jobs 4 output diverged from --jobs 1"
        );
    }
}

/// With the default user seed (0), `ctx.seed` is the identity, so the
/// historical per-trial seed constants are preserved exactly.
#[test]
fn default_seed_is_identity() {
    let ctx = RunCtx::new(true, 1, 0);
    for base in [0u64, 1, 42, 1000, 0xDEAD_BEEF] {
        assert_eq!(ctx.seed(base), base);
    }
}

/// A nonzero `--seed` perturbs every trial seed, and differently per
/// base, so sweeps re-randomize coherently.
#[test]
fn user_seed_perturbs_trial_seeds() {
    let ctx = RunCtx::new(true, 1, 7);
    assert_ne!(ctx.seed(1000), 1000);
    assert_ne!(ctx.seed(1000), ctx.seed(1001));
    // And deterministically: same (base, user seed) -> same trial seed.
    assert_eq!(ctx.seed(1000), RunCtx::new(true, 4, 7).seed(1000));
}

/// A driver-based experiment (full `run_whitefi` network sims, the
/// fig11 seeding scheme) is byte-equal between `--jobs 1` and
/// `--jobs 4` — the event-core fast paths (reachability bitsets,
/// channel indexes, timer slots, windowed history) must not leak
/// scheduling into results.
#[test]
fn driver_trials_parallel_match_sequential() {
    use whitefi_bench::experiments::fig11;

    let run = |jobs: usize| {
        let ctx = RunCtx::new(true, jobs, 0);
        ctx.map(4, |k| {
            let s = fig11::scenario(k * 4, ctx.seed(5000 + k as u64), true);
            let out = whitefi::driver::run_whitefi(&s, None);
            // Exact f64 equality on purpose: the contract is bit-level.
            (out.aggregate_mbps, out.per_client_mbps, out.violations)
        })
    };
    assert_eq!(
        run(1),
        run(4),
        "driver trials diverged between --jobs 1 and --jobs 4"
    );
}

/// Fuzz-generated scenarios replay deterministically under the worker
/// pool: compiling and running the sampled corpus at `--jobs 1` and
/// `--jobs 8` yields byte-identical outcomes, scenario-fuzz streams
/// being placement-independent per the PR-3 contract.
#[test]
fn fuzz_corpus_parallel_matches_sequential() {
    let run = |jobs: usize| {
        let ctx = RunCtx::new(true, jobs, 0);
        ctx.map(8, |i| {
            let doc = whitefi::generate_doc(ctx.seed(i as u64));
            doc.compile_sim()
                .expect("fuzz generator emits simulation documents")
                .run()
        })
    };
    assert_eq!(
        run(1),
        run(8),
        "fuzz corpus diverged between --jobs 1 and --jobs 8"
    );
}
