//! The parallel runner's determinism contract: running an experiment
//! with `--jobs N` must produce byte-identical JSON to `--jobs 1`,
//! because every trial's RNG seed is a pure function of (experiment,
//! trial index, user seed) and results are reassembled in index order.

use whitefi_bench::{registry, RunCtx};

fn entry(id: &str) -> fn(&RunCtx) -> whitefi_bench::ExperimentReport {
    registry()
        .iter()
        .find(|(eid, _, _)| *eid == id)
        .unwrap_or_else(|| panic!("experiment {id} not in registry"))
        .2
}

/// Two experiments with nontrivial fan-out, run quick: parallel output
/// is byte-identical to sequential.
#[test]
fn parallel_matches_sequential_byte_for_byte() {
    for id in ["scan_analysis", "hamming"] {
        let run = entry(id);
        let sequential = run(&RunCtx::new(true, 1, 0)).to_json();
        let parallel = run(&RunCtx::new(true, 4, 0)).to_json();
        assert_eq!(
            sequential, parallel,
            "{id}: --jobs 4 output diverged from --jobs 1"
        );
    }
}

/// With the default user seed (0), `ctx.seed` is the identity, so the
/// historical per-trial seed constants are preserved exactly.
#[test]
fn default_seed_is_identity() {
    let ctx = RunCtx::new(true, 1, 0);
    for base in [0u64, 1, 42, 1000, 0xDEAD_BEEF] {
        assert_eq!(ctx.seed(base), base);
    }
}

/// A nonzero `--seed` perturbs every trial seed, and differently per
/// base, so sweeps re-randomize coherently.
#[test]
fn user_seed_perturbs_trial_seeds() {
    let ctx = RunCtx::new(true, 1, 7);
    assert_ne!(ctx.seed(1000), 1000);
    assert_ne!(ctx.seed(1000), ctx.seed(1001));
    // And deterministically: same (base, user seed) -> same trial seed.
    assert_eq!(ctx.seed(1000), RunCtx::new(true, 4, 7).seed(1000));
}
