//! Model test for the runner pool's work-index / result-slot handoff
//! (DESIGN.md §16).
//!
//! `Runner::map` hands out trial indices through an `msync::AtomicUsize`
//! and collects `(index, result)` pairs under an `msync::Mutex` before
//! sorting by index. The production path spawns borrow-scoped threads
//! (`std::thread::scope`), which the model's `'static` spawn cannot
//! host directly, so this test runs the *same algorithm with the same
//! `msync` primitives* on model threads: every interleaving must
//! deliver each index exactly once and reassemble into index order —
//! the property that makes `--jobs N` byte-identical to `--jobs 1`.

#[cfg(not(loom))]
mod minloom {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use whitefi_mac::model;
    use whitefi_mac::msync::{AtomicUsize, Mutex};

    /// Two workers race over three work items; in every interleaving the
    /// handoff yields each item exactly once, and the index-sorted
    /// reassembly equals the sequential result.
    #[test]
    fn model_runner_result_slot_handoff() {
        const N: usize = 3;
        let explored = model::check(|| {
            let next = Arc::new(AtomicUsize::new(0));
            let done: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
            let worker = || {
                let next = Arc::clone(&next);
                let done = Arc::clone(&done);
                model::spawn(move || {
                    // The exact loop body of `Runner::map`'s workers.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= N {
                            break;
                        }
                        local.push((i, i * 10));
                    }
                    done.lock().extend(local);
                })
            };
            let a = worker();
            let b = worker();
            // The scoped-thread barrier of the production code: both
            // workers must have drained before the results are read.
            a.join();
            b.join();
            let mut indexed = std::mem::take(&mut *done.lock());
            indexed.sort_by_key(|&(i, _)| i);
            let out: Vec<usize> = indexed.into_iter().map(|(_, v)| v).collect();
            assert_eq!(out, vec![0, 10, 20], "handoff lost or duplicated a slot");
        });
        assert!(
            explored > 1,
            "explorer found only {explored} interleaving(s)"
        );
    }
}
