//! Criterion bench for the spectral-slice pruning of fixed-channel
//! baseline runs: `run_fixed` (pruned) against `run_fixed_unpruned`
//! (every background pair simulated) on the Figure 11 workload, for
//! narrow and wide candidates. The pruned/full gap is the work the OPT
//! sweep no longer does; the differential tests pin the two to exactly
//! equal outcomes, so this gap is free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whitefi::driver::{run_fixed, run_fixed_unpruned, Scenario, StaticBaselines};
use whitefi_bench::experiments::fig11;
use whitefi_phy::SimDuration;
use whitefi_spectrum::Width;

/// A fig11-shaped scenario (17 pairs over the campus map) shortened to
/// a 1 s measurement so the bench iterates quickly.
fn scenario() -> Scenario {
    let mut s = fig11::scenario(17, 42, true);
    s.warmup = SimDuration::from_millis(200);
    s.duration = SimDuration::from_secs(1);
    s
}

fn fixed_run_pruned_vs_full(c: &mut Criterion) {
    let s = scenario();
    let cands = StaticBaselines::candidates(&s);
    let narrow = *cands
        .iter()
        .find(|c| c.width() == Width::W5)
        .expect("campus map admits a W5 channel");
    let wide = *cands
        .iter()
        .find(|c| c.width() == Width::W20)
        .expect("campus map admits a W20 channel");

    let mut group = c.benchmark_group("fixed_run_pruned_vs_full");
    group.sample_size(10);
    for (label, cand) in [("w5", narrow), ("w20", wide)] {
        group.bench_with_input(BenchmarkId::new("pruned", label), &cand, |b, &cand| {
            b.iter(|| run_fixed(&s, cand).aggregate_mbps)
        });
        group.bench_with_input(BenchmarkId::new("full", label), &cand, |b, &cand| {
            b.iter(|| run_fixed_unpruned(&s, cand).aggregate_mbps)
        });
    }
    group.finish();
}

criterion_group!(benches, fixed_run_pruned_vs_full);
criterion_main!(benches);
