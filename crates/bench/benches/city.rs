//! Criterion bench for the influence-sharded city core: sharded runs
//! (sequential and pooled) against the single-simulator reference on
//! the same city, plus per-event throughput of the unsharded run. The
//! sharded/sequential pair isolates the sharding overhead (shard
//! planning, lookahead barriers, outcome merge) from the parallel win,
//! which the `city` experiment measures wall-clock into
//! `results/BENCH_experiments.json` for `scripts/bench_compare.sh`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use whitefi::{run_city, run_city_with, CityPartition, CityScenario};
use whitefi_bench::experiments::city::{bench_city, dense_city, timed_run};
use whitefi_bench::RunCtx;
use whitefi_phy::SimDuration;

fn small_city() -> CityScenario {
    bench_city(7, 16, 1, SimDuration::from_millis(400))
}

fn small_dense_city() -> CityScenario {
    dense_city(11, 16, 1, SimDuration::from_millis(400))
}

fn bench_city_sharded_vs_sequential(c: &mut Criterion) {
    let city = small_city();
    let ctx = RunCtx::sequential(true);
    let mut group = c.benchmark_group("city_sharded_vs_sequential");
    group.sample_size(10);
    // Sequential ladder: same thread, increasing shard counts. Measures
    // pure sharding overhead (ideally flat).
    for shards in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("sequential", shards), &shards, |b, &s| {
            b.iter(|| run_city(&city, s))
        });
    }
    // Pooled: 4 shard groups fanned across 4 workers (the experiment
    // harness's code path). On a multi-core host this is the speedup.
    group.bench_with_input(BenchmarkId::new("pooled", 4usize), &4usize, |b, &s| {
        b.iter(|| timed_run(&ctx, &city, s, CityPartition::Components))
    });
    group.finish();

    // Dense urban: one influence component. The component plan is stuck
    // at a single group; the cut plan splits it four ways. Sequential
    // pair isolates the cut protocol's overhead (border recording,
    // per-round boundary exchange, certification); the pooled case is
    // the speedup the §14 machinery exists to buy.
    let dense = small_dense_city();
    let mut group = c.benchmark_group("city_cut_vs_component");
    group.sample_size(10);
    group.bench_function("component_single_group", |b| b.iter(|| run_city(&dense, 4)));
    group.bench_function("cut_sequential_4_groups", |b| {
        b.iter(|| run_city_with(&dense, 4, CityPartition::Cut))
    });
    group.bench_function("cut_pooled_4_groups", |b| {
        b.iter(|| timed_run(&ctx, &dense, 4, CityPartition::Cut))
    });
    group.finish();

    // Headline per-event throughput of the unsharded city run.
    let (_, stats) = run_city(&city, 1);
    let mut group = c.benchmark_group("city_events");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stats.events.handled));
    group.bench_function("unsharded_16_aps", |b| b.iter(|| run_city(&city, 1)));
    group.finish();
}

criterion_group!(benches, bench_city_sharded_vs_sequential);
criterion_main!(benches);
