//! Criterion benches for the MCham metric and full channel selection
//! (the kernel the AP runs at every reassessment).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use whitefi::{evaluate_all, mcham, select_channel, NodeReport};
use whitefi_spectrum::{AirtimeVector, ChannelLoad, SpectrumMap, UhfChannel, WfChannel, Width};

fn loaded_airtime(seed: u64) -> AirtimeVector {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    AirtimeVector::from_fn(|_| ChannelLoad::new(rng.gen_range(0.0..0.8), rng.gen_range(0..3)))
}

fn bench_mcham(c: &mut Criterion) {
    let airtime = loaded_airtime(1);
    let cand = WfChannel::from_parts(10, Width::W20);
    c.bench_function("mcham/single_channel", |b| b.iter(|| mcham(&airtime, cand)));

    // The assignment kernel: all 84 (F, W) candidates. Per-candidate
    // products vs the shared-RhoTable fast path.
    c.bench_function("mcham/per_candidate_84", |b| {
        b.iter(|| WfChannel::all().map(|c| mcham(&airtime, c)).sum::<f64>())
    });
    c.bench_function("mcham/evaluate_all_84", |b| {
        b.iter(|| evaluate_all(&airtime).iter().map(|(_, v)| v).sum::<f64>())
    });

    let ap = NodeReport {
        map: SpectrumMap::all_free(),
        airtime: loaded_airtime(2),
    };
    let clients: Vec<NodeReport> = (0..10)
        .map(|i| NodeReport {
            map: SpectrumMap::all_free(),
            airtime: loaded_airtime(3 + i),
        })
        .collect();
    c.bench_function("mcham/select_84_candidates_10_clients", |b| {
        b.iter(|| select_channel(&ap, &clients))
    });

    let fragmented = NodeReport {
        map: SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]),
        airtime: loaded_airtime(20),
    };
    c.bench_function("mcham/select_fragmented_map", |b| {
        b.iter(|| select_channel(&fragmented, &clients))
    });

    // Airtime vector ops used on the scan path.
    c.bench_function("mcham/rho_all_channels", |b| {
        b.iter(|| UhfChannel::all().map(|ch| airtime.rho(ch)).sum::<f64>())
    });
}

criterion_group!(benches, bench_mcham);
criterion_main!(benches);
