//! Criterion benches for the SIFT detector: burst extraction and full
//! classification over Table 1-style traces, plus the scalar-reference
//! vs batched-kernel comparisons backing the README performance table.

// The offline criterion stand-in models `Criterion` as a unit struct,
// which trips this lint on `Criterion::default()`; inert upstream.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi_bench::experiments::table1::cbr_schedule;
use whitefi_phy::kernels;
use whitefi_phy::{Sift, StreamingSift, Synthesizer};
use whitefi_spectrum::Width;

fn bench_sift(c: &mut Criterion) {
    let mut group = c.benchmark_group("sift");
    for width in [Width::W5, Width::W10, Width::W20] {
        let (bursts, window) = cbr_schedule(width, 1000, 30);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = Synthesizer::new().synthesize(&bursts, window, &mut rng);
        let sift = Sift::default();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("detect", format!("{}MHz", width.mhz())),
            &trace,
            |b, trace| b.iter(|| sift.detect(trace)),
        );
        group.bench_with_input(
            BenchmarkId::new("airtime", format!("{}MHz", width.mhz())),
            &trace,
            |b, trace| b.iter(|| sift.airtime_fraction(trace)),
        );
        // Synthesis cost per trial: fresh allocation vs buffer reuse
        // (the Table 1 / Figures 6-7 inner loop).
        group.bench_with_input(
            BenchmarkId::new("synthesize_alloc", format!("{}MHz", width.mhz())),
            &bursts,
            |b, bursts| {
                let synth = Synthesizer::new();
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                b.iter(|| synth.synthesize(bursts, window, &mut rng))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("synthesize_into_reused", format!("{}MHz", width.mhz())),
            &bursts,
            |b, bursts| {
                let synth = Synthesizer::new();
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                let mut buf = Vec::new();
                b.iter(|| {
                    synth.synthesize_into(bursts, window, &mut rng, &mut buf);
                    buf.len()
                })
            },
        );
    }
    group.finish();
}

/// Batched lane kernels vs their scalar references on the sample-domain
/// hot path: moving-average envelope extraction and full burst
/// extraction (threshold crossing + edge refinement).
fn bench_sift_scalar_vs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sift_scalar_vs_batched");
    let (bursts, window) = cbr_schedule(Width::W20, 1000, 30);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let trace = Synthesizer::new().synthesize(&bursts, window, &mut rng);
    let sift = Sift::default();
    group.throughput(Throughput::Elements(trace.len() as u64));
    let w = sift.config.window;
    group.bench_with_input(BenchmarkId::new("envelope", "batched"), &trace, |b, t| {
        let mut sums = Vec::new();
        b.iter(|| {
            kernels::window_sums(t, w, &mut sums);
            sums.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("envelope", "scalar"), &trace, |b, t| {
        let mut sums = Vec::new();
        b.iter(|| {
            kernels::window_sums_ref(t, w, &mut sums);
            sums.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("extract", "batched"), &trace, |b, t| {
        b.iter(|| sift.extract_bursts(t))
    });
    group.bench_with_input(BenchmarkId::new("extract", "scalar"), &trace, |b, t| {
        b.iter(|| sift.extract_bursts_ref(t))
    });
    group.finish();
}

/// Batched synthesis (pair-reusing Box–Muller + lane ripple) vs the
/// per-sample scalar reference, over the same noisy Table 1 workload.
fn bench_synth_scalar_vs_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_scalar_vs_batched");
    let (bursts, window) = cbr_schedule(Width::W20, 1000, 30);
    let synth = Synthesizer::new();
    group.bench_with_input(BenchmarkId::new("synth", "batched"), &bursts, |b, bs| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| synth.synthesize(bs, window, &mut rng))
    });
    group.bench_with_input(BenchmarkId::new("synth", "scalar"), &bursts, |b, bs| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| synth.synthesize_ref(bs, window, &mut rng))
    });
    group.finish();
}

/// End-to-end synthesis → detection: the buffered path (whole trace
/// materialized, then `Sift::detect`) vs the streaming path
/// (`SynthStream` blocks fed straight into `StreamingSift`).
fn bench_streaming_vs_buffered(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_vs_buffered");
    let (bursts, window) = cbr_schedule(Width::W20, 1000, 30);
    let synth = Synthesizer::new();
    let sift = Sift::default();
    group.bench_with_input(BenchmarkId::new("e2e", "buffered"), &bursts, |b, bs| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let trace = synth.synthesize(bs, window, &mut rng);
            sift.detect(&trace).len()
        })
    });
    group.bench_with_input(BenchmarkId::new("e2e", "streaming"), &bursts, |b, bs| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let mut stream = synth.stream(bs, window, &mut rng);
            let mut s = StreamingSift::new(sift.config);
            let mut n = 0usize;
            while let Some(block) = stream.next_block() {
                n += s.push_block(block).count();
            }
            n += s.finish().count();
            n
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sift, bench_sift_scalar_vs_batched, bench_synth_scalar_vs_batched, bench_streaming_vs_buffered
}
criterion_main!(benches);
