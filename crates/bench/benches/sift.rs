//! Criterion benches for the SIFT detector: burst extraction and full
//! classification over Table 1-style traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi_bench::experiments::table1::cbr_schedule;
use whitefi_phy::{Sift, Synthesizer};
use whitefi_spectrum::Width;

fn bench_sift(c: &mut Criterion) {
    let mut group = c.benchmark_group("sift");
    for width in [Width::W5, Width::W10, Width::W20] {
        let (bursts, window) = cbr_schedule(width, 1000, 30);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let trace = Synthesizer::new().synthesize(&bursts, window, &mut rng);
        let sift = Sift::default();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("detect", format!("{}MHz", width.mhz())),
            &trace,
            |b, trace| b.iter(|| sift.detect(trace)),
        );
        group.bench_with_input(
            BenchmarkId::new("airtime", format!("{}MHz", width.mhz())),
            &trace,
            |b, trace| b.iter(|| sift.airtime_fraction(trace)),
        );
        // Synthesis cost per trial: fresh allocation vs buffer reuse
        // (the Table 1 / Figures 6-7 inner loop).
        group.bench_with_input(
            BenchmarkId::new("synthesize_alloc", format!("{}MHz", width.mhz())),
            &bursts,
            |b, bursts| {
                let synth = Synthesizer::new();
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                b.iter(|| synth.synthesize(bursts, window, &mut rng))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("synthesize_into_reused", format!("{}MHz", width.mhz())),
            &bursts,
            |b, bursts| {
                let synth = Synthesizer::new();
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                let mut buf = Vec::new();
                b.iter(|| {
                    synth.synthesize_into(bursts, window, &mut rng, &mut buf);
                    buf.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sift
}
criterion_main!(benches);
