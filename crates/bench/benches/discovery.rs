//! Criterion benches for the three AP-discovery algorithms (Figure 8/9
//! kernels) on the full band and on a fragmented urban-like map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whitefi::{baseline_discovery, j_sift_discovery, l_sift_discovery, SyntheticOracle};
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    let maps = [
        ("open", SpectrumMap::all_free()),
        (
            "building5",
            SpectrumMap::from_free([5, 6, 7, 8, 9, 12, 13, 14, 17, 26]),
        ),
    ];
    for (label, map) in maps {
        let ap = map.available_channels()[0];
        group.bench_with_input(BenchmarkId::new("baseline", label), &map, |b, &map| {
            b.iter(|| {
                let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
                baseline_discovery(&mut o, map)
            })
        });
        group.bench_with_input(BenchmarkId::new("l_sift", label), &map, |b, &map| {
            b.iter(|| {
                let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
                l_sift_discovery(&mut o, map)
            })
        });
        group.bench_with_input(BenchmarkId::new("j_sift", label), &map, |b, &map| {
            b.iter(|| {
                let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
                j_sift_discovery(&mut o, map)
            })
        });
    }
    // Worst-case placement for J-SIFT: a 20 MHz AP at the top of the band.
    let map = SpectrumMap::all_free();
    let ap = WfChannel::from_parts(27, Width::W20);
    group.bench_function("j_sift/worst_case", |b| {
        b.iter(|| {
            let mut o = SyntheticOracle::new(ap, ChaCha8Rng::seed_from_u64(1));
            j_sift_discovery(&mut o, map)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
