//! Criterion benches for the discrete-event MAC simulator: events per
//! simulated second under the Figure 11-style workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whitefi::driver::{run_fixed, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_mac::{Frame, Medium};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

fn scenario(pairs: usize) -> Scenario {
    let map = SpectrumMap::all_free();
    let mut s = Scenario::new(42, map, 2);
    s.warmup = SimDuration::from_millis(200);
    s.duration = SimDuration::from_secs(1);
    for i in 0..pairs {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(i % 30, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(30),
            },
        });
    }
    s
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_sim");
    group.sample_size(10);
    for pairs in [0usize, 8, 17] {
        let s = scenario(pairs);
        group.bench_with_input(
            BenchmarkId::new("fixed_1s", format!("{pairs}_pairs")),
            &s,
            |b, s| b.iter(|| run_fixed(s, WfChannel::from_parts(15, Width::W20))),
        );
    }
    let s = scenario(8);
    group.bench_function("whitefi_adaptive_1s", |b| {
        b.iter(|| whitefi::driver::run_whitefi(&s, None))
    });
    group.finish();
}

/// A medium saturated with 60 concurrent transmissions across the whole
/// UHF band — the regime where per-query cost dominates `plan()`.
fn saturated_medium() -> Medium {
    let mut m = Medium::new();
    let t0 = SimTime::ZERO;
    let t1 = t0 + SimDuration::from_secs(1);
    for i in 0..60usize {
        let ch = WfChannel::from_parts(i % 30, Width::W5);
        // Half the load belongs to tracked networks 0..4, half is
        // SSID-less background (always foreign to every scanner).
        let ssid = if i % 2 == 0 { Some((i % 5) as u32) } else { None };
        m.start(i, false, ssid, ch, t0, t1, Frame::data(i, (i + 1) % 60, 500), 1.0);
    }
    m
}

fn bench_carrier_sense(c: &mut Criterion) {
    let m = saturated_medium();
    let w20: Vec<WfChannel> = (2..=27).map(|i| WfChannel::from_parts(i, Width::W20)).collect();
    c.bench_function("medium/carrier_sense_excl_src_26xW20", |b| {
        b.iter(|| {
            w20.iter()
                .filter(|&&ch| m.carrier_sensed(ch, Some(0)))
                .count()
        })
    });
    c.bench_function("medium/carrier_sense_excl_ssid_26xW20", |b| {
        b.iter(|| {
            w20.iter()
                .filter(|&&ch| m.carrier_sensed_excluding_ssid(ch, 3))
                .count()
        })
    });
}

criterion_group!(benches, bench_mac, bench_carrier_sense);
criterion_main!(benches);
