//! Criterion benches for the discrete-event MAC simulator: events per
//! simulated second under the Figure 11-style workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whitefi::driver::{run_fixed, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_phy::SimDuration;
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

fn scenario(pairs: usize) -> Scenario {
    let map = SpectrumMap::all_free();
    let mut s = Scenario::new(42, map, 2);
    s.warmup = SimDuration::from_millis(200);
    s.duration = SimDuration::from_secs(1);
    for i in 0..pairs {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(i % 30, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(30),
            },
        });
    }
    s
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_sim");
    group.sample_size(10);
    for pairs in [0usize, 8, 17] {
        let s = scenario(pairs);
        group.bench_with_input(
            BenchmarkId::new("fixed_1s", format!("{pairs}_pairs")),
            &s,
            |b, s| b.iter(|| run_fixed(s, WfChannel::from_parts(15, Width::W20))),
        );
    }
    let s = scenario(8);
    group.bench_function("whitefi_adaptive_1s", |b| {
        b.iter(|| whitefi::driver::run_whitefi(&s, None))
    });
    group.finish();
}

criterion_group!(benches, bench_mac);
criterion_main!(benches);
