//! Criterion benches for the discrete-event MAC simulator: events per
//! simulated second under the Figure 11-style workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use whitefi::driver::{run_fixed, BackgroundPair, BackgroundTraffic, Scenario};
use whitefi_mac::traffic::Sink;
use whitefi_mac::{global_event_totals, Frame, Medium, NodeConfig, Simulator};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{SpectrumMap, WfChannel, Width};

fn scenario(pairs: usize) -> Scenario {
    let map = SpectrumMap::all_free();
    let mut s = Scenario::new(42, map, 2);
    s.warmup = SimDuration::from_millis(200);
    s.duration = SimDuration::from_secs(1);
    for i in 0..pairs {
        s.background.push(BackgroundPair {
            channel: WfChannel::from_parts(i % 30, Width::W5),
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(30),
            },
        });
    }
    s
}

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_sim");
    group.sample_size(10);
    for pairs in [0usize, 8, 17] {
        let s = scenario(pairs);
        group.bench_with_input(
            BenchmarkId::new("fixed_1s", format!("{pairs}_pairs")),
            &s,
            |b, s| b.iter(|| run_fixed(s, WfChannel::from_parts(15, Width::W20))),
        );
    }
    let s = scenario(8);
    group.bench_function("whitefi_adaptive_1s", |b| {
        b.iter(|| whitefi::driver::run_whitefi(&s, None))
    });
    group.finish();

    // Saturated fig13-style load: 34 background pairs packing the band.
    // One warm run counts handled events so criterion can report the
    // headline events-per-second figure for the whole event core.
    let s34 = scenario(34);
    let before = global_event_totals();
    run_fixed(&s34, WfChannel::from_parts(15, Width::W20));
    let events_per_run = global_event_totals().delta_since(before).handled;
    let mut group = c.benchmark_group("mac_sim_saturated");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events_per_run));
    group.bench_function("fixed_1s_34_pairs_events", |b| {
        b.iter(|| run_fixed(&s34, WfChannel::from_parts(15, Width::W20)))
    });
    group.finish();
}

/// A static 73-node topology: 25 nodes share the delivery channel, the
/// rest sit elsewhere in the band — the shape of a fig13 churn run.
fn fanout_sim() -> (Simulator, WfChannel) {
    let main = WfChannel::from_parts(15, Width::W20);
    let mut sim = Simulator::new(7);
    for i in 0..73usize {
        let ch = if i % 3 == 0 {
            main
        } else {
            WfChannel::from_parts(i % 30, Width::W5)
        };
        // Spread positions so roughly half the co-channel nodes are in
        // range of node 0 and the reachability filter does real work.
        let mut cfg = NodeConfig::on_channel(ch).at((i as f64) * 16.0, 0.0);
        cfg.range = 600.0;
        sim.add_node(cfg, Box::new(Sink));
    }
    (sim, main)
}

fn bench_delivery_fanout(c: &mut Criterion) {
    let (sim, main) = fanout_sim();
    // Old shape: scan every node, test channel equality + range.
    c.bench_function("sim/fanout_full_scan_73", |b| {
        b.iter(|| {
            (0..sim.node_count())
                .filter(|&m| m != 0 && sim.node_channel(m) == main && sim.reaches(0, m))
                .count()
        })
    });
    // New shape: walk the per-(F, W) index, test range only.
    c.bench_function("sim/fanout_channel_index_73", |b| {
        b.iter(|| {
            sim.nodes_on_channel(main)
                .iter()
                .filter(|&&m| m != 0 && sim.reaches(0, m))
                .count()
        })
    });
    // The geometric check the bitsets replaced, for scale.
    c.bench_function("sim/fanout_full_scan_geometric_73", |b| {
        b.iter(|| {
            (0..sim.node_count())
                .filter(|&m| m != 0 && sim.node_channel(m) == main && sim.reaches_geometric(0, m))
                .count()
        })
    });
}

/// A medium saturated with 60 concurrent transmissions across the whole
/// UHF band — the regime where per-query cost dominates `plan()`.
fn saturated_medium() -> Medium {
    let mut m = Medium::new();
    let t0 = SimTime::ZERO;
    let t1 = t0 + SimDuration::from_secs(1);
    for i in 0..60usize {
        let ch = WfChannel::from_parts(i % 30, Width::W5);
        // Half the load belongs to tracked networks 0..4, half is
        // SSID-less background (always foreign to every scanner).
        let ssid = if i % 2 == 0 {
            Some(u32::try_from(i % 5).unwrap_or(0)) // i % 5 < 5, always fits
        } else {
            None
        };
        m.start(
            i,
            false,
            ssid,
            ch,
            t0,
            t1,
            Frame::data(i, (i + 1) % 60, 500),
            1.0,
        );
    }
    m
}

fn bench_carrier_sense(c: &mut Criterion) {
    let m = saturated_medium();
    let w20: Vec<WfChannel> = (2..=27)
        .map(|i| WfChannel::from_parts(i, Width::W20))
        .collect();
    c.bench_function("medium/carrier_sense_excl_src_26xW20", |b| {
        b.iter(|| {
            w20.iter()
                .filter(|&&ch| m.carrier_sensed(ch, Some(0)))
                .count()
        })
    });
    c.bench_function("medium/carrier_sense_excl_ssid_26xW20", |b| {
        b.iter(|| {
            w20.iter()
                .filter(|&&ch| m.carrier_sensed_excluding_ssid(ch, 3))
                .count()
        })
    });
}

criterion_group!(
    benches,
    bench_mac,
    bench_carrier_sense,
    bench_delivery_fanout
);
criterion_main!(benches);
