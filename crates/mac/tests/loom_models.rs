//! Race-detection model tests for the cross-shard [`BoundaryBus`]
//! (DESIGN.md §16).
//!
//! The default build checks the bus under the in-repo deterministic
//! interleaving explorer (`whitefi_mac::model`, a preemption-bounded
//! CHESS-style scheduler): every assertion below holds in *every*
//! explored interleaving, so a lost wakeup, a barrier that admits more
//! than one round of skew, or a contact flag that fails to drain a
//! blocked peer shows up as a deterministic panic with the offending
//! schedule attached.
//!
//! With `RUSTFLAGS="--cfg loom"` (and the loom dev-dependency added —
//! README "Race detection"), the same scenarios run under real loom's
//! exhaustive C11 memory-model exploration instead.

#[cfg(not(loom))]
mod minloom {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use whitefi_mac::msync::AtomicUsize;
    use whitefi_mac::{model, BoundaryBus, CutContact};

    /// Two pooled groups, two rounds: in every interleaving each exchange
    /// returns exactly the peer's activity for that round, and the barrier
    /// never lets a group run more than one round ahead of its peer.
    #[test]
    fn model_exchange_merges_and_bounds_skew() {
        let explored = model::check(|| {
            let bus = Arc::new(BoundaryBus::new(2));
            let round_of = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
            let worker = |g: usize| {
                let bus = Arc::clone(&bus);
                let round_of = Arc::clone(&round_of);
                model::spawn(move || {
                    for round in 0..2usize {
                        round_of[g].store(round, Ordering::SeqCst);
                        let remote = bus
                            .exchange(g, round, vec![(g, 1 << round)])
                            .expect("no contact flagged in this model");
                        assert_eq!(remote, vec![(1 - g, 1 << round)], "group {g} round {round}");
                        // A completed exchange proves the peer published this
                        // round: it can lag by at most the round we are in.
                        let peer = round_of[1 - g].load(Ordering::SeqCst);
                        assert!(
                            round.saturating_sub(peer) <= 1,
                            "group {g} at round {round} saw peer at {peer}: skew > 1"
                        );
                    }
                })
            };
            let a = worker(0);
            let b = worker(1);
            a.join();
            b.join();
            assert!(!bus.contact());
        });
        assert!(
            explored > 1,
            "explorer found only {explored} interleaving(s)"
        );
    }

    /// Sequential-driver shape under the model: publishes from two model
    /// threads, then a collect sees both — publish order must not matter.
    #[test]
    fn model_publish_collect_is_order_independent() {
        let explored = model::check(|| {
            let bus = Arc::new(BoundaryBus::new(3));
            let p0 = {
                let bus = Arc::clone(&bus);
                model::spawn(move || bus.publish(0, 0, vec![(0, 0b01)]))
            };
            let p1 = {
                let bus = Arc::clone(&bus);
                model::spawn(move || bus.publish(1, 0, vec![(5, 0b10)]))
            };
            p0.join();
            p1.join();
            bus.publish(2, 0, vec![]);
            // Whatever order the two publishers ran in, the merged view is
            // the same sorted-by-cell union.
            assert_eq!(bus.collect_others(2, 0), vec![(0, 0b01), (5, 0b10)]);
            assert_eq!(bus.collect_others(0, 0), vec![(5, 0b10)]);
        });
        assert!(
            explored > 1,
            "explorer found only {explored} interleaving(s)"
        );
    }

    /// A peer that flags a contact instead of publishing must wake a
    /// blocked exchange with `Err(CutContact)` in every interleaving —
    /// whether the flag lands before the exchange starts, while it holds
    /// the lock, or after it has parked on the barrier condvar.
    #[test]
    fn model_contact_wakes_blocked_exchange() {
        let explored = model::check(|| {
            let bus = Arc::new(BoundaryBus::new(2));
            let waiter = {
                let bus = Arc::clone(&bus);
                model::spawn(move || {
                    assert_eq!(
                        bus.exchange(0, 0, vec![(7, 0b100)]),
                        Err(CutContact),
                        "blocked exchange must drain with CutContact"
                    );
                })
            };
            let flagger = {
                let bus = Arc::clone(&bus);
                model::spawn(move || bus.flag_contact())
            };
            waiter.join();
            flagger.join();
            assert!(bus.contact());
            // Later exchanges observe the abort immediately.
            assert_eq!(bus.exchange(1, 0, vec![]), Err(CutContact));
        });
        assert!(
            explored > 1,
            "explorer found only {explored} interleaving(s)"
        );
    }
}

/// Real-loom variants of the scenarios above. Compiled only with
/// `--cfg loom` on a machine that added the loom dev-dependency; see
/// README "Race detection". Kept in the same file so the two backends
/// cannot drift apart silently.
#[cfg(loom)]
mod real_loom {
    use loom::sync::Arc;
    use whitefi_mac::{BoundaryBus, CutContact};

    #[test]
    fn loom_contact_wakes_blocked_exchange() {
        loom::model(|| {
            let bus = Arc::new(BoundaryBus::new(2));
            let waiter = {
                let bus = Arc::clone(&bus);
                // lint:allow(nondet, loom explores the interleavings deterministically under cfg(loom))
                loom::thread::spawn(move || {
                    assert_eq!(bus.exchange(0, 0, vec![(7, 0b100)]), Err(CutContact));
                })
            };
            bus.flag_contact();
            waiter.join().unwrap();
        });
    }

    #[test]
    fn loom_exchange_merges_two_groups() {
        loom::model(|| {
            let bus = Arc::new(BoundaryBus::new(2));
            let a = {
                let bus = Arc::clone(&bus);
                // lint:allow(nondet, loom explores the interleavings deterministically under cfg(loom))
                loom::thread::spawn(move || {
                    assert_eq!(bus.exchange(0, 0, vec![(0, 1)]), Ok(vec![(1, 2)]));
                })
            };
            assert_eq!(bus.exchange(1, 0, vec![(1, 2)]), Ok(vec![(0, 1)]));
            a.join().unwrap();
        });
    }
}
