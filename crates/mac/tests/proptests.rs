//! Property-based tests for the discrete-event MAC simulator.

use proptest::prelude::*;
use whitefi_mac::traffic::Sink;
use whitefi_mac::{
    influence_closure, influences, potential_influences, shard_components, CbrSender, NodeConfig,
    NodeSite, SaturatingSender, ShardSite, Simulator,
};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{UhfChannel, WfChannel, Width};

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W5), Just(Width::W10), Just(Width::W20)]
}

fn channel_for(center: usize, w: Width) -> WfChannel {
    let h = w.half_span();
    let c = center.clamp(h, 29 - h);
    WfChannel::from_parts(c, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every byte received was sent; acked bytes never
    /// exceed received bytes (an ACK implies delivery).
    #[test]
    fn byte_conservation(
        seed in 0u64..1000,
        w in arb_width(),
        center in 0usize..30,
        bytes in 100usize..1400,
        n_flows in 1usize..4,
    ) {
        let c = channel_for(center, w);
        let mut sim = Simulator::new(seed);
        let mut pairs = Vec::new();
        for _ in 0..n_flows {
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            let tx = sim.add_node(NodeConfig::on_channel(c), Box::new(SaturatingSender {
                dst: rx, bytes, pipeline: 2,
            }));
            pairs.push((tx, rx));
        }
        sim.run_until(SimTime::from_millis(500));
        for (tx, rx) in pairs {
            let sent = sim.stats(tx).tx_acked_bytes;
            let recv = sim.stats(rx).rx_data_bytes;
            // Acked ⇒ delivered, so acked ≤ received; received may exceed
            // acked when an ACK is lost and the frame retransmitted.
            prop_assert!(sent <= recv, "acked {} > received {}", sent, recv);
            prop_assert!(recv > 0, "flow starved entirely");
        }
    }

    /// Channel capacity: aggregate goodput never exceeds the width's PHY
    /// rate, regardless of flow count.
    #[test]
    fn goodput_bounded_by_phy_rate(
        seed in 0u64..1000,
        w in arb_width(),
        n_flows in 1usize..5,
    ) {
        let c = channel_for(15, w);
        let mut sim = Simulator::new(seed);
        let mut rxs = Vec::new();
        for _ in 0..n_flows {
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            sim.add_node(NodeConfig::on_channel(c), Box::new(SaturatingSender::new(rx)));
            rxs.push(rx);
        }
        let span = SimDuration::from_secs(1);
        sim.run_until(SimTime::ZERO + span);
        let total: f64 = rxs.iter().map(|&r| sim.stats(r).rx_goodput_mbps(span)).sum();
        let rate = whitefi_phy::PhyTiming::for_width(w).data_rate_mbps();
        prop_assert!(total <= rate, "goodput {} exceeds PHY rate {}", total, rate);
        prop_assert!(total > 0.3 * rate, "goodput {} implausibly low vs {}", total, rate);
    }

    /// Medium airtime accounting: the busy fraction of a saturated
    /// channel is high; an untouched channel is exactly idle.
    #[test]
    fn airtime_accounting(seed in 0u64..1000, w in arb_width()) {
        let c = channel_for(10, w);
        let mut sim = Simulator::new(seed);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        sim.add_node(NodeConfig::on_channel(c), Box::new(SaturatingSender::new(rx)));
        sim.run_until(SimTime::from_secs(1));
        let mid = UhfChannel::from_index(c.center().index());
        let busy = sim.medium().airtime_in_window(
            mid,
            SimTime::from_millis(100),
            SimTime::from_secs(1),
        );
        prop_assert!(busy > 0.5, "saturated channel busy only {}", busy);
        // A channel outside the span is idle.
        let outside = UhfChannel::from_index(if c.high_index() < 29 { 29 } else { 0 });
        let idle = sim.medium().airtime_in_window(
            outside,
            SimTime::from_millis(100),
            SimTime::from_secs(1),
        );
        prop_assert_eq!(idle, 0.0);
    }

    /// Determinism: identical seeds and topologies give identical stats.
    #[test]
    fn deterministic(seed in 0u64..100) {
        let run = || {
            let c = channel_for(12, Width::W10);
            let mut sim = Simulator::new(seed);
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            sim.add_node(NodeConfig::on_channel(c), Box::new(CbrSender::new(
                rx, SimDuration::from_millis(7),
            )));
            sim.add_node(NodeConfig::on_channel(c), Box::new(SaturatingSender::new(rx)));
            sim.run_until(SimTime::from_millis(400));
            (sim.stats(rx), sim.stats(1), sim.stats(2))
        };
        prop_assert_eq!(run(), run());
    }

    /// No incumbent violations when no incumbents exist.
    #[test]
    fn no_spurious_violations(seed in 0u64..100, w in arb_width()) {
        let c = channel_for(8, w);
        let mut sim = Simulator::new(seed);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        sim.add_node(NodeConfig::on_channel(c), Box::new(SaturatingSender::new(rx)));
        sim.run_until(SimTime::from_millis(300));
        for n in 0..sim.node_count() {
            prop_assert_eq!(sim.stats(n).incumbent_violations, 0);
        }
    }

    /// Pruning soundness: the interference graph's reverse-reachability
    /// closure agrees with a brute-force "could node `u` ever interact
    /// with the root set?" check over random channels, positions, and
    /// ranges. Brute force builds the full edge matrix from first
    /// principles (spanned UHF index sets intersect AND the engine's
    /// range predicate) and saturates reachability by fixpoint.
    #[test]
    fn influence_closure_matches_bruteforce(
        nodes in prop::collection::vec(
            (arb_width(), 0usize..30,
             -500.0f64..500.0, -500.0f64..500.0, 10.0f64..800.0),
            1..24,
        ),
        n_roots in 1usize..5,
    ) {
        let sites: Vec<NodeSite> = nodes
            .iter()
            .map(|&(w, center, x, y, range)| {
                NodeSite::on_channel(channel_for(center, w)).at(x, y).with_range(range)
            })
            .collect();
        let roots: Vec<usize> = (0..n_roots.min(sites.len())).collect();

        // Brute-force edge matrix.
        let n = sites.len();
        let edge = |u: usize, v: usize| -> bool {
            let su: Vec<usize> = sites[u].channel.spanned().map(|c| c.index()).collect();
            let overlap = sites[v].channel.spanned().any(|c| su.contains(&c.index()));
            let dx = sites[u].pos.0 - sites[v].pos.0;
            let dy = sites[u].pos.1 - sites[v].pos.1;
            overlap && (dx * dx + dy * dy).sqrt() <= sites[u].range
        };
        // `influences` is exactly that edge relation.
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    influences(&sites[u], &sites[v]), edge(u, v),
                    "edge predicate mismatch at ({}, {})", u, v
                );
            }
        }
        // Fixpoint reverse reachability.
        let mut brute = vec![false; n];
        for &r in &roots { brute[r] = true; }
        loop {
            let mut changed = false;
            for u in 0..n {
                if !brute[u] && (0..n).any(|v| brute[v] && edge(u, v)) {
                    brute[u] = true;
                    changed = true;
                }
            }
            if !changed { break; }
        }
        prop_assert_eq!(influence_closure(&sites, &roots), brute);
    }

    /// Shard partitions are truly influence-closed: across random
    /// footprints, positions and ranges, `shard_components` labels two
    /// sites alike exactly when a brute-force O(n²) fixpoint over the
    /// symmetrized potential-influence edge relation connects them —
    /// so no possible retune can ever create a cross-shard edge.
    #[test]
    fn shard_components_match_bruteforce_reachability(
        nodes in prop::collection::vec(
            (0u32..(1 << 30),
             -500.0f64..500.0, -500.0f64..500.0, 10.0f64..800.0),
            1..24,
        ),
    ) {
        let sites: Vec<ShardSite> = nodes
            .iter()
            .map(|&(footprint, x, y, range)| {
                let mut s = ShardSite::new((x, y), range);
                s.footprint = footprint;
                s
            })
            .collect();
        let n = sites.len();
        // Brute-force edge relation from first principles: footprints
        // share a UHF bit AND either endpoint's range covers the pair.
        let edge = |u: usize, v: usize| -> bool {
            let dx = sites[u].pos.0 - sites[v].pos.0;
            let dy = sites[u].pos.1 - sites[v].pos.1;
            let d = (dx * dx + dy * dy).sqrt();
            sites[u].footprint & sites[v].footprint != 0
                && (d <= sites[u].range || d <= sites[v].range)
        };
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    potential_influences(&sites[u], &sites[v]), edge(u, v),
                    "edge predicate mismatch at ({}, {})", u, v
                );
            }
        }
        // Fixpoint transitive closure of the (symmetric) edge relation.
        let mut reach: Vec<Vec<bool>> = (0..n)
            .map(|u| (0..n).map(|v| u == v || edge(u, v)).collect())
            .collect();
        loop {
            let mut changed = false;
            for w in 0..n {
                for u in 0..n {
                    for v in 0..n {
                        if !reach[u][v] && reach[u][w] && reach[w][v] {
                            reach[u][v] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed { break; }
        }
        let labels = shard_components(&sites);
        prop_assert_eq!(labels.len(), n);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    labels[u] == labels[v], reach[u][v],
                    "component labels disagree with reachability at ({}, {})", u, v
                );
            }
        }
        // Labels are dense and in first-appearance order.
        let mut next = 0;
        for &l in &labels {
            prop_assert!(l <= next, "label {} skipped ahead of {}", l, next);
            if l == next { next += 1; }
        }
    }

    /// The precomputed reachability bitsets agree with the brute-force
    /// geometric range predicate for every ordered pair, across random
    /// topologies (positions and per-node ranges).
    #[test]
    fn reachability_sets_match_bruteforce(
        nodes in prop::collection::vec(
            (-500.0f64..500.0, -500.0f64..500.0, 10.0f64..800.0),
            2..40,
        ),
    ) {
        let c = channel_for(15, Width::W10);
        let mut sim = Simulator::new(1);
        for &(x, y, range) in &nodes {
            let mut cfg = NodeConfig::on_channel(c).at(x, y);
            cfg.range = range;
            sim.add_node(cfg, Box::new(Sink));
        }
        for a in 0..sim.node_count() {
            for b in 0..sim.node_count() {
                prop_assert_eq!(
                    sim.reaches(a, b),
                    sim.reaches_geometric(a, b),
                    "bitset and geometry disagree for ({}, {})", a, b
                );
            }
        }
    }
}

/// Exact range boundary: the bitsets must preserve the original
/// `sqrt(d²) <= range` comparison, including the equality case.
#[test]
fn reachability_exact_boundary() {
    let c = channel_for(15, Width::W10);
    let mut sim = Simulator::new(1);
    for &(x, range) in &[(0.0f64, 100.0f64), (100.0, 100.0), (201.0, 100.0)] {
        let mut cfg = NodeConfig::on_channel(c).at(x, 0.0);
        cfg.range = range;
        sim.add_node(cfg, Box::new(Sink));
    }
    // d(0,1) == 100 == range: reachable on the exact boundary.
    assert!(sim.reaches(0, 1));
    assert!(sim.reaches(1, 0));
    // d(1,2) == 101 > range: just outside.
    assert!(!sim.reaches(1, 2));
    assert!(!sim.reaches(2, 1));
    assert_eq!(sim.reaches(0, 2), sim.reaches_geometric(0, 2));
}
