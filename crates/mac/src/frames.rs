//! Frame types exchanged over the simulated medium.

use serde::{Deserialize, Serialize};
use whitefi_phy::synth::BurstKind;
use whitefi_phy::timing::{chirp_bytes_for_slot, ACK_BYTES, BEACON_BYTES, CTS_BYTES};
use whitefi_spectrum::{AirtimeVector, SpectrumMap, WfChannel};

/// Index of a node within a [`crate::Simulator`].
pub type NodeId = usize;

/// MAC frame kinds, including WhiteFi's control frames.
///
/// `Report` carries a full airtime vector inline, making it much larger
/// than the control variants; frames are short-lived stack values, so
/// the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrameKind {
    /// A data frame carrying `bytes` of payload.
    Data {
        /// MAC payload length.
        bytes: usize,
    },
    /// A client's periodic control report: its spectrum map and airtime
    /// utilization vector (§4.1, "Clients periodically transmit this
    /// information to the AP as part of a control message").
    Report {
        /// The client's observed incumbent occupancy.
        map: SpectrumMap,
        /// The client's measured per-channel load.
        airtime: AirtimeVector,
    },
    /// An AP beacon, advertising the backup channel (§4.3).
    Beacon {
        /// The 5 MHz backup channel clients should chirp on after a
        /// disconnection.
        backup: Option<WfChannel>,
    },
    /// The AP's broadcast ordering clients onto a new channel (§4.1,
    /// "The AP broadcasts the new channel to its clients").
    SwitchAnnounce {
        /// The channel to move to.
        target: WfChannel,
    },
    /// A disconnection chirp on the backup channel, carrying the chirping
    /// node's white-space availability (§4.3). The identity `slot` is
    /// encoded in the frame's on-air length so SIFT can read it without
    /// decoding.
    Chirp {
        /// The chirping node's spectrum map.
        map: SpectrumMap,
        /// Identity slot encoded in the chirp length.
        slot: u8,
        /// Network security key. §4.3: "it will process the chirp packet
        /// only if it is encoded with the network's security key (similar
        /// to Wi-Fi)" — a fake chirp can still drag the AP's main radio
        /// to the backup channel briefly, but cannot steer the network.
        key: u32,
    },
    /// A MAC acknowledgement (sent by the engine, one SIFS after a
    /// delivered unicast frame).
    Ack,
    /// A CTS-to-self (sent by the engine one SIFS after every beacon, so
    /// SIFT can match beacons in the time domain — §4.2.1).
    Cts,
}

impl FrameKind {
    /// On-air MAC payload size in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            FrameKind::Data { bytes } => *bytes,
            FrameKind::Report { .. } => 64,
            FrameKind::Beacon { .. } => BEACON_BYTES,
            FrameKind::SwitchAnnounce { .. } => 32,
            FrameKind::Chirp { slot, .. } => chirp_bytes_for_slot(*slot),
            FrameKind::Ack => ACK_BYTES,
            FrameKind::Cts => CTS_BYTES,
        }
    }

    /// The burst kind SIFT-visible captures report for this frame.
    pub fn burst_kind(&self) -> BurstKind {
        match self {
            FrameKind::Data { .. }
            | FrameKind::Report { .. }
            | FrameKind::SwitchAnnounce { .. } => BurstKind::Data,
            FrameKind::Beacon { .. } => BurstKind::Beacon,
            FrameKind::Chirp { .. } => BurstKind::Chirp,
            FrameKind::Ack => BurstKind::Ack,
            FrameKind::Cts => BurstKind::Cts,
        }
    }
}

/// A MAC frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination; `None` broadcasts (no acknowledgement).
    pub dst: Option<NodeId>,
    /// Frame contents.
    pub kind: FrameKind,
}

impl Frame {
    /// A unicast data frame.
    pub fn data(src: NodeId, dst: NodeId, bytes: usize) -> Self {
        Self {
            src,
            dst: Some(dst),
            kind: FrameKind::Data { bytes },
        }
    }

    /// On-air payload size.
    pub fn bytes(&self) -> usize {
        self.kind.bytes()
    }

    /// Whether delivery of this frame elicits a MAC acknowledgement.
    pub fn needs_ack(&self) -> bool {
        self.dst.is_some() && matches!(self.kind, FrameKind::Data { .. } | FrameKind::Report { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sizes() {
        assert_eq!(Frame::data(0, 1, 1000).bytes(), 1000);
        assert_eq!(FrameKind::Ack.bytes(), 14);
        assert_eq!(FrameKind::Cts.bytes(), 14);
        assert_eq!(FrameKind::Beacon { backup: None }.bytes(), 80);
        assert_eq!(
            FrameKind::Chirp {
                map: SpectrumMap::all_free(),
                slot: 0,
                key: 0
            }
            .bytes(),
            40
        );
    }

    #[test]
    fn ack_rules() {
        assert!(Frame::data(0, 1, 100).needs_ack());
        let report = Frame {
            src: 0,
            dst: Some(1),
            kind: FrameKind::Report {
                map: SpectrumMap::all_free(),
                airtime: AirtimeVector::idle(),
            },
        };
        assert!(report.needs_ack());
        let beacon = Frame {
            src: 0,
            dst: None,
            kind: FrameKind::Beacon { backup: None },
        };
        assert!(!beacon.needs_ack());
        let chirp = Frame {
            src: 0,
            dst: None,
            kind: FrameKind::Chirp {
                map: SpectrumMap::all_free(),
                slot: 2,
                key: 7,
            },
        };
        assert!(!chirp.needs_ack());
    }

    #[test]
    fn burst_kind_mapping() {
        assert_eq!(FrameKind::Data { bytes: 10 }.burst_kind(), BurstKind::Data);
        assert_eq!(
            FrameKind::Beacon { backup: None }.burst_kind(),
            BurstKind::Beacon
        );
        assert_eq!(FrameKind::Ack.burst_kind(), BurstKind::Ack);
        assert_eq!(FrameKind::Cts.burst_kind(), BurstKind::Cts);
    }
}
