//! Frame-level trace export — the simulator's analogue of the smoltcp
//! examples' `--pcap` option: every frame the medium carried, rendered as
//! `tcpdump`-style lines or exported as structured records for tooling.
//!
//! Trace recording is pay-as-you-go: the medium retains finished
//! transmissions only up to [`Medium::history_horizon`], so a driver
//! that never exports a trace (or only ever exports a short trailing
//! window — see [`export_recent`]) can tighten the horizon and the
//! per-event retention cost shrinks with it. The WhiteFi driver does
//! exactly this for fixed-channel baseline runs, which issue no scanner
//! queries at all.

use crate::frames::FrameKind;
use crate::medium::{Medium, Transmission};
use serde::{Deserialize, Serialize};
use whitefi_phy::{SimDuration, SimTime};

/// One exported trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Transmission start, seconds.
    pub t_start_s: f64,
    /// On-air duration, microseconds.
    pub duration_us: f64,
    /// Transmitting node.
    pub src: usize,
    /// Destination node (`None` = broadcast).
    pub dst: Option<usize>,
    /// Frame kind label.
    pub kind: String,
    /// Payload bytes.
    pub bytes: usize,
    /// Channel as `(tv_center, width_mhz)`.
    pub tv_center: u32,
    /// Width in MHz.
    pub width_mhz: f64,
}

fn kind_label(kind: &FrameKind) -> String {
    match kind {
        FrameKind::Data { .. } => "DATA".into(),
        FrameKind::Report { .. } => "REPORT".into(),
        FrameKind::Beacon { .. } => "BEACON".into(),
        FrameKind::SwitchAnnounce { target } => format!("SWITCH->{target}"),
        FrameKind::Chirp { slot, .. } => format!("CHIRP[slot {slot}]"),
        FrameKind::Ack => "ACK".into(),
        FrameKind::Cts => "CTS".into(),
    }
}

/// Converts a transmission to a trace record.
pub fn record(tx: &Transmission) -> TraceRecord {
    TraceRecord {
        t_start_s: tx.start.as_secs_f64(),
        duration_us: tx.end.since(tx.start).as_nanos() as f64 / 1e3,
        src: tx.src,
        dst: tx.frame.dst,
        kind: kind_label(&tx.frame.kind),
        bytes: tx.frame.bytes(),
        tv_center: tx.channel.center().tv_channel(),
        width_mhz: tx.channel.width().mhz(),
    }
}

/// Exports all transmissions in `[from, to)` (bounded by the medium's
/// retention horizon) as records, oldest first.
pub fn export(medium: &Medium, from: SimTime, to: SimTime) -> Vec<TraceRecord> {
    let mut records: Vec<TraceRecord> = medium
        .visible_window_transmissions(from, to)
        .iter()
        .map(record)
        .collect();
    // `total_cmp` orders identically to `partial_cmp` here: start times
    // are finite nonnegative seconds, so no NaN/-0.0 cases diverge.
    records.sort_by(|a, b| a.t_start_s.total_cmp(&b.t_start_s));
    records
}

/// Exports the trailing `window` of traffic ending at `now` — the
/// windowed view a scan consumer needs, without assuming the medium
/// retained anything older.
pub fn export_recent(medium: &Medium, now: SimTime, window: SimDuration) -> Vec<TraceRecord> {
    let from = SimTime::ZERO + now.saturating_since(SimTime::ZERO + window);
    export(medium, from, now)
}

/// Renders records as `tcpdump`-style lines.
pub fn render_tcpdump(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let dst = r
            .dst
            .map(|d| d.to_string())
            .unwrap_or_else(|| "*".to_string());
        out.push_str(&format!(
            "{:>12.6}  n{} > n{}  (ch{}, {}MHz)  {} {}B  {:.0}µs\n",
            r.t_start_s, r.src, dst, r.tv_center, r.width_mhz, r.kind, r.bytes, r.duration_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{NodeConfig, Simulator};
    use crate::traffic::{SaturatingSender, Sink};
    use whitefi_spectrum::{WfChannel, Width};

    #[test]
    fn trace_captures_data_and_acks_in_order() {
        let c = WfChannel::from_parts(10, Width::W20);
        let mut sim = Simulator::new(1);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(SaturatingSender {
                dst: rx,
                bytes: 500,
                pipeline: 1,
            }),
        );
        sim.run_until(SimTime::from_millis(50));
        let records = export(sim.medium(), SimTime::ZERO, SimTime::from_millis(50));
        assert!(!records.is_empty());
        // Alternating DATA/ACK, time-ordered, on TV channel 31 (index 10).
        let mut last = 0.0;
        let mut data = 0;
        let mut acks = 0;
        for r in &records {
            assert!(r.t_start_s >= last);
            last = r.t_start_s;
            assert_eq!(r.tv_center, 31);
            match r.kind.as_str() {
                "DATA" => data += 1,
                "ACK" => acks += 1,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(data >= 1 && acks >= 1);
        assert!(
            (data as i64 - acks as i64).abs() <= 1,
            "data {data} acks {acks}"
        );
        let text = render_tcpdump(&records);
        assert!(text.contains("DATA 500B"));
        assert!(text.contains("ACK 14B"));
        assert!(text.contains("(ch31, 20MHz)"));
    }

    #[test]
    fn export_recent_is_trailing_window() {
        let c = WfChannel::from_parts(10, Width::W20);
        let mut sim = Simulator::new(3);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(SaturatingSender {
                dst: rx,
                bytes: 500,
                pipeline: 1,
            }),
        );
        sim.run_until(SimTime::from_millis(50));
        let now = sim.now();
        let window = whitefi_phy::SimDuration::from_millis(10);
        let recent = export_recent(sim.medium(), now, window);
        let manual = export(sim.medium(), now - window, now);
        assert!(!recent.is_empty());
        assert_eq!(recent, manual);
    }

    #[test]
    fn broadcast_rendered_with_star() {
        let c = WfChannel::from_parts(5, Width::W5);
        let mut sim = Simulator::new(2);
        struct OneBeacon;
        impl crate::sim::Behavior for OneBeacon {
            fn on_start(&mut self, ctx: &mut crate::sim::Ctx) {
                let src = ctx.id();
                ctx.send(crate::frames::Frame {
                    src,
                    dst: None,
                    kind: FrameKind::Beacon { backup: None },
                });
            }
        }
        sim.add_node(NodeConfig::on_channel(c).ap(), Box::new(OneBeacon));
        sim.run_until(SimTime::from_millis(20));
        let records = export(sim.medium(), SimTime::ZERO, SimTime::from_millis(20));
        let text = render_tcpdump(&records);
        assert!(text.contains("> n*"), "{text}");
        assert!(text.contains("BEACON"));
        assert!(text.contains("CTS"), "beacon must trail a CTS-to-self");
    }
}
