//! Deterministic fault injection at the [`crate::medium::Medium`]
//! `start`/`finish` boundary.
//!
//! A [`FaultPlan`] describes *what can go wrong* — transmissions dropped
//! at every receiver, broadcast control frames duplicated or delivered
//! late, incumbent detection stretched per node, the scanner history
//! horizon skewed — and the engine applies it mechanically, so every
//! driver built on [`crate::sim::Simulator`] gets fault coverage for
//! free.
//!
//! # Determinism
//!
//! Faults draw from their own `ChaCha8Rng` family, seeded from
//! `splitmix64(plan.seed ^ sim_seed)` with one stream per node (the
//! node's RNG *stream id*, so pruned and unpruned networks fault
//! identically, DESIGN.md §9–10). Node behaviour RNGs are never
//! touched: the same `(sim seed, plan)` pair always yields the same
//! fault sequence, and a plan with every probability at zero produces
//! exactly the event sequence of running with no plan at all.

use crate::frames::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use whitefi_phy::{SimDuration, SimTime};

/// Salt separating the fault RNG family from the node behaviour family
/// (which is seeded directly from the simulator seed).
const FAULT_SEED_SALT: u64 = 0x57_46_69_46_61_75_6c_74; // "WFiFault"

/// SplitMix64: decorrelates the fault seed from the simulator seed so
/// the two ChaCha families never share a seed even when a plan reuses
/// the scenario seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic description of the faults to inject into one run.
///
/// Probabilities are per *transmission* (drop) or per *broadcast
/// transmission* (duplicate, delay); durations bound per-node uniform
/// draws. The all-zero [`FaultPlan::quiet`] plan is behaviourally
/// identical to running with no plan installed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault RNG family (combined with the simulator seed).
    pub seed: u64,
    /// Probability that a transmission is lost at *every* receiver
    /// (ACKs and retries then play out naturally at the sender).
    pub drop_prob: f64,
    /// Probability that a delivered broadcast control frame (beacon,
    /// switch announcement, chirp) is processed twice by each receiver.
    pub dup_prob: f64,
    /// Probability that a delivered broadcast control frame reaches the
    /// receiver's behaviour only after an extra processing delay.
    pub delay_prob: f64,
    /// Upper bound of the uniform delivery-delay draw.
    pub max_delay: SimDuration,
    /// Upper bound of the per-node uniform *extra* incumbent detection
    /// latency (stretches every `IncumbentCheck` of that node).
    pub max_detection_extra: SimDuration,
    /// When set, overrides [`crate::medium::Medium::history_horizon`]
    /// — clock skew on the scanner's look-back window.
    pub history_skew: Option<SimDuration>,
}

impl FaultPlan {
    /// The do-nothing plan: every probability zero, no skew. Running
    /// with this plan is event-for-event identical to running with no
    /// plan (the fault RNGs advance, but no decision ever fires).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: SimDuration::ZERO,
            max_detection_extra: SimDuration::ZERO,
            history_skew: None,
        }
    }
}

/// The faults chosen for one transmission, drawn at `Medium::start`
/// time and applied at `Medium::finish` (delivery) time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultDecision {
    /// Lose the frame at every receiver.
    pub drop: bool,
    /// Dispatch the broadcast payload twice to each receiver.
    pub duplicate: bool,
    /// Defer each receiver's behaviour dispatch by this much.
    pub delay: Option<SimDuration>,
}

impl FaultDecision {
    /// Whether this decision perturbs anything at all.
    pub fn is_noop(&self) -> bool {
        !self.drop && !self.duplicate && self.delay.is_none()
    }
}

/// What a fired fault did — the structured log the oracles consult to
/// *explain* liveness misses (a reassociation slowed by chirp loss is a
/// documented outcome, not a protocol bug).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the faulted transmission started (or the node registered,
    /// for detection stretch).
    pub time: SimTime,
    /// The transmitting (or registered) node.
    pub node: NodeId,
    /// What was injected.
    pub kind: FaultEventKind,
}

/// The kinds of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEventKind {
    /// Transmission lost at every receiver.
    Drop,
    /// Broadcast payload dispatched twice per receiver.
    Duplicate,
    /// Broadcast dispatch deferred by the given amount.
    Delay(SimDuration),
    /// All of the node's incumbent checks run this much later.
    DetectionExtra(SimDuration),
}

/// Monotone counters of fired faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transmissions dropped at every receiver.
    pub drops: u64,
    /// Broadcast frames dispatched twice.
    pub duplicates: u64,
    /// Broadcast dispatches deferred.
    pub delays: u64,
    /// Nodes whose incumbent detection was stretched.
    pub detection_extras: u64,
}

/// Engine-side state of an installed [`FaultPlan`].
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// One fault RNG per node, indexed by node id; seeded on the node's
    /// *stream id* so pruning cannot shift another node's faults.
    rngs: Vec<ChaCha8Rng>,
    /// Per-node extra incumbent-detection latency, drawn at
    /// registration.
    extras: Vec<SimDuration>,
    /// Decisions drawn at `start` awaiting their `finish`.
    pending: BTreeMap<u64, FaultDecision>,
    events: Vec<FaultEvent>,
    stats: FaultStats,
    /// Combined fault-family seed (`splitmix64` of plan ⊕ sim seed).
    family_seed: u64,
}

impl FaultState {
    /// Builds the engine state for `plan` under the given simulator
    /// seed.
    pub fn new(plan: FaultPlan, sim_seed: u64) -> Self {
        let family_seed = splitmix64(plan.seed ^ sim_seed ^ FAULT_SEED_SALT);
        Self {
            plan,
            rngs: Vec::new(),
            extras: Vec::new(),
            pending: BTreeMap::new(),
            events: Vec::new(),
            stats: FaultStats::default(),
            family_seed,
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers node `id` (must be called in id order) on RNG stream
    /// `stream`; returns the node's extra incumbent-detection latency.
    pub fn register_node(&mut self, id: NodeId, stream: u64, now: SimTime) -> SimDuration {
        debug_assert_eq!(self.rngs.len(), id, "fault registration out of order");
        let mut rng = ChaCha8Rng::seed_from_u64(self.family_seed);
        rng.set_stream(stream); // stream-map: domain=fault-lanes salt=FAULT_SEED_SALT streams=0..=4294967295 role="per-node fault draws (stream = node id)"
        let max = self.plan.max_detection_extra.as_nanos();
        let extra = if max > 0 {
            SimDuration::from_nanos(rng.gen_range(0..=max))
        } else {
            SimDuration::ZERO
        };
        self.rngs.push(rng);
        self.extras.push(extra);
        if extra > SimDuration::ZERO {
            self.stats.detection_extras += 1;
            self.events.push(FaultEvent {
                time: now,
                node: id,
                kind: FaultEventKind::DetectionExtra(extra),
            });
        }
        extra
    }

    /// The extra incumbent-detection latency of node `n` (zero for
    /// nodes added before the plan was installed).
    pub fn detection_extra(&self, n: NodeId) -> SimDuration {
        self.extras.get(n).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Draws the fault decision for transmission `tx_id` just started
    /// by `src`. Exactly three gate draws per call (plus one amount
    /// draw per firing delay), all from `src`'s dedicated fault RNG.
    pub fn decide(&mut self, src: NodeId, now: SimTime, tx_id: u64, broadcast: bool) {
        let Some(rng) = self.rngs.get_mut(src) else {
            return; // node predates the plan: never faulted
        };
        let drop = rng.gen::<f64>() < self.plan.drop_prob;
        let dup_gate = rng.gen::<f64>() < self.plan.dup_prob;
        let delay_gate = rng.gen::<f64>() < self.plan.delay_prob;
        let duplicate = dup_gate && broadcast && !drop;
        let delay = if delay_gate && broadcast && !drop && self.plan.max_delay > SimDuration::ZERO {
            Some(SimDuration::from_nanos(
                rng.gen_range(1..=self.plan.max_delay.as_nanos().max(1)),
            ))
        } else {
            None
        };
        let decision = FaultDecision {
            drop,
            duplicate,
            delay,
        };
        if decision.is_noop() {
            return;
        }
        if drop {
            self.stats.drops += 1;
            self.events.push(FaultEvent {
                time: now,
                node: src,
                kind: FaultEventKind::Drop,
            });
        }
        if duplicate {
            self.stats.duplicates += 1;
            self.events.push(FaultEvent {
                time: now,
                node: src,
                kind: FaultEventKind::Duplicate,
            });
        }
        if let Some(by) = delay {
            self.stats.delays += 1;
            self.events.push(FaultEvent {
                time: now,
                node: src,
                kind: FaultEventKind::Delay(by),
            });
        }
        self.pending.insert(tx_id, decision);
    }

    /// Consumes the decision for transmission `tx_id` (no-op decision
    /// if none was recorded).
    pub fn take(&mut self, tx_id: u64) -> FaultDecision {
        self.pending.remove(&tx_id).unwrap_or_default()
    }

    /// Every fault fired so far, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Counters of fired faults.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut fs = FaultState::new(FaultPlan::quiet(7), 42);
        for n in 0..4usize {
            let extra = fs.register_node(n, n as u64, SimTime::ZERO);
            assert_eq!(extra, SimDuration::ZERO);
        }
        for id in 0..200u64 {
            fs.decide(
                (id % 4) as NodeId,
                SimTime::from_micros(id),
                id,
                id % 2 == 0,
            );
            assert!(fs.take(id).is_noop());
        }
        assert_eq!(fs.stats(), FaultStats::default());
        assert!(fs.events().is_empty());
    }

    #[test]
    fn decisions_are_reproducible() {
        let plan = FaultPlan {
            drop_prob: 0.3,
            dup_prob: 0.3,
            delay_prob: 0.3,
            max_delay: SimDuration::from_millis(5),
            max_detection_extra: SimDuration::from_millis(100),
            ..FaultPlan::quiet(99)
        };
        let run = |plan: FaultPlan| {
            let mut fs = FaultState::new(plan, 11);
            let mut out = Vec::new();
            for n in 0..3usize {
                out.push(FaultDecision {
                    drop: false,
                    duplicate: false,
                    delay: Some(fs.register_node(n, 10 + n as u64, SimTime::ZERO)),
                });
            }
            for id in 0..64u64 {
                fs.decide((id % 3) as NodeId, SimTime::from_micros(id), id, true);
                out.push(fs.take(id));
            }
            out
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn streams_are_insertion_order_independent() {
        // A node's faults depend on its *stream*, not on which other
        // nodes exist: registering a subset on the same streams yields
        // the same decisions (the pruning contract, DESIGN.md §9).
        let plan = FaultPlan {
            drop_prob: 0.5,
            ..FaultPlan::quiet(5)
        };
        let mut full = FaultState::new(plan.clone(), 3);
        for n in 0..4usize {
            full.register_node(n, n as u64, SimTime::ZERO);
        }
        let mut pruned = FaultState::new(plan, 3);
        pruned.register_node(0, 0, SimTime::ZERO); // keeps stream 0
        pruned.register_node(1, 3, SimTime::ZERO); // keeps stream 3
        let mut fd = Vec::new();
        let mut pd = Vec::new();
        for id in 0..32u64 {
            full.decide(0, SimTime::ZERO, id, false);
            fd.push(full.take(id));
            pruned.decide(0, SimTime::ZERO, id, false);
            pd.push(pruned.take(id));
        }
        for id in 32..64u64 {
            full.decide(3, SimTime::ZERO, id, false);
            fd.push(full.take(id));
            pruned.decide(1, SimTime::ZERO, id, false);
            pd.push(pruned.take(id));
        }
        assert_eq!(fd, pd);
    }

    #[test]
    fn detection_extra_bounded_by_plan() {
        let plan = FaultPlan {
            max_detection_extra: SimDuration::from_millis(250),
            ..FaultPlan::quiet(1)
        };
        let mut fs = FaultState::new(plan, 2);
        for n in 0..16usize {
            let extra = fs.register_node(n, n as u64, SimTime::ZERO);
            assert!(extra <= SimDuration::from_millis(250));
            assert_eq!(extra, fs.detection_extra(n));
        }
        assert_eq!(fs.detection_extra(999), SimDuration::ZERO);
    }
}
