//! Analytic saturation-throughput models for the simulated DCF.
//!
//! Two closed forms cross-validate the event simulator:
//!
//! * [`single_flow_goodput_mbps`] — the deterministic cycle of one
//!   saturated sender: `DIFS + E[backoff] + T_data + SIFS + T_ack`, all
//!   width-scaled; the simulator must land within a few percent.
//! * [`bianchi_saturation_goodput_mbps`] — Bianchi's classic fixed-point
//!   model (Bianchi 2000) for `n` saturated contenders with binary
//!   exponential backoff, adapted to this MAC's constants. The simulator
//!   freezes backoff counters across interruptions as Bianchi assumes;
//!   residual differences (per-attempt DIFS accounting, no slot
//!   synchronization) leave a modest gap that the tests bound.

use crate::sim::MacParams;
use whitefi_phy::PhyTiming;
use whitefi_spectrum::Width;

/// Goodput of a single saturated sender on a clean channel, Mbps.
pub fn single_flow_goodput_mbps(width: Width, bytes: usize, params: &MacParams) -> f64 {
    let t = PhyTiming::for_width(width);
    let ct = params.contention_timing(width);
    let mean_backoff_slots = (params.cw_min as f64 - 1.0) / 2.0;
    let cycle_ns = ct.difs().as_nanos() as f64
        + mean_backoff_slots * ct.slot().as_nanos() as f64
        + t.frame_duration(bytes).as_nanos() as f64
        + t.sifs().as_nanos() as f64
        + t.ack_duration().as_nanos() as f64;
    bytes as f64 * 8.0 / (cycle_ns / 1e9) / 1e6
}

/// Solves Bianchi's fixed point for the per-slot transmission probability
/// `τ` of `n` saturated stations with `CW_min = w`, `m` backoff stages.
// `powi(n as i32)` over station counts: networks are a handful of nodes,
// so the usize→i32 casts are exact.
#[allow(clippy::cast_possible_truncation)]
pub fn bianchi_tau(n: usize, w: u32, m: u32) -> f64 {
    assert!(n >= 1);
    let w = w as f64;
    let mut tau = 0.1f64;
    for _ in 0..10_000 {
        let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
        let new_tau = if p <= 0.0 {
            2.0 / (w + 1.0)
        } else {
            let two_p = 2.0 * p;
            2.0 * (1.0 - two_p) / ((1.0 - two_p) * (w + 1.0) + p * w * (1.0 - two_p.powi(m as i32)))
        };
        // Guard against the 2p → 1 singularity.
        let new_tau = if new_tau.is_finite() && new_tau > 0.0 {
            new_tau.min(1.0)
        } else {
            tau / 2.0
        };
        if (new_tau - tau).abs() < 1e-12 {
            return new_tau;
        }
        tau = 0.5 * tau + 0.5 * new_tau;
    }
    tau
}

/// Bianchi saturation goodput for `n` contenders sending `bytes`-byte
/// frames at `width`, Mbps (aggregate across all flows).
// As in `bianchi_tau`, the usize→i32 station-count casts are exact; the
// backoff-stage count is a small nonnegative integer by construction, so
// rounding it into a u32 is exact too.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn bianchi_saturation_goodput_mbps(
    n: usize,
    width: Width,
    bytes: usize,
    params: &MacParams,
) -> f64 {
    let t = PhyTiming::for_width(width);
    let ct = params.contention_timing(width);
    let m = (params.cw_max as f64 / params.cw_min as f64).log2().round() as u32;
    let tau = bianchi_tau(n, params.cw_min, m);
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32); // some transmission
    let p_s = if p_tr > 0.0 {
        n as f64 * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
    } else {
        0.0
    };
    let sigma = ct.slot().as_nanos() as f64;
    let ts = t.frame_duration(bytes).as_nanos() as f64
        + t.sifs().as_nanos() as f64
        + t.ack_duration().as_nanos() as f64
        + ct.difs().as_nanos() as f64;
    // Collision: data goes out, no ACK; the sender waits its ACK timeout.
    let tc = t.frame_duration(bytes).as_nanos() as f64
        + t.sifs().as_nanos() as f64
        + t.ack_duration().as_nanos() as f64
        + ct.slot().as_nanos() as f64
        + ct.difs().as_nanos() as f64;
    let payload_bits = bytes as f64 * 8.0;
    let num = p_s * p_tr * payload_bits;
    let den = (1.0 - p_tr) * sigma + p_tr * p_s * ts + p_tr * (1.0 - p_s) * tc;
    num / (den / 1e9) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{NodeConfig, Simulator};
    use crate::traffic::{SaturatingSender, Sink};
    use whitefi_phy::{SimDuration, SimTime};
    use whitefi_spectrum::WfChannel;

    fn simulate(n: usize, width: Width, bytes: usize, seed: u64) -> f64 {
        let c = WfChannel::from_parts(15, width);
        let mut sim = Simulator::new(seed);
        let mut rxs = Vec::new();
        for _ in 0..n {
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            sim.add_node(
                NodeConfig::on_channel(c),
                Box::new(SaturatingSender {
                    dst: rx,
                    bytes,
                    pipeline: 2,
                }),
            );
            rxs.push(rx);
        }
        let span = SimDuration::from_secs(2);
        sim.run_until(SimTime::ZERO + span);
        rxs.iter()
            .map(|&r| sim.stats(r).rx_goodput_mbps(span))
            .sum()
    }

    #[test]
    fn single_flow_matches_deterministic_cycle() {
        let params = MacParams::default();
        for width in [Width::W5, Width::W10, Width::W20] {
            let analytic = single_flow_goodput_mbps(width, 1000, &params);
            let simulated = simulate(1, width, 1000, 11);
            let err = (simulated / analytic - 1.0).abs();
            assert!(
                err < 0.05,
                "{width:?}: analytic {analytic:.3} vs simulated {simulated:.3}"
            );
        }
    }

    #[test]
    fn single_flow_width_ratio_near_two() {
        // With uniform contention timing the DIFS+backoff overhead is a
        // fixed cost per frame, so doubling the width slightly less than
        // doubles goodput; with width-scaled contention the ratio is
        // exactly 2.
        let params = MacParams::default();
        let g20 = single_flow_goodput_mbps(Width::W20, 1000, &params);
        let g10 = single_flow_goodput_mbps(Width::W10, 1000, &params);
        assert!(g20 / g10 > 1.6 && g20 / g10 < 2.0, "ratio {}", g20 / g10);
        let scaled = MacParams {
            uniform_contention: false,
            ..MacParams::default()
        };
        let g20 = single_flow_goodput_mbps(Width::W20, 1000, &scaled);
        let g10 = single_flow_goodput_mbps(Width::W10, 1000, &scaled);
        assert!((g20 / g10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bianchi_tau_sanity() {
        // n = 1 never collides: τ = 2/(W+1).
        let t1 = bianchi_tau(1, 16, 6);
        assert!((t1 - 2.0 / 17.0).abs() < 1e-9, "τ₁ {t1}");
        // τ decreases with contention.
        let t2 = bianchi_tau(2, 16, 6);
        let t8 = bianchi_tau(8, 16, 6);
        assert!(t2 > t8, "τ₂ {t2} τ₈ {t8}");
        assert!(t8 > 0.0 && t8 < t1);
    }

    #[test]
    fn bianchi_reduces_to_single_flow_at_n1() {
        let params = MacParams::default();
        let b = bianchi_saturation_goodput_mbps(1, Width::W20, 1000, &params);
        let s = single_flow_goodput_mbps(Width::W20, 1000, &params);
        assert!((b / s - 1.0).abs() < 0.02, "bianchi {b} single {s}");
    }

    #[test]
    fn simulator_tracks_bianchi_under_contention() {
        let params = MacParams::default();
        for n in [2usize, 4] {
            let analytic = bianchi_saturation_goodput_mbps(n, Width::W20, 1000, &params);
            let simulated = simulate(n, Width::W20, 1000, 13 + n as u64);
            let err = (simulated / analytic - 1.0).abs();
            // Bianchi's slotted model and our unslotted simulator differ
            // in DIFS accounting; allow a generous envelope.
            assert!(
                err < 0.25,
                "n={n}: analytic {analytic:.3} vs simulated {simulated:.3}"
            );
        }
    }

    #[test]
    fn aggregate_goodput_declines_gently_with_contention() {
        let params = MacParams::default();
        let g1 = bianchi_saturation_goodput_mbps(1, Width::W20, 1000, &params);
        let g8 = bianchi_saturation_goodput_mbps(8, Width::W20, 1000, &params);
        assert!(g8 < g1, "{g8} !< {g1}");
        assert!(g8 > 0.6 * g1, "collapse too steep: {g8} vs {g1}");
    }
}
