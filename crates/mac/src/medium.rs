//! The shared radio medium: active transmissions, per-UHF-channel
//! occupancy accounting, and windowed queries for the scanning radio.

use crate::frames::{Frame, NodeId};
use std::collections::VecDeque;
use whitefi_phy::{Burst, SimDuration, SimTime, VisibleBurst};
use whitefi_spectrum::{UhfChannel, WfChannel, NUM_UHF_CHANNELS};

/// One frame on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Unique id.
    pub id: u64,
    /// Transmitting node.
    pub src: NodeId,
    /// Whether the transmitter is an access point (drives the `B_c`
    /// interfering-AP estimate of Equation 1).
    pub src_is_ap: bool,
    /// The transmitter's network (SSID). Scanner queries exclude a
    /// node's own SSID: Equation 1's `A_c`/`B_c` measure *other*
    /// networks' load, not the measuring network's own traffic.
    pub ssid: Option<u32>,
    /// The `(F, W)` channel the frame is sent on.
    pub channel: WfChannel,
    /// Start of the transmission.
    pub start: SimTime,
    /// End of the transmission.
    pub end: SimTime,
    /// The frame itself.
    pub frame: Frame,
    /// Received amplitude at range (drives SIFT visibility).
    pub amplitude: f64,
}

impl Transmission {
    /// Whether this transmission overlaps `[from, to)` in time.
    pub fn overlaps_window(&self, from: SimTime, to: SimTime) -> bool {
        self.start < to && self.end > from
    }

    /// Whether this transmission's span intersects `other`'s span.
    pub fn overlaps_channel(&self, other: WfChannel) -> bool {
        self.channel.overlaps(other)
    }

    /// Converts to a scanner-visible burst.
    pub fn to_visible(&self) -> VisibleBurst {
        VisibleBurst {
            channel: self.channel,
            burst: Burst {
                start: self.start,
                duration: self.end.since(self.start),
                width: self.channel.width(),
                amplitude: self.amplitude,
                kind: self.frame.kind.burst_kind(),
            },
        }
    }
}

/// The medium: active transmissions plus a pruned history for windowed
/// airtime queries (the scanning radio's view).
///
/// `history` is ordered by nondecreasing `end` time: transmissions are
/// appended by [`Medium::finish`] at their end time, and the event loop
/// finishes them in time order. Windowed queries exploit this to scan
/// backwards from the newest entry and stop at the first one that ended
/// at or before the window start, instead of walking the whole horizon.
#[derive(Debug)]
pub struct Medium {
    active: Vec<Transmission>,
    history: VecDeque<Transmission>,
    /// How much history to retain for scanner queries. Drivers may
    /// tighten this when no scanner will ever look back (fixed-channel
    /// baseline runs keep only enough for interference checks), making
    /// trace retention pay-as-you-go; queries never reach past their
    /// window, so shrinking the horizon below the longest query window
    /// actually issued is the only way it can change results.
    pub history_horizon: SimDuration,
    /// Cumulative busy time per UHF channel since simulation start
    /// (union of overlapping transmissions — exact, via active counts).
    busy_total: [SimDuration; NUM_UHF_CHANNELS],
    active_count: [u32; NUM_UHF_CHANNELS],
    /// Active transmissions per channel broken down by SSID (association
    /// list; a channel rarely carries more than a handful of networks).
    /// Lets SSID-excluded carrier sense answer from counters instead of
    /// scanning every active transmission.
    ssid_active: Vec<Vec<(u32, u32)>>,
    last_change: [SimTime; NUM_UHF_CHANNELS],
    next_id: u64,
}

impl Default for Medium {
    fn default() -> Self {
        Self::new()
    }
}

impl Medium {
    /// An empty medium with a 3-second history horizon.
    pub fn new() -> Self {
        Self {
            active: Vec::new(),
            history: VecDeque::new(),
            history_horizon: SimDuration::from_secs(3),
            busy_total: [SimDuration::ZERO; NUM_UHF_CHANNELS],
            active_count: [0; NUM_UHF_CHANNELS],
            ssid_active: vec![Vec::new(); NUM_UHF_CHANNELS],
            last_change: [SimTime::ZERO; NUM_UHF_CHANNELS],
            next_id: 0,
        }
    }

    /// Starts a transmission; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        src: NodeId,
        src_is_ap: bool,
        ssid: Option<u32>,
        channel: WfChannel,
        start: SimTime,
        end: SimTime,
        frame: Frame,
        amplitude: f64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        for ch in channel.spanned() {
            self.accrue(ch, start);
            self.active_count[ch.index()] += 1;
            if let Some(ssid) = ssid {
                let counts = &mut self.ssid_active[ch.index()];
                match counts.iter_mut().find(|(s, _)| *s == ssid) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((ssid, 1)),
                }
            }
        }
        self.active.push(Transmission {
            id,
            src,
            src_is_ap,
            ssid,
            channel,
            start,
            end,
            frame,
            amplitude,
        });
        id
    }

    /// Finishes a transmission, moving it to history. Returns it.
    ///
    /// Callers must finish transmissions in nondecreasing order of their
    /// `end` times (the discrete-event loop does: `TxEnd` fires at
    /// `end`); windowed queries rely on the resulting history order.
    pub fn finish(&mut self, id: u64, now: SimTime) -> Transmission {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == id)
            // lint:allow(unwrap, TxEnd fires exactly once per `start` id; a miss is engine corruption, documented panic)
            .expect("finishing unknown transmission");
        let tx = self.active.swap_remove(idx);
        for ch in tx.channel.spanned() {
            self.accrue(ch, now);
            self.active_count[ch.index()] -= 1;
            if let Some(ssid) = tx.ssid {
                let counts = &mut self.ssid_active[ch.index()];
                let k = counts
                    .iter()
                    .position(|(s, _)| *s == ssid)
                    // lint:allow(unwrap, ssid was counted at `start` of this same transmission; absence is engine corruption)
                    .expect("finishing transmission with untracked ssid");
                counts[k].1 -= 1;
                if counts[k].1 == 0 {
                    counts.swap_remove(k);
                }
            }
        }
        debug_assert!(
            self.history.back().is_none_or(|p| p.end <= tx.end),
            "history must stay sorted by end time"
        );
        self.history.push_back(tx);
        self.prune(now);
        tx
    }

    /// History entries whose `[start, end)` span can overlap a window
    /// starting at `from`, newest first. Because `history` is sorted by
    /// nondecreasing `end`, the backwards scan stops at the first entry
    /// that ended at or before `from` — O(entries in the window) rather
    /// than O(entries in the horizon).
    fn recent_history(&self, from: SimTime) -> impl Iterator<Item = &Transmission> {
        self.history.iter().rev().take_while(move |t| t.end > from)
    }

    fn accrue(&mut self, ch: UhfChannel, now: SimTime) {
        let i = ch.index();
        if self.active_count[i] > 0 {
            self.busy_total[i] += now.since(self.last_change[i]);
        }
        self.last_change[i] = now;
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO + self.history_horizon);
        let cutoff = SimTime::ZERO + cutoff;
        while let Some(front) = self.history.front() {
            if front.end < cutoff {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// The transmissions currently on the air.
    pub fn active(&self) -> &[Transmission] {
        &self.active
    }

    /// Whether any transmission is on the air anywhere in `channel`'s
    /// span, from the per-channel counters: O(span), no scan of the
    /// active list.
    pub fn any_active_on(&self, channel: WfChannel) -> bool {
        channel.spanned().any(|c| self.active_count[c.index()] > 0)
    }

    /// Active transmissions of `ssid` spanning UHF channel index `i`.
    fn ssid_count(&self, i: usize, ssid: u32) -> u32 {
        self.ssid_active[i]
            .iter()
            .find(|(s, _)| *s == ssid)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Whether any active transmission's span intersects `channel`
    /// (optionally excluding one transmitter — a node does not sense its
    /// own signal as foreign carrier).
    pub fn carrier_sensed(&self, channel: WfChannel, exclude_src: Option<NodeId>) -> bool {
        match exclude_src {
            // No exclusion: the counters answer exactly.
            None => self.any_active_on(channel),
            Some(src) => {
                // Counter fast path for the common idle case; the scan
                // below only runs while something is actually on the air.
                self.any_active_on(channel)
                    && self
                        .active
                        .iter()
                        .any(|t| t.src != src && t.overlaps_channel(channel))
            }
        }
    }

    /// Whether any active transmission from a *different* network
    /// intersects `channel` — carrier sense for scanner measurements
    /// that must ignore the measuring network's own traffic. Answered
    /// entirely from the per-(channel, SSID) counters: O(span).
    pub fn carrier_sensed_excluding_ssid(&self, channel: WfChannel, ssid: u32) -> bool {
        channel
            .spanned()
            .any(|c| self.active_count[c.index()] > self.ssid_count(c.index(), ssid))
    }

    /// Cumulative busy time on `ch` since simulation start, as of `now`.
    pub fn busy_total(&self, ch: UhfChannel, now: SimTime) -> SimDuration {
        let i = ch.index();
        let mut total = self.busy_total[i];
        if self.active_count[i] > 0 {
            total += now.since(self.last_change[i]);
        }
        total
    }

    /// Busy airtime fraction of `ch` over the window `[from, to)`,
    /// estimated from transmission history (the scanning radio's
    /// measurement; overlapping transmissions may double-count, so the
    /// result is clamped to 1).
    pub fn airtime_in_window(&self, ch: UhfChannel, from: SimTime, to: SimTime) -> f64 {
        self.airtime_in_window_excluding(ch, from, to, None)
    }

    /// Like [`Medium::airtime_in_window`], but ignoring transmissions of
    /// the given SSID — a node measuring residual airtime for Equation 1
    /// must not count its own network's traffic.
    pub fn airtime_in_window_excluding(
        &self,
        ch: UhfChannel,
        from: SimTime,
        to: SimTime,
        exclude_ssid: Option<u32>,
    ) -> f64 {
        self.airtime_in_window_filtered(ch, from, to, exclude_ssid, |_| true)
    }

    /// Like [`Medium::airtime_in_window_excluding`], restricted to
    /// transmitters for which `hears` is true — the scanning radio only
    /// measures signals that physically reach it. The engine passes its
    /// reachability predicate here so a scan at one node is independent
    /// of out-of-range traffic (the property city sharding relies on,
    /// DESIGN.md §13).
    pub fn airtime_in_window_filtered(
        &self,
        ch: UhfChannel,
        from: SimTime,
        to: SimTime,
        exclude_ssid: Option<u32>,
        hears: impl Fn(NodeId) -> bool,
    ) -> f64 {
        assert!(to > from, "empty airtime window");
        let mut busy = 0u64;
        // Only active transmissions spanning `ch` can contribute; the
        // counter skips the scan entirely when there are none.
        let active: &[Transmission] = if self.active_count[ch.index()] > 0 {
            &self.active
        } else {
            &[]
        };
        // Summation order differs from a forward scan, but the busy
        // accumulator is an integer, so the result is order-independent.
        for t in self.recent_history(from).chain(active.iter()) {
            if !t.channel.contains(ch) || !t.overlaps_window(from, to) {
                continue;
            }
            if exclude_ssid.is_some() && t.ssid == exclude_ssid {
                continue;
            }
            if !hears(t.src) {
                continue;
            }
            let s = t.start.max(from);
            let e = t.end.min(to);
            busy += e.since(s).as_nanos();
        }
        (busy as f64 / to.since(from).as_nanos() as f64).min(1.0)
    }

    /// Number of distinct *AP* transmitters seen on `ch` in `[from, to)`
    /// — the `B_c` estimate of Equation 1 ("we estimate the number of
    /// contending nodes as the number of interfering APs").
    pub fn ap_count_in_window(&self, ch: UhfChannel, from: SimTime, to: SimTime) -> u32 {
        self.ap_count_in_window_excluding(ch, from, to, None)
    }

    /// Like [`Medium::ap_count_in_window`], but ignoring APs of the given
    /// SSID (Equation 1's `B_c` counts *other* access points).
    pub fn ap_count_in_window_excluding(
        &self,
        ch: UhfChannel,
        from: SimTime,
        to: SimTime,
        exclude_ssid: Option<u32>,
    ) -> u32 {
        self.ap_count_in_window_filtered(ch, from, to, exclude_ssid, |_| true)
    }

    /// Like [`Medium::ap_count_in_window_excluding`], restricted to
    /// transmitters for which `hears` is true (see
    /// [`Medium::airtime_in_window_filtered`]).
    pub fn ap_count_in_window_filtered(
        &self,
        ch: UhfChannel,
        from: SimTime,
        to: SimTime,
        exclude_ssid: Option<u32>,
        hears: impl Fn(NodeId) -> bool,
    ) -> u32 {
        let mut seen: Vec<NodeId> = Vec::new();
        let active: &[Transmission] = if self.active_count[ch.index()] > 0 {
            &self.active
        } else {
            &[]
        };
        // Distinct-transmitter counting is order-independent, so the
        // backwards history scan needs no reordering.
        for t in self.recent_history(from).chain(active.iter()) {
            if t.src_is_ap
                && t.channel.contains(ch)
                && t.overlaps_window(from, to)
                && !seen.contains(&t.src)
                && !(exclude_ssid.is_some() && t.ssid == exclude_ssid)
                && hears(t.src)
            {
                seen.push(t.src);
            }
        }
        u32::try_from(seen.len()).unwrap_or(u32::MAX)
    }

    /// All transmissions (active or recent) overlapping `[from, to)`, as
    /// scanner-visible bursts. Feed these to
    /// [`whitefi_phy::Scanner::capture_stream`] for block-at-a-time
    /// signal-level SIFT (or [`whitefi_phy::Scanner::capture`] when a
    /// whole materialized trace is wanted, e.g. for trace export).
    ///
    /// Output order is oldest-first history, then active in start order —
    /// consumers like the AP's chirp scan take the *first* matching
    /// burst, so the backwards history scan is reversed before returning.
    pub fn visible_bursts(&self, from: SimTime, to: SimTime) -> Vec<VisibleBurst> {
        self.visible_bursts_filtered(from, to, |_| true)
    }

    /// Like [`Medium::visible_bursts`], restricted to transmitters for
    /// which `hears` is true (see
    /// [`Medium::airtime_in_window_filtered`]). Same output order.
    pub fn visible_bursts_filtered(
        &self,
        from: SimTime,
        to: SimTime,
        hears: impl Fn(NodeId) -> bool,
    ) -> Vec<VisibleBurst> {
        let mut out: Vec<VisibleBurst> = self
            .recent_history(from)
            .filter(|t| t.overlaps_window(from, to) && hears(t.src))
            .map(|t| t.to_visible())
            .collect();
        out.reverse();
        out.extend(
            self.active
                .iter()
                .filter(|t| t.overlaps_window(from, to) && hears(t.src))
                .map(|t| t.to_visible()),
        );
        out
    }

    /// Raw transmissions (history + active) overlapping `[from, to)`,
    /// for trace export. Same output order as [`Medium::visible_bursts`].
    pub fn visible_window_transmissions(&self, from: SimTime, to: SimTime) -> Vec<Transmission> {
        let mut out: Vec<Transmission> = self
            .recent_history(from)
            .filter(|t| t.overlaps_window(from, to))
            .copied()
            .collect();
        out.reverse();
        out.extend(
            self.active
                .iter()
                .filter(|t| t.overlaps_window(from, to))
                .copied(),
        );
        out
    }

    /// Transmissions in history plus active, overlapping the window and
    /// intersecting the given channel — used for interference checks.
    pub fn interferers(
        &self,
        channel: WfChannel,
        from: SimTime,
        to: SimTime,
        exclude_id: u64,
    ) -> Vec<Transmission> {
        let keep = |t: &&Transmission| {
            t.id != exclude_id && t.overlaps_channel(channel) && t.overlaps_window(from, to)
        };
        let mut out: Vec<Transmission> = self.recent_history(from).filter(keep).copied().collect();
        out.reverse();
        out.extend(self.active.iter().filter(keep).copied());
        out
    }

    /// Appends to `out` the source node of every transmission (history +
    /// active) that intersects `channel` and overlaps `[from, to)`,
    /// excluding transmission `exclude_id`. Allocation-free variant of
    /// [`Medium::interferers`] for the delivery hot path, which only
    /// needs the transmitter identities (order-insensitive: the caller
    /// asks "is any interferer in range of this receiver").
    pub fn interferer_sources_into(
        &self,
        channel: WfChannel,
        from: SimTime,
        to: SimTime,
        exclude_id: u64,
        out: &mut Vec<NodeId>,
    ) {
        for t in self.recent_history(from).chain(self.active.iter()) {
            if t.id != exclude_id && t.overlaps_channel(channel) && t.overlaps_window(from, to) {
                out.push(t.src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use whitefi_spectrum::Width;

    fn frame() -> Frame {
        Frame::data(0, 1, 500)
    }

    fn ch(center: usize, w: Width) -> WfChannel {
        WfChannel::from_parts(center, w)
    }

    #[test]
    fn busy_accounting_union_not_sum() {
        let mut m = Medium::new();
        let c = ch(10, Width::W5);
        // Two overlapping transmissions on the same channel: busy time is
        // the union, not the sum.
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::from_micros(0),
            SimTime::from_micros(100),
            frame(),
            1000.0,
        );
        let b = m.start(
            1,
            false,
            None,
            c,
            SimTime::from_micros(50),
            SimTime::from_micros(150),
            frame(),
            1000.0,
        );
        m.finish(a, SimTime::from_micros(100));
        m.finish(b, SimTime::from_micros(150));
        let busy = m.busy_total(UhfChannel::from_index(10), SimTime::from_micros(200));
        assert_eq!(busy.as_micros(), 150);
    }

    #[test]
    fn carrier_sense_is_span_intersection() {
        let mut m = Medium::new();
        let tx20 = ch(10, Width::W20); // spans 8..=12
        m.start(
            0,
            false,
            None,
            tx20,
            SimTime::ZERO,
            SimTime::from_millis(1),
            frame(),
            1000.0,
        );
        // A 5 MHz node on channel 12 senses the 20 MHz carrier.
        assert!(m.carrier_sensed(ch(12, Width::W5), None));
        // A 5 MHz node on channel 13 does not.
        assert!(!m.carrier_sensed(ch(13, Width::W5), None));
        // The transmitter does not sense itself.
        assert!(!m.carrier_sensed(ch(10, Width::W20), Some(0)));
        // …but senses others.
        assert!(m.carrier_sensed(ch(10, Width::W20), Some(5)));
    }

    #[test]
    fn any_active_on_tracks_counters() {
        let mut m = Medium::new();
        let tx20 = ch(10, Width::W20); // spans 8..=12
        assert!(!m.any_active_on(tx20));
        let id = m.start(
            0,
            false,
            None,
            tx20,
            SimTime::ZERO,
            SimTime::from_millis(1),
            frame(),
            1000.0,
        );
        assert!(m.any_active_on(ch(12, Width::W5)));
        assert!(!m.any_active_on(ch(13, Width::W5)));
        m.finish(id, SimTime::from_millis(1));
        assert!(!m.any_active_on(tx20));
    }

    #[test]
    fn ssid_excluded_sensing_ignores_own_network_only() {
        let mut m = Medium::new();
        let c = ch(10, Width::W5);
        // Our own network (SSID 7) is transmitting. It stays on the air
        // through the whole test: `finish` requires nondecreasing end
        // times (history stays sorted), so `own` ends last, at 3 ms.
        let own = m.start(
            0,
            true,
            Some(7),
            c,
            SimTime::ZERO,
            SimTime::from_millis(3),
            frame(),
            1000.0,
        );
        assert!(m.carrier_sensed(c, None));
        assert!(!m.carrier_sensed_excluding_ssid(c, 7));
        // A foreign network joins: now it is sensed even excluding 7.
        let other = m.start(
            1,
            true,
            Some(9),
            c,
            SimTime::ZERO,
            SimTime::from_millis(2),
            frame(),
            1000.0,
        );
        assert!(m.carrier_sensed_excluding_ssid(c, 7));
        // SSID-less traffic (background) is foreign to every network.
        m.finish(other, SimTime::from_millis(2));
        assert!(!m.carrier_sensed_excluding_ssid(c, 7));
        let bg = m.start(
            2,
            false,
            None,
            c,
            SimTime::from_millis(2),
            SimTime::from_millis(3),
            frame(),
            1000.0,
        );
        assert!(m.carrier_sensed_excluding_ssid(c, 7));
        m.finish(bg, SimTime::from_millis(3));
        m.finish(own, SimTime::from_millis(3));
        assert!(!m.carrier_sensed(c, None));
    }

    #[test]
    fn airtime_window_measures_overlap() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
            frame(),
            1000.0,
        );
        m.finish(a, SimTime::from_millis(20));
        let u = UhfChannel::from_index(5);
        // Fully inside the window.
        let f = m.airtime_in_window(u, SimTime::ZERO, SimTime::from_millis(100));
        assert!((f - 0.1).abs() < 1e-9);
        // Window clips the transmission.
        let f = m.airtime_in_window(u, SimTime::from_millis(15), SimTime::from_millis(25));
        assert!((f - 0.5).abs() < 1e-9);
        // Unrelated channel is idle.
        let f = m.airtime_in_window(
            UhfChannel::from_index(6),
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        assert_eq!(f, 0.0);
    }

    #[test]
    fn ap_count_distinct_aps_only() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        for (src, is_ap) in [(0, true), (0, true), (1, true), (2, false)] {
            let id = m.start(
                src,
                is_ap,
                None,
                c,
                SimTime::from_millis(1),
                SimTime::from_millis(2),
                frame(),
                1000.0,
            );
            m.finish(id, SimTime::from_millis(2));
        }
        let n = m.ap_count_in_window(
            UhfChannel::from_index(5),
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        assert_eq!(n, 2); // nodes 0 and 1; node 2 is not an AP
    }

    #[test]
    fn visible_bursts_window_filter() {
        let mut m = Medium::new();
        let c = ch(5, Width::W10);
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::from_millis(1),
            SimTime::from_millis(2),
            frame(),
            900.0,
        );
        m.finish(a, SimTime::from_millis(2));
        assert_eq!(
            m.visible_bursts(SimTime::ZERO, SimTime::from_millis(5))
                .len(),
            1
        );
        assert!(m
            .visible_bursts(SimTime::from_millis(3), SimTime::from_millis(5))
            .is_empty());
        let vb = &m.visible_bursts(SimTime::ZERO, SimTime::from_millis(5))[0];
        assert_eq!(vb.channel, c);
        assert_eq!(vb.burst.width, Width::W10);
    }

    #[test]
    fn history_pruned_beyond_horizon() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::ZERO,
            SimTime::from_millis(1),
            frame(),
            1000.0,
        );
        m.finish(a, SimTime::from_millis(1));
        assert_eq!(
            m.visible_bursts(SimTime::ZERO, SimTime::from_secs(100))
                .len(),
            1
        );
        // A later transmission triggers pruning of the stale one.
        let b = m.start(
            0,
            false,
            None,
            c,
            SimTime::from_secs(10),
            SimTime::from_secs(11),
            frame(),
            1000.0,
        );
        m.finish(b, SimTime::from_secs(11));
        let bursts = m.visible_bursts(SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(bursts.len(), 1);
    }

    #[test]
    fn interferers_exclude_self() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::ZERO,
            SimTime::from_millis(2),
            frame(),
            1000.0,
        );
        let _b = m.start(
            1,
            false,
            None,
            c,
            SimTime::from_millis(1),
            SimTime::from_millis(3),
            frame(),
            1000.0,
        );
        let ints = m.interferers(c, SimTime::ZERO, SimTime::from_millis(2), a);
        assert_eq!(ints.len(), 1);
        assert_eq!(ints[0].src, 1);
    }

    #[test]
    fn windowed_queries_backscan_matches_full_scan_order() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        // Five sequential finished transmissions plus one active; a
        // window covering only the last three history entries must
        // return them oldest-first, then the active one.
        for k in 0..5u64 {
            let id = m.start(
                NodeId::try_from(k).unwrap(),
                false,
                None,
                c,
                SimTime::from_millis(10 * k),
                SimTime::from_millis(10 * k + 5),
                frame(),
                1000.0,
            );
            m.finish(id, SimTime::from_millis(10 * k + 5));
        }
        m.start(
            9,
            false,
            None,
            c,
            SimTime::from_millis(50),
            SimTime::from_millis(60),
            frame(),
            1000.0,
        );
        let from = SimTime::from_millis(21);
        let to = SimTime::from_millis(100);
        let txs = m.visible_window_transmissions(from, to);
        let srcs: Vec<NodeId> = txs.iter().map(|t| t.src).collect();
        assert_eq!(srcs, vec![2, 3, 4, 9]);
        let mut collected = Vec::new();
        m.interferer_sources_into(c, from, to, u64::MAX, &mut collected);
        collected.sort_unstable();
        assert_eq!(collected, vec![2, 3, 4, 9]);
        // Airtime over [21, 40): tail of tx2 (4 ms) + tx3 (5 ms).
        let f = m.airtime_in_window(UhfChannel::from_index(5), from, SimTime::from_millis(40));
        assert!((f - 9.0 / 19.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty airtime window")]
    fn empty_window_panics() {
        Medium::new().airtime_in_window(UhfChannel::from_index(0), SimTime::ZERO, SimTime::ZERO);
    }

    /// The `hears` predicate excludes out-of-range transmitters from
    /// every scanner-facing query, and an always-true predicate matches
    /// the unfiltered queries exactly.
    #[test]
    fn filtered_queries_drop_unheard_sources() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        for src in [0usize, 1] {
            let id = m.start(
                src,
                true,
                None,
                c,
                SimTime::ZERO + SimDuration::from_millis(src as u64),
                SimTime::from_millis(10),
                frame(),
                1000.0,
            );
            m.finish(id, SimTime::from_millis(10));
        }
        let u = UhfChannel::from_index(5);
        let from = SimTime::ZERO;
        let to = SimTime::from_millis(10);
        // Hearing only node 1: 9 of 10 ms busy, one AP, one burst.
        let f = m.airtime_in_window_filtered(u, from, to, None, |s| s == 1);
        assert!((f - 0.9).abs() < 1e-9, "f {f}");
        assert_eq!(
            m.ap_count_in_window_filtered(u, from, to, None, |s| s == 1),
            1
        );
        assert_eq!(m.visible_bursts_filtered(from, to, |s| s == 1).len(), 1);
        // Hearing nothing: all quiet.
        assert_eq!(
            m.airtime_in_window_filtered(u, from, to, None, |_| false),
            0.0
        );
        assert_eq!(
            m.ap_count_in_window_filtered(u, from, to, None, |_| false),
            0
        );
        assert!(m.visible_bursts_filtered(from, to, |_| false).is_empty());
        // Hearing everything == the unfiltered queries.
        assert_eq!(
            m.airtime_in_window_filtered(u, from, to, None, |_| true),
            m.airtime_in_window(u, from, to)
        );
        assert_eq!(
            m.ap_count_in_window_filtered(u, from, to, None, |_| true),
            m.ap_count_in_window(u, from, to)
        );
        assert_eq!(
            m.visible_bursts_filtered(from, to, |_| true).len(),
            m.visible_bursts(from, to).len()
        );
    }

    /// Exact boundary semantics of [`Transmission::overlaps_window`]:
    /// both the transmission and the window are half-open, so touching
    /// endpoints do not overlap, and a zero-length window acts as a
    /// point probe for "strictly inside (start, end)".
    #[test]
    fn overlaps_window_exact_boundaries() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        let id = m.start(
            0,
            false,
            None,
            c,
            SimTime::from_micros(10),
            SimTime::from_micros(20),
            frame(),
            1000.0,
        );
        m.finish(id, SimTime::from_micros(20));
        let t = m.visible_window_transmissions(SimTime::ZERO, SimTime::from_micros(100))[0];
        // Windows touching either endpoint exactly: no overlap.
        assert!(!t.overlaps_window(SimTime::ZERO, SimTime::from_micros(10)));
        assert!(!t.overlaps_window(SimTime::from_micros(20), SimTime::from_micros(30)));
        // One nanosecond past the touch point: overlap.
        assert!(t.overlaps_window(SimTime::ZERO, SimTime::from_nanos(10_001)));
        assert!(t.overlaps_window(SimTime::from_nanos(19_999), SimTime::from_micros(30)));
        // Zero-length probes: false at both endpoints, true strictly
        // inside.
        assert!(!t.overlaps_window(SimTime::from_micros(10), SimTime::from_micros(10)));
        assert!(!t.overlaps_window(SimTime::from_micros(20), SimTime::from_micros(20)));
        assert!(t.overlaps_window(SimTime::from_micros(15), SimTime::from_micros(15)));
    }

    /// Back-to-back transmissions (one ending exactly when the next
    /// starts) leave no gap and no double-count in the busy accounting,
    /// and a window clipped exactly to a transmission reports 1.0.
    #[test]
    fn touching_transmissions_accounting_is_exact() {
        let mut m = Medium::new();
        let c = ch(5, Width::W5);
        let u = UhfChannel::from_index(5);
        let a = m.start(
            0,
            false,
            None,
            c,
            SimTime::ZERO,
            SimTime::from_micros(10),
            frame(),
            1000.0,
        );
        m.finish(a, SimTime::from_micros(10));
        let b = m.start(
            1,
            false,
            None,
            c,
            SimTime::from_micros(10),
            SimTime::from_micros(20),
            frame(),
            1000.0,
        );
        m.finish(b, SimTime::from_micros(20));
        assert_eq!(
            m.busy_total(u, SimTime::from_micros(20)).as_micros(),
            20,
            "touching endpoints must not create a gap or a double count"
        );
        // Window clipped exactly to one transmission: fully busy.
        let f = m.airtime_in_window(u, SimTime::ZERO, SimTime::from_micros(10));
        assert!((f - 1.0).abs() < 1e-12, "f {f}");
        // Window exactly covering the idle time after both: fully idle.
        let f = m.airtime_in_window(u, SimTime::from_micros(20), SimTime::from_micros(30));
        assert_eq!(f, 0.0);
        // Minimal (1 ns) window inside a transmission: fully busy.
        let f = m.airtime_in_window(u, SimTime::from_nanos(5_000), SimTime::from_nanos(5_001));
        assert!((f - 1.0).abs() < 1e-12, "f {f}");
    }

    /// A node retuning mid-transmission (of others): per-UHF busy totals
    /// stay exact for every spanned channel, including queries taken
    /// while transmissions are still in flight — the active-remainder
    /// accrual path.
    #[test]
    fn busy_total_exact_across_retune_mid_transmission() {
        let mut m = Medium::new();
        // A wide transmission spanning UHF 8..=12 for [0, 100) µs.
        let wide = m.start(
            0,
            false,
            None,
            ch(10, Width::W20),
            SimTime::ZERO,
            SimTime::from_micros(100),
            frame(),
            1000.0,
        );
        // Mid-flight, a second node (having just retuned to a narrow
        // overlapping channel) transmits on UHF 12 for [50, 150) µs.
        let narrow = m.start(
            1,
            false,
            None,
            ch(12, Width::W5),
            SimTime::from_micros(50),
            SimTime::from_micros(150),
            frame(),
            1000.0,
        );
        // Query while both are active: the union on UHF 12 is [0, 75).
        let u12 = UhfChannel::from_index(12);
        assert_eq!(m.busy_total(u12, SimTime::from_micros(75)).as_micros(), 75);
        m.finish(wide, SimTime::from_micros(100));
        // Between the finishes: UHF 8 stops accruing, UHF 12 continues.
        assert_eq!(
            m.busy_total(UhfChannel::from_index(8), SimTime::from_micros(120))
                .as_micros(),
            100
        );
        assert_eq!(
            m.busy_total(u12, SimTime::from_micros(120)).as_micros(),
            120
        );
        m.finish(narrow, SimTime::from_micros(150));
        assert_eq!(
            m.busy_total(u12, SimTime::from_micros(200)).as_micros(),
            150
        );
        // A channel outside both spans never accrued.
        assert_eq!(
            m.busy_total(UhfChannel::from_index(13), SimTime::from_micros(200)),
            SimDuration::ZERO
        );
        // Zero-width query instant (now == last counter change) adds
        // nothing.
        assert_eq!(
            m.busy_total(u12, SimTime::from_micros(150)).as_micros(),
            150
        );
    }
}
