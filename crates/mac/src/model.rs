//! Miniature deterministic interleaving explorer ("minloom") backing
//! the [`crate::msync`] shims — an in-repo, dependency-free stand-in
//! for [loom](https://docs.rs/loom) that the offline toolchain can
//! always run (DESIGN.md §16).
//!
//! [`check`] runs a closure under a cooperative scheduler: the model
//! threads it spawns (via [`spawn`]) execute one at a time, yielding to
//! the scheduler at every synchronization operation (lock, unlock,
//! condvar wait/notify, atomic access, join). The scheduler then
//! re-executes the closure, depth-first, once per distinct scheduling
//! decision sequence, so an assertion in the closure is checked against
//! *every* explored interleaving and a lost-wakeup or ordering bug
//! surfaces as a deterministic panic carrying the offending schedule.
//!
//! Like CHESS (and loom's `preemption_bound`), exploration is
//! **preemption-bounded**: schedules that preempt a runnable thread
//! more than [`DEFAULT_PREEMPTION_BOUND`] times are skipped, which
//! keeps the search tractable while still covering the interleavings
//! that expose almost all real concurrency bugs. The bound (and the
//! execution budget) can be tuned with [`check_with`].
//!
//! Soundness limits, documented rather than hidden (DESIGN.md §16): the
//! explorer interleaves at `msync` operation granularity (plain memory
//! accesses between two sync operations execute as one atomic block),
//! models every atomic as sequentially consistent, and never generates
//! spurious condvar wakeups. Code whose failure needs a weaker memory
//! order or a spurious wakeup to manifest needs the real loom backend
//! (`--cfg loom`, README "Race detection") or the ThreadSanitizer stage
//! of `scripts/check.sh`.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Default cap on *preemptions* per explored schedule (context switches
/// away from a thread that could have kept running). Two preemptions
/// expose the overwhelming majority of real concurrency bugs — the
/// CHESS result loom's own default preemption bound leans on.
pub const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Default cap on explored executions; exceeding it fails the check
/// loudly instead of silently truncating coverage.
pub const DEFAULT_MAX_EXECUTIONS: usize = 200_000;

/// What a model thread is doing, as far as the scheduler is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Blocked acquiring mutex `m`; eligible once `m` is free.
    BlockedLock(usize),
    /// Parked in a condvar wait on `cv`, holding no lock; eligible only
    /// after a notify moves it to `Reacquire(mutex)`.
    BlockedCv { cv: usize, mutex: usize },
    /// Notified, waiting to reacquire mutex `m`.
    Reacquire(usize),
    /// Blocked joining thread `t`; eligible once `t` finishes.
    BlockedJoin(usize),
    /// Done (user closure returned or panicked).
    Finished,
}

impl Run {
    fn eligible(self, sched: &Sched) -> bool {
        match self {
            Run::Runnable => true,
            Run::BlockedLock(m) | Run::Reacquire(m) => sched.mutex_owner[m].is_none(),
            Run::BlockedCv { .. } => false,
            Run::BlockedJoin(t) => sched.threads[t] == Run::Finished,
            Run::Finished => false,
        }
    }
}

/// One scheduling decision: which of the `eligible` threads ran, and
/// whether the previously running thread was itself still eligible (so
/// any choice but index 0 counts as a preemption).
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    eligible: usize,
    preemptible: bool,
}

#[derive(Debug)]
struct Sched {
    threads: Vec<Run>,
    running: Option<usize>,
    mutex_owner: Vec<Option<usize>>,
    n_condvars: usize,
    /// Replay prefix for this execution (DFS state).
    prefix: Vec<usize>,
    /// Decisions taken so far this execution.
    trace: Vec<Decision>,
    aborted: bool,
    failure: Option<String>,
}

/// The per-execution scheduler shared by every model thread.
pub(crate) struct Controller {
    sched: Mutex<Sched>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Controller>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The active model context of the calling thread, if it is a model
/// thread. The `msync` primitives route through this; outside a model
/// run they fall back to the std implementations.
pub(crate) fn current() -> Option<(Arc<Controller>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Controller {
    fn new(prefix: Vec<usize>) -> Self {
        Self {
            sched: Mutex::new(Sched {
                threads: Vec::new(),
                running: None,
                mutex_owner: Vec::new(),
                n_condvars: 0,
                prefix,
                trace: Vec::new(),
                aborted: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn locked(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new model thread and returns its id.
    fn register_thread(&self) -> usize {
        let mut st = self.locked();
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    /// Registers a new model mutex for this execution.
    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.locked();
        st.mutex_owner.push(None);
        st.mutex_owner.len() - 1
    }

    /// Registers a new model condvar for this execution.
    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.locked();
        st.n_condvars += 1;
        st.n_condvars - 1
    }

    /// Picks the next thread to run and wakes it; `prev` is the thread
    /// that just yielded the CPU. Called with the scheduler locked.
    fn pick_next(&self, st: &mut Sched, prev: Option<usize>) {
        // `prev` goes first when still eligible, so "choice 0" always
        // means "no preemption" and the bound counts the others.
        let mut elig: Vec<usize> = Vec::new();
        if let Some(p) = prev {
            if st.threads[p].eligible(st) {
                elig.push(p);
            }
        }
        for id in 0..st.threads.len() {
            if Some(id) != prev && st.threads[id].eligible(st) {
                elig.push(id);
            }
        }
        if elig.is_empty() {
            if !st.threads.iter().all(|&t| t == Run::Finished) && st.failure.is_none() {
                st.failure = Some(format!(
                    "deadlock: no eligible thread (states {:?}) after schedule {:?}",
                    st.threads,
                    st.trace.iter().map(|d| d.chosen).collect::<Vec<_>>()
                ));
                st.aborted = true;
            }
            st.running = None;
            self.cv.notify_all();
            return;
        }
        let preemptible = prev.is_some_and(|p| elig.first() == Some(&p));
        let depth = st.trace.len();
        let choice = if depth < st.prefix.len() {
            st.prefix[depth].min(elig.len() - 1)
        } else {
            0
        };
        st.trace.push(Decision {
            chosen: choice,
            eligible: elig.len(),
            preemptible,
        });
        let id = elig[choice];
        // Granting the CPU to a lock-blocked thread *is* the acquire.
        match st.threads[id] {
            Run::BlockedLock(m) | Run::Reacquire(m) => st.mutex_owner[m] = Some(id),
            _ => {}
        }
        st.threads[id] = Run::Runnable;
        st.running = Some(id);
        self.cv.notify_all();
    }

    /// Unwinds (or, when already unwinding, silently returns from) a
    /// thread of an aborted execution.
    fn bail(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Parks the calling model thread in `state` and returns once the
    /// scheduler hands it the CPU again.
    fn reschedule(&self, me: usize, state: Run) {
        let mut st = self.locked();
        if st.aborted {
            drop(st);
            self.bail();
            return;
        }
        st.threads[me] = state;
        self.pick_next(&mut st, Some(me));
        while st.running != Some(me) {
            if st.aborted {
                drop(st);
                self.bail();
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain scheduling point (atomic access, explicit yield).
    pub(crate) fn yield_point(&self, me: usize) {
        self.reschedule(me, Run::Runnable);
    }

    /// Acquires model mutex `m` for the calling thread (schedules).
    pub(crate) fn lock_mutex(&self, me: usize, m: usize) {
        self.reschedule(me, Run::BlockedLock(m));
    }

    /// Releases model mutex `m` — a scheduling point, like loom's.
    pub(crate) fn unlock_mutex(&self, me: usize, m: usize) {
        {
            let mut st = self.locked();
            if st.aborted {
                return; // execution is dead; just release and unwind
            }
            debug_assert_eq!(st.mutex_owner[m], Some(me));
            st.mutex_owner[m] = None;
        }
        self.reschedule(me, Run::Runnable);
    }

    /// Atomically releases `m` and parks on condvar `cv`; on return the
    /// thread has been notified and holds `m` again.
    pub(crate) fn condvar_wait(&self, me: usize, cv: usize, m: usize) {
        {
            let mut st = self.locked();
            if st.aborted {
                drop(st);
                self.bail();
                return;
            }
            debug_assert_eq!(st.mutex_owner[m], Some(me));
            st.mutex_owner[m] = None;
        }
        self.reschedule(me, Run::BlockedCv { cv, mutex: m });
        // reschedule() returning means pick_next granted us the mutex.
    }

    /// Wakes waiters of condvar `cv` (all, or just the lowest-id one —
    /// a deterministic approximation of `notify_one`). Woken threads
    /// move to `Reacquire` and contend for the mutex under scheduler
    /// control.
    pub(crate) fn notify(&self, me: usize, cv: usize, all: bool) {
        {
            let mut st = self.locked();
            if st.aborted {
                drop(st);
                self.bail();
                return;
            }
            for id in 0..st.threads.len() {
                if let Run::BlockedCv { cv: c, mutex } = st.threads[id] {
                    if c == cv {
                        st.threads[id] = Run::Reacquire(mutex);
                        if !all {
                            break;
                        }
                    }
                }
            }
        }
        self.reschedule(me, Run::Runnable);
    }

    /// Blocks the calling thread until model thread `t` finishes.
    pub(crate) fn join_thread(&self, me: usize, t: usize) {
        self.reschedule(me, Run::BlockedJoin(t));
    }

    /// Marks the calling thread finished (recording a panic message as
    /// the execution's failure) and schedules a successor.
    fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.locked();
        st.threads[me] = Run::Finished;
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(format!(
                    "model thread {me} panicked: {msg}\nschedule: {:?}",
                    st.trace.iter().map(|d| d.chosen).collect::<Vec<_>>()
                ));
            }
            st.aborted = true;
        } else if !st.aborted && st.running == Some(me) {
            self.pick_next(&mut st, None);
        }
        self.cv.notify_all();
    }

    /// Driver wait: until every model thread of this execution has
    /// finished (normally or by unwinding off an abort).
    fn wait_done(&self) {
        let mut st = self.locked();
        while !st.threads.iter().all(|&t| t == Run::Finished) {
            if st.aborted {
                self.cv.notify_all(); // flush parked threads into bail()
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Panic payload used to unwind threads of an aborted execution; the
/// entry trampoline recognises it and does not re-report it.
struct ModelAbort;

/// Trampoline every model thread runs: wait to be scheduled, run the
/// body catching panics, hand the CPU back.
fn thread_main(ctrl: Arc<Controller>, id: usize, body: impl FnOnce()) {
    {
        let mut st = ctrl.locked();
        while st.running != Some(id) && !st.aborted {
            st = ctrl.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.aborted {
            drop(st);
            ctrl.finish_thread(id, None);
            return;
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctrl), id)));
    let result = std::panic::catch_unwind(AssertUnwindSafe(body));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let msg = match result {
        Ok(()) => None,
        Err(p) => {
            if p.downcast_ref::<ModelAbort>().is_some() {
                None // secondary unwind of an already-failed execution
            } else if let Some(s) = p.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = p.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("non-string panic payload".to_string())
            }
        }
    };
    ctrl.finish_thread(id, msg);
}

/// Handle to a model thread spawned with [`spawn`].
pub struct JoinHandle {
    id: usize,
    os: Option<std::thread::JoinHandle<()>>,
}

impl JoinHandle {
    /// Waits (as a scheduling point) for the thread to finish. A panic
    /// inside the thread aborts the whole execution and is reported by
    /// [`check`], so `join` itself returns nothing.
    pub fn join(mut self) {
        if let Some((ctrl, me)) = current() {
            ctrl.join_thread(me, self.id);
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
    }
}

impl Drop for JoinHandle {
    fn drop(&mut self) {
        // Detach: the driver's wait_done keeps executions sequenced.
        drop(self.os.take());
    }
}

/// Spawns a model thread inside an active [`check`] execution. Panics
/// if called outside one — model code must run under the explorer.
pub fn spawn(body: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (ctrl, me) = current().expect("model::spawn outside model::check"); // lint:allow(unwrap, documented contract: spawn is only legal inside model::check)
    let id = ctrl.register_thread();
    let ctrl2 = Arc::clone(&ctrl);
    let os = std::thread::Builder::new()
        .name(format!("model-{id}"))
        .spawn(move || thread_main(ctrl2, id, body))
        .expect("spawn model thread"); // lint:allow(unwrap, OS thread creation failing is unrecoverable for the explorer)

    // Thread creation is itself a scheduling point: the child may run
    // before or after the parent's next step.
    ctrl.yield_point(me);
    JoinHandle { id, os: Some(os) }
}

/// An explicit scheduling point, for tests that want to widen the
/// explored interleavings around plain memory operations.
pub fn yield_now() {
    if let Some((ctrl, me)) = current() {
        ctrl.yield_point(me);
    }
}

/// Explores `body` under every preemption-bounded interleaving (see
/// module docs) and returns the number of executions checked. Panics —
/// with the failing schedule — if any execution panics, fails an
/// assertion, or deadlocks.
pub fn check(body: impl Fn() + Send + Sync + 'static) -> usize {
    check_with(DEFAULT_PREEMPTION_BOUND, DEFAULT_MAX_EXECUTIONS, body)
}

/// [`check`] with an explicit preemption bound and execution budget.
pub fn check_with(
    preemption_bound: usize,
    max_executions: usize,
    body: impl Fn() + Send + Sync + 'static,
) -> usize {
    assert!(
        current().is_none(),
        "model::check does not nest inside a model execution"
    );
    let body = Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        let ctrl = Arc::new(Controller::new(prefix.clone()));
        let id = ctrl.register_thread();
        ctrl.locked().running = Some(id);
        let ctrl2 = Arc::clone(&ctrl);
        let b = Arc::clone(&body);
        let root = std::thread::Builder::new()
            .name("model-0".into())
            .spawn(move || thread_main(ctrl2, id, move || b()))
            .expect("spawn model root"); // lint:allow(unwrap, OS thread creation failing is unrecoverable for the explorer)
        ctrl.wait_done();
        let _ = root.join();
        executions += 1;
        let st = ctrl.locked();
        if let Some(fail) = &st.failure {
            panic!("model check failed on execution {executions}: {fail}");
        }
        // Depth-first: rewind to the deepest decision with an untried
        // alternative whose schedule stays within the preemption bound.
        let trace = &st.trace;
        let mut next: Option<Vec<usize>> = None;
        'outer: for i in (0..trace.len()).rev() {
            let base_preemptions = trace[..i]
                .iter()
                .filter(|d| d.preemptible && d.chosen != 0)
                .count();
            let mut cand = trace[i].chosen + 1;
            while cand < trace[i].eligible {
                let preemptions = base_preemptions + usize::from(trace[i].preemptible && cand != 0);
                if preemptions <= preemption_bound {
                    let mut p: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
                    p.push(cand);
                    next = Some(p);
                    break 'outer;
                }
                cand += 1;
            }
        }
        drop(st);
        match next {
            Some(p) => prefix = p,
            None => return executions,
        }
        assert!(
            executions < max_executions,
            "model state space exceeded {max_executions} executions — \
             shrink the model or raise the budget via check_with"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msync::{AtomicUsize as MAtomicUsize, Mutex as MMutex};
    use std::sync::atomic::Ordering;

    #[test]
    fn single_thread_model_runs_once() {
        let n = check(|| {
            let m = MMutex::new(1);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 2);
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn two_increments_explore_multiple_interleavings() {
        let n = check(|| {
            let c = Arc::new(MAtomicUsize::new(0));
            let a = {
                let c = Arc::clone(&c);
                spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            };
            let b = {
                let c = Arc::clone(&c);
                spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            };
            a.join();
            b.join();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
        assert!(n > 1, "expected multiple interleavings, got {n}");
    }

    #[test]
    fn model_catches_lost_update() {
        // A non-atomic read-modify-write through a shared cell must be
        // caught: some interleaving loses an update. This is the
        // explorer's own canary — if it stops failing, the model has
        // stopped exploring.
        let caught = std::panic::catch_unwind(|| {
            check(|| {
                let c = Arc::new(MAtomicUsize::new(0));
                let mk = |c: Arc<MAtomicUsize>| {
                    spawn(move || {
                        let v = c.load(Ordering::SeqCst); // read …
                        c.store(v + 1, Ordering::SeqCst); // … then write
                    })
                };
                let a = mk(Arc::clone(&c));
                let b = mk(Arc::clone(&c));
                a.join();
                b.join();
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            })
        });
        assert!(caught.is_err(), "lost update went undetected");
    }

    #[test]
    fn model_reports_deadlock() {
        let caught = std::panic::catch_unwind(|| {
            check(|| {
                let m = Arc::new(MMutex::new(()));
                let g = m.lock();
                let t = {
                    let m = Arc::clone(&m);
                    spawn(move || {
                        let _g = m.lock(); // parent never releases
                    })
                };
                t.join(); // … and joins while still holding the lock
                drop(g);
            })
        });
        assert!(caught.is_err(), "deadlock went undetected");
    }
}
