//! Per-node counters collected by the simulator.

use serde::{Deserialize, Serialize};
use whitefi_phy::SimDuration;

/// Counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Bytes of unicast payload successfully acknowledged (sender side).
    pub tx_acked_bytes: u64,
    /// Unicast frames acknowledged.
    pub tx_acked_frames: u64,
    /// Bytes of unicast payload received (receiver side).
    pub rx_data_bytes: u64,
    /// Unicast data/report frames received.
    pub rx_data_frames: u64,
    /// Broadcast frames received.
    pub rx_broadcast_frames: u64,
    /// Transmission attempts started (including retries, ACKs, beacons).
    pub tx_attempts: u64,
    /// Frames dropped after exhausting the retry limit.
    pub tx_failures: u64,
    /// Frames that collided or were otherwise lost at some receiver.
    pub rx_collisions: u64,
    /// Transmissions started while the *true* incumbent map had an active
    /// primary user on an overlapped channel — the protocol-correctness
    /// counter (must stay zero for a well-behaved WhiteFi network; §2.3).
    pub incumbent_violations: u64,
}

impl NodeStats {
    /// Sender goodput in Mbps over the given span.
    pub fn tx_goodput_mbps(&self, span: SimDuration) -> f64 {
        if span == SimDuration::ZERO {
            return 0.0;
        }
        self.tx_acked_bytes as f64 * 8.0 / span.as_secs_f64() / 1e6
    }

    /// Receiver goodput in Mbps over the given span.
    pub fn rx_goodput_mbps(&self, span: SimDuration) -> f64 {
        if span == SimDuration::ZERO {
            return 0.0;
        }
        self.rx_data_bytes as f64 * 8.0 / span.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_computation() {
        let s = NodeStats {
            tx_acked_bytes: 1_250_000, // 10 Mbit
            ..Default::default()
        };
        let g = s.tx_goodput_mbps(SimDuration::from_secs(2));
        assert!((g - 5.0).abs() < 1e-9);
        assert_eq!(s.tx_goodput_mbps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn rx_goodput() {
        let s = NodeStats {
            rx_data_bytes: 125_000,
            ..Default::default()
        };
        assert!((s.rx_goodput_mbps(SimDuration::from_secs(1)) - 1.0).abs() < 1e-9);
    }
}
