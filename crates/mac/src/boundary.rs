//! Cross-shard boundary channel for the certified-silent cut protocol
//! (DESIGN.md §14).
//!
//! When the city core splits one influence component across shards
//! (`whitefi::city::shard_plan_cut`), the shard groups are no longer
//! provably independent: a *border* cell's transmission could reach a
//! cell hosted by another group. The cut protocol runs the groups in
//! conservative lockstep rounds — each round one lookahead-barrier
//! window — and at every barrier exchanges per-border-cell **span
//! masks**: the union of the UHF channels spanned by every transmission
//! the cell's nodes started during the round. Each group then
//! *certifies* the round: no remote border mask may intersect the
//! channel footprint of any local cell that lies within the remote
//! cell's radio reach. If every round certifies, the cut execution is
//! byte-identical to the unsharded one (soundness argument in DESIGN.md
//! §14); on the first contact the whole attempt is discarded and the
//! caller re-runs under the component-exact plan, so the determinism
//! contract is preserved unconditionally.
//!
//! [`BoundaryBus`] is the **only sanctioned cross-shard channel** in
//! the sim crates: whitefi-lint's R2 extension rejects ad-hoc
//! `Mutex`/`RwLock`/`Condvar`/`mpsc` use anywhere else in them, so
//! every cross-shard byte provably flows through this barrier
//! discipline (and through the worker pool in `bench::runner`, which
//! only moves opaque completed results).
//!
//! The bus supports two drivers:
//!
//! * **Sequential lockstep** ([`BoundaryBus::publish`] +
//!   [`BoundaryBus::collect_others`]): one thread steps every group one
//!   round, publishes all reports, then certifies — used by
//!   `run_city_with` and the differential tests.
//! * **Pooled** ([`BoundaryBus::exchange`]): each group runs on its own
//!   worker, blocking at the barrier until every peer has published the
//!   round. A group that detects contact calls
//!   [`BoundaryBus::flag_contact`], which wakes every blocked peer with
//!   an error so the pool drains promptly instead of deadlocking.
//!   Results of an aborted attempt are discarded wholesale, so the
//!   nondeterministic *timing* of the abort can never leak into an
//!   outcome.
//!
//! The bus's primitives come from [`crate::msync`], so the exact same
//! code runs under std in production, under the deterministic
//! interleaving explorer in `tests/loom_models.rs` (publish/collect,
//! barrier-skew and contact-wake interleavings), and under real loom
//! on machines that opt in with `--cfg loom` (DESIGN.md §16).

use crate::msync::{AtomicBool, Condvar, Mutex, MutexGuard};
use std::sync::atomic::Ordering;
use whitefi_phy::{PhyTiming, SimDuration};

/// The conservative cut lookahead `L`: the minimum delay between the
/// moment any transmission-start event is *decided* and the moment it
/// *fires*. Tentative transmissions fire `DIFS + backoff·slot ≥ DIFS >
/// SIFS` after they are planned; forced transmissions (ACK, CTS-to-self)
/// fire exactly one SIFS after the frame that elicited them. The
/// smallest SIFS over all widths is the 20 MHz one, so `L =
/// PhyTiming::min_sifs()` lower-bounds every cross-shard reaction
/// latency. [`crate::sim::Simulator::set_min_tx_lookahead`] turns this
/// bound into a hard runtime assert; the cut soundness argument
/// (DESIGN.md §14) leans on it.
pub fn cut_lookahead() -> SimDuration {
    PhyTiming::min_sifs()
}

/// Border spectrum activity of one shard group over one barrier round:
/// `(global cell index, union span mask)` pairs, mask bit `i` set iff
/// some node of the cell started a transmission spanning UHF channel
/// `i` during the round. Cells with no activity are omitted.
pub type BorderActivity = Vec<(usize, u32)>;

/// Marker error: a cross-cut contact was certified-impossible to rule
/// out, so the cut attempt must be discarded and re-run under the
/// component-exact plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutContact;

struct BusRound {
    /// One slot per group; `None` until that group publishes.
    reports: Vec<Option<BorderActivity>>,
}

struct BusState {
    rounds: Vec<BusRound>,
}

/// The sanctioned cross-shard boundary channel (see module docs).
pub struct BoundaryBus {
    groups: usize,
    state: Mutex<BusState>,
    barrier: Condvar,
    contact: AtomicBool,
}

impl BoundaryBus {
    /// A bus for `groups` shard groups.
    pub fn new(groups: usize) -> Self {
        Self {
            groups,
            state: Mutex::new(BusState { rounds: Vec::new() }),
            barrier: Condvar::new(),
            contact: AtomicBool::new(false),
        }
    }

    /// Number of shard groups on the bus.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Poison-tolerant lock (the `msync` shim recovers the value): a
    /// worker that panicked mid-round aborts the whole cut attempt (its
    /// panic propagates through the pool join), so state observed after
    /// a poisoning is never used for an outcome.
    fn lock(&self) -> MutexGuard<'_, BusState> {
        self.state.lock()
    }

    fn round_slot(state: &mut BusState, groups: usize, round: usize) -> &mut BusRound {
        while state.rounds.len() <= round {
            state.rounds.push(BusRound {
                reports: vec![None; groups],
            });
        }
        &mut state.rounds[round]
    }

    fn put(state: &mut BusState, groups: usize, group: usize, round: usize, a: BorderActivity) {
        assert!(group < groups, "group {group} out of range");
        let slot = &mut Self::round_slot(state, groups, round).reports[group];
        assert!(
            slot.is_none(),
            "group {group} published round {round} twice"
        );
        *slot = Some(a);
    }

    /// The union of every *other* group's activity for a complete round,
    /// sorted by cell. Cells belong to exactly one group, so sorting by
    /// cell index alone is a total order — the merge is independent of
    /// publish order, which keeps pooled and sequential drivers
    /// byte-identical.
    fn merged_others(round: &BusRound, group: usize) -> BorderActivity {
        let mut merged: BorderActivity = Vec::new();
        for (g, report) in round.reports.iter().enumerate() {
            if g == group {
                continue;
            }
            match report {
                Some(r) => merged.extend_from_slice(r),
                None => panic!("round collected before group {g} published — driver bug"),
            }
        }
        merged.sort_unstable_by_key(|&(cell, _)| cell);
        merged
    }

    /// Non-blocking publish, for the sequential lockstep driver.
    pub fn publish(&self, group: usize, round: usize, activity: BorderActivity) {
        let mut st = self.lock();
        Self::put(&mut st, self.groups, group, round, activity);
        drop(st);
        self.barrier.notify_all();
    }

    /// Non-blocking collect of every other group's activity for `round`.
    /// The sequential driver publishes all groups before collecting any;
    /// collecting an incomplete round panics (driver bug, not a data
    /// condition).
    pub fn collect_others(&self, group: usize, round: usize) -> BorderActivity {
        let mut st = self.lock();
        let r = Self::round_slot(&mut st, self.groups, round);
        Self::merged_others(r, group)
    }

    /// Blocking publish-then-collect, for pooled execution: publishes
    /// this group's activity, then waits until every group has published
    /// the round (or a contact is flagged) and returns the merged remote
    /// activity. Returns `Err(CutContact)` as soon as any group flags a
    /// contact, so blocked workers drain instead of waiting on peers
    /// that already aborted.
    pub fn exchange(
        &self,
        group: usize,
        round: usize,
        activity: BorderActivity,
    ) -> Result<BorderActivity, CutContact> {
        let mut st = self.lock();
        Self::put(&mut st, self.groups, group, round, activity);
        self.barrier.notify_all();
        loop {
            if self.contact.load(Ordering::SeqCst) {
                return Err(CutContact);
            }
            if st.rounds[round].reports.iter().all(Option::is_some) {
                return Ok(Self::merged_others(&st.rounds[round], group));
            }
            st = self.barrier.wait(st);
        }
    }

    /// Flags a cross-cut contact and wakes every blocked [`exchange`]
    /// caller. Taken under the bus lock so a peer cannot check the flag
    /// and block between the store and the wake.
    ///
    /// [`exchange`]: BoundaryBus::exchange
    pub fn flag_contact(&self) {
        let st = self.lock();
        self.contact.store(true, Ordering::SeqCst);
        drop(st);
        self.barrier.notify_all();
    }

    /// Whether any group has flagged a contact.
    pub fn contact(&self) -> bool {
        self.contact.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lookahead_is_the_smallest_sifs() {
        assert_eq!(cut_lookahead().as_micros(), 10);
        for w in whitefi_spectrum::Width::ALL {
            assert!(PhyTiming::for_width(w).sifs() >= cut_lookahead());
            assert!(PhyTiming::for_width(w).difs() > cut_lookahead());
        }
    }

    #[test]
    fn sequential_merge_is_publish_order_independent() {
        let forward = BoundaryBus::new(3);
        forward.publish(0, 0, vec![(0, 0b01)]);
        forward.publish(1, 0, vec![(5, 0b10)]);
        forward.publish(2, 0, vec![]);
        let reverse = BoundaryBus::new(3);
        reverse.publish(2, 0, vec![]);
        reverse.publish(1, 0, vec![(5, 0b10)]);
        reverse.publish(0, 0, vec![(0, 0b01)]);
        for g in 0..3 {
            assert_eq!(forward.collect_others(g, 0), reverse.collect_others(g, 0));
        }
        assert_eq!(forward.collect_others(0, 0), vec![(5, 0b10)]);
        assert_eq!(forward.collect_others(1, 0), vec![(0, 0b01)]);
        assert_eq!(forward.collect_others(2, 0), vec![(0, 0b01), (5, 0b10)]);
    }

    #[test]
    fn pooled_exchange_barriers_every_round() {
        let bus = BoundaryBus::new(4);
        let max_spread = AtomicUsize::new(0);
        let round_of = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        std::thread::scope(|s| {
            for g in 0..4 {
                let bus = &bus;
                let round_of = &round_of;
                let max_spread = &max_spread;
                s.spawn(move || {
                    for round in 0..16 {
                        round_of[g].store(round, Ordering::SeqCst);
                        let remote = bus
                            .exchange(g, round, vec![(g, 1 << round)])
                            .expect("no contact flagged");
                        assert_eq!(remote.len(), 3, "group {g} round {round}");
                        for &(cell, mask) in &remote {
                            assert_ne!(cell, g);
                            assert_eq!(mask, 1 << round);
                        }
                        // After a successful exchange every peer has
                        // reached this round: the barrier bounds skew to
                        // at most one round.
                        let spread = round_of
                            .iter()
                            .map(|r| round.saturating_sub(r.load(Ordering::SeqCst)))
                            .max()
                            .unwrap_or(0);
                        max_spread.fetch_max(spread, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(max_spread.load(Ordering::SeqCst) <= 1);
    }

    #[test]
    fn contact_flag_wakes_blocked_exchanges() {
        let bus = BoundaryBus::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| bus.exchange(0, 0, vec![(7, 0b100)]));
            // Group 1 never publishes round 0; it flags a contact
            // instead. The blocked group-0 exchange must drain with an
            // error rather than deadlock.
            bus.flag_contact();
            assert_eq!(waiter.join().expect("waiter panicked"), Err(CutContact));
        });
        assert!(bus.contact());
        assert_eq!(bus.exchange(1, 0, vec![]), Err(CutContact));
    }
}
