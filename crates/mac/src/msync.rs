//! Model-aware synchronization shims for the sim crates' tiny
//! concurrent core (DESIGN.md §16).
//!
//! Three backends share one API, so [`crate::boundary::BoundaryBus`]
//! and the bench runner pool are written once and checked three ways:
//!
//! * **std** (default, production): every type delegates straight to
//!   `std::sync` — zero behavioural or performance difference outside a
//!   model run. Locks are poison-tolerant ([`Mutex::lock`] recovers the
//!   inner value), matching the bus's pre-existing discipline.
//! * **minloom** (default, under [`crate::model::check`]): when the
//!   calling thread is a model thread, every operation first yields to
//!   the deterministic interleaving explorer, which exhaustively
//!   (preemption-bounded) schedules the checked closure. Outside a
//!   model run this branch is never taken.
//! * **loom** (`--cfg loom`, networked machines only): the real
//!   [loom](https://docs.rs/loom) primitives, for exhaustive
//!   C11-memory-model checking. The loom crate is deliberately *not* a
//!   dependency of offline builds; see README "Race detection" for the
//!   two-line stanza to add.
//!
//! Model-checked code must create its `msync` objects *inside* the
//! checked closure: an object created outside carries no model identity
//! and would fall back to real blocking, hanging the cooperative
//! scheduler.

pub use backend::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(loom)]
mod backend {
    //! Thin adapters over the real loom primitives (poison-unwrapping,
    //! so call sites look identical to the std backend).
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    use std::ops::{Deref, DerefMut};

    /// Loom-backed mutex with a poison-tolerant `lock`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    /// Guard returned by [`Mutex::lock`].
    #[derive(Debug)]
    pub struct MutexGuard<'a, T>(loom::sync::MutexGuard<'a, T>);

    /// Loom-backed condition variable.
    #[derive(Debug, Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl<T> Mutex<T> {
        /// A new mutex holding `v`.
        pub fn new(v: T) -> Self {
            Self(loom::sync::Mutex::new(v))
        }

        /// Locks, recovering the value from a poisoned lock.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<'a, T> Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<'a, T> DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl Condvar {
        /// A new condition variable.
        pub fn new() -> Self {
            Self(loom::sync::Condvar::new())
        }

        /// Releases the guard's lock until notified; relocks on return.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard(self.0.wait(guard.0).unwrap_or_else(|e| e.into_inner()))
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(not(loom))]
mod backend {
    //! std-backed primitives that hand every operation to the minloom
    //! scheduler when (and only when) the calling thread belongs to an
    //! active [`crate::model::check`] execution.
    use crate::model;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::Ordering;
    use std::sync::PoisonError;

    /// Yields to the model scheduler at an atomic access, outside any
    /// lock bookkeeping.
    fn model_point() {
        if let Some((ctrl, me)) = model::current() {
            ctrl.yield_point(me);
        }
    }

    /// Mutex that schedules through the active interleaving model and
    /// otherwise behaves exactly like a poison-tolerant `std` mutex.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        /// Model identity, assigned when constructed inside a model run.
        id: Option<usize>,
    }

    impl<T> Mutex<T> {
        /// A new mutex holding `v`.
        pub fn new(v: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(v),
                id: model::current().map(|(ctrl, _)| ctrl.register_mutex()),
            }
        }

        /// Locks, recovering the value from a poisoned lock (a worker
        /// that panicked mid-round aborts the whole attempt through the
        /// pool join, so post-poison state never reaches an outcome).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if let (Some(id), Some((ctrl, me))) = (self.id, model::current()) {
                ctrl.lock_mutex(me, id);
                let g = self
                    .inner
                    .try_lock()
                    .expect("model granted a lock the std mutex still holds"); // lint:allow(unwrap, the model scheduler serializes lock grants; contention here is a model bug)
                MutexGuard {
                    lock: self,
                    inner: Some(g),
                }
            } else {
                MutexGuard {
                    lock: self,
                    inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                }
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Guard returned by [`Mutex::lock`]; releases the model ownership
    /// (a scheduling point) after the std guard on drop.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<'a, T> Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released") // lint:allow(unwrap, inner is only taken by Condvar::wait, which returns a fresh guard)
        }
    }

    impl<'a, T> DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released") // lint:allow(unwrap, inner is only taken by Condvar::wait, which returns a fresh guard)
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g); // release the std lock first …
                if let (Some(id), Some((ctrl, me))) = (self.lock.id, model::current()) {
                    ctrl.unlock_mutex(me, id); // … then the model's
                }
            }
        }
    }

    /// Condvar that parks through the active interleaving model (no
    /// spurious wakeups there) and otherwise delegates to `std`.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
        id: Option<usize>,
    }

    impl Condvar {
        /// A new condition variable.
        pub fn new() -> Self {
            Self {
                inner: std::sync::Condvar::new(),
                id: model::current().map(|(ctrl, _)| ctrl.register_condvar()),
            }
        }

        /// Releases the guard's lock until notified; relocks on return.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let lock = guard.lock;
            let std_guard = guard.inner.take().expect("guard already released"); // lint:allow(unwrap, wait consumes the guard; inner is present until this very take)
            if let (Some(cv), Some((ctrl, me))) = (self.id, model::current()) {
                let m = lock.id.expect("model condvar paired with non-model mutex"); // lint:allow(unwrap, both sides register with the model in new(); a mismatch is a harness bug)
                drop(std_guard); // model owns exclusion; release std lock
                ctrl.condvar_wait(me, cv, m); // returns owning model lock
                let g = lock
                    .inner
                    .try_lock()
                    .expect("model granted a lock the std mutex still holds"); // lint:allow(unwrap, the model scheduler serializes lock grants; contention here is a model bug)
                MutexGuard {
                    lock,
                    inner: Some(g),
                }
            } else {
                let g = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(PoisonError::into_inner);
                MutexGuard {
                    lock,
                    inner: Some(g),
                }
            }
        }

        /// Wakes one waiter (under the model: the lowest-id waiter, a
        /// deterministic approximation).
        pub fn notify_one(&self) {
            if let (Some(cv), Some((ctrl, me))) = (self.id, model::current()) {
                ctrl.notify(me, cv, false);
            } else {
                self.inner.notify_one();
            }
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            if let (Some(cv), Some((ctrl, me))) = (self.id, model::current()) {
                ctrl.notify(me, cv, true);
            } else {
                self.inner.notify_all();
            }
        }
    }

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $val:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// A new atomic holding `v`.
                pub fn new(v: $val) -> Self {
                    Self { v: <$std>::new(v) }
                }

                /// Atomic load (a model scheduling point).
                pub fn load(&self, order: Ordering) -> $val {
                    model_point();
                    self.v.load(order)
                }

                /// Atomic store (a model scheduling point).
                pub fn store(&self, val: $val, order: Ordering) {
                    model_point();
                    self.v.store(val, order);
                }

                /// Atomic swap (a model scheduling point).
                pub fn swap(&self, val: $val, order: Ordering) -> $val {
                    model_point();
                    self.v.swap(val, order)
                }
            }
        };
    }

    model_atomic!(
        /// Model-aware `AtomicBool`; each access is a scheduling point.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    model_atomic!(
        /// Model-aware `AtomicUsize`; each access is a scheduling point.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model-aware `AtomicU64`; each access is a scheduling point.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );

    impl AtomicUsize {
        /// Atomic add, returning the previous value (a scheduling
        /// point) — the runner pool's work-index handoff primitive.
        pub fn fetch_add(&self, val: usize, order: Ordering) -> usize {
            model_point();
            self.v.fetch_add(val, order)
        }

        /// Atomic max, returning the previous value (a scheduling
        /// point).
        pub fn fetch_max(&self, val: usize, order: Ordering) -> usize {
            model_point();
            self.v.fetch_max(val, order)
        }
    }

    impl AtomicU64 {
        /// Atomic add, returning the previous value (a scheduling
        /// point).
        pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
            model_point();
            self.v.fetch_add(val, order)
        }
    }
}
