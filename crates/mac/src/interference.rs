//! Spectral interference graph over static node sites, for pruning
//! provably non-interacting nodes from fixed-channel runs.
//!
//! A directed edge `u → v` means "a transmission by `u` can influence
//! `v`": their `(F, W)` channels share at least one UHF channel *and*
//! `v` lies within `u`'s transmission/carrier-sense range. This is the
//! union of every inter-node coupling in the engine — delivery,
//! carrier sense, deferral invalidation, and interference all test
//! channel-span overlap plus the same range predicate (`sim.rs`
//! `in_range_geom`), so a node with no edge into a set `S` can neither
//! deliver to, defer, nor corrupt frames at any node of `S`.
//!
//! [`influence_closure`] computes which nodes can influence a root set
//! transitively (reverse reachability): node `u` is kept iff some path
//! `u → … → r` of influence edges reaches a root `r`. Dropping every
//! non-kept node from a simulation cannot change what the roots
//! observe — provided nodes hold their channels and make no draws that
//! route through other nodes' RNGs, which fixed-mode driver runs
//! guarantee (scanners disabled, per-node RNG streams; DESIGN.md §9).

use whitefi_spectrum::WfChannel;

/// A node's static spectral/geometric footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSite {
    /// The `(F, W)` channel the node is tuned to (fixed for the run).
    pub channel: WfChannel,
    /// Position in metres.
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range in metres.
    pub range: f64,
}

impl NodeSite {
    /// A co-located site with the engine's default geometry (matches
    /// [`crate::NodeConfig::on_channel`]: pos `(0,0)`, range 1e6 m).
    pub fn on_channel(channel: WfChannel) -> Self {
        Self {
            channel,
            pos: (0.0, 0.0),
            range: 1.0e6,
        }
    }

    /// Sets the position.
    pub fn at(mut self, x: f64, y: f64) -> Self {
        self.pos = (x, y);
        self
    }

    /// Sets the range.
    pub fn with_range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }
}

/// Can a transmission by `a` influence `b`? Channel spans must overlap
/// and `b` must be within `a`'s range — the exact float predicate the
/// engine evaluates (`d².sqrt() <= range`, no algebraic rewrite that
/// could flip at rounding boundaries).
pub fn influences(a: &NodeSite, b: &NodeSite) -> bool {
    if !a.channel.overlaps(b.channel) {
        return false;
    }
    let d2 = (a.pos.0 - b.pos.0).powi(2) + (a.pos.1 - b.pos.1).powi(2);
    d2.sqrt() <= a.range
}

/// Reverse reachability to `roots` over the influence graph: `keep[i]`
/// is true iff node `i` is a root or can influence a kept node —
/// i.e. there is a directed path of [`influences`] edges from `i` to
/// some root. Everything with `keep[i] == false` is spectrally sliced
/// away from the roots and can be omitted from the simulation without
/// changing anything the roots observe.
///
/// O(n²) worklist; sites are static so this runs once per scenario.
pub fn influence_closure(sites: &[NodeSite], roots: &[usize]) -> Vec<bool> {
    let mut keep = vec![false; sites.len()];
    let mut work: Vec<usize> = Vec::with_capacity(sites.len());
    for &r in roots {
        assert!(r < sites.len(), "root {r} out of bounds");
        if !keep[r] {
            keep[r] = true;
            work.push(r);
        }
    }
    while let Some(v) = work.pop() {
        for u in 0..sites.len() {
            if !keep[u] && influences(&sites[u], &sites[v]) {
                keep[u] = true;
                work.push(u);
            }
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_spectrum::Width;

    fn ch(center: usize, w: Width) -> WfChannel {
        WfChannel::from_parts(center, w)
    }

    #[test]
    fn disjoint_channels_never_influence() {
        let a = NodeSite::on_channel(ch(3, Width::W5));
        let b = NodeSite::on_channel(ch(9, Width::W5));
        assert!(!influences(&a, &b));
        assert!(!influences(&b, &a));
    }

    #[test]
    fn overlapping_spans_influence_when_in_range() {
        // A W20 at 10 spans 8..=12; a W5 at 11 sits inside it.
        let a = NodeSite::on_channel(ch(10, Width::W20));
        let b = NodeSite::on_channel(ch(11, Width::W5));
        assert!(influences(&a, &b));
        assert!(influences(&b, &a));
    }

    #[test]
    fn range_is_directional() {
        let c = ch(5, Width::W5);
        let near = NodeSite::on_channel(c).with_range(100.0);
        let far = NodeSite::on_channel(c).at(150.0, 0.0).with_range(1000.0);
        // far reaches near, near does not reach far.
        assert!(influences(&far, &near));
        assert!(!influences(&near, &far));
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let c = ch(5, Width::W5);
        let a = NodeSite::on_channel(c).with_range(100.0);
        let b = NodeSite::on_channel(c).at(100.0, 0.0);
        assert!(influences(&a, &b), "d == range must count as in range");
    }

    #[test]
    fn closure_keeps_transitive_influencers() {
        let c = ch(5, Width::W5);
        // Chain: 2 → 1 → 0(root), each hop 100 m with 120 m range, so
        // 2 cannot reach 0 directly but influences it through 1.
        let sites = vec![
            NodeSite::on_channel(c).with_range(120.0),
            NodeSite::on_channel(c).at(100.0, 0.0).with_range(120.0),
            NodeSite::on_channel(c).at(200.0, 0.0).with_range(120.0),
            // 3: same geometry, disjoint channel — pruned.
            NodeSite::on_channel(ch(20, Width::W5)).with_range(120.0),
        ];
        let keep = influence_closure(&sites, &[0]);
        assert_eq!(keep, vec![true, true, true, false]);
    }

    #[test]
    fn closure_without_roots_keeps_nothing() {
        let sites = vec![NodeSite::on_channel(ch(5, Width::W5))];
        assert_eq!(influence_closure(&sites, &[]), vec![false]);
    }

    #[test]
    fn closure_handles_duplicate_roots() {
        let sites = vec![
            NodeSite::on_channel(ch(5, Width::W5)),
            NodeSite::on_channel(ch(5, Width::W5)),
        ];
        let keep = influence_closure(&sites, &[0, 0]);
        assert_eq!(keep, vec![true, true]);
    }
}
