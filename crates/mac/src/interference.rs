//! Spectral interference graph over static node sites, for pruning
//! provably non-interacting nodes from fixed-channel runs.
//!
//! A directed edge `u → v` means "a transmission by `u` can influence
//! `v`": their `(F, W)` channels share at least one UHF channel *and*
//! `v` lies within `u`'s transmission/carrier-sense range. This is the
//! union of every inter-node coupling in the engine — delivery,
//! carrier sense, deferral invalidation, and interference all test
//! channel-span overlap plus the same range predicate (`sim.rs`
//! `in_range_geom`), so a node with no edge into a set `S` can neither
//! deliver to, defer, nor corrupt frames at any node of `S`.
//!
//! [`influence_closure`] computes which nodes can influence a root set
//! transitively (reverse reachability): node `u` is kept iff some path
//! `u → … → r` of influence edges reaches a root `r`. Dropping every
//! non-kept node from a simulation cannot change what the roots
//! observe — provided nodes hold their channels and make no draws that
//! route through other nodes' RNGs, which fixed-mode driver runs
//! guarantee (scanners disabled, per-node RNG streams; DESIGN.md §9).

use whitefi_spectrum::WfChannel;

/// A node's static spectral/geometric footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSite {
    /// The `(F, W)` channel the node is tuned to (fixed for the run).
    pub channel: WfChannel,
    /// Position in metres.
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range in metres.
    pub range: f64,
}

impl NodeSite {
    /// A co-located site with the engine's default geometry (matches
    /// [`crate::NodeConfig::on_channel`]: pos `(0,0)`, range 1e6 m).
    pub fn on_channel(channel: WfChannel) -> Self {
        Self {
            channel,
            pos: (0.0, 0.0),
            range: 1.0e6,
        }
    }

    /// Sets the position.
    pub fn at(mut self, x: f64, y: f64) -> Self {
        self.pos = (x, y);
        self
    }

    /// Sets the range.
    pub fn with_range(mut self, range: f64) -> Self {
        self.range = range;
        self
    }
}

/// Can a transmission by `a` influence `b`? Channel spans must overlap
/// and `b` must be within `a`'s range — the exact float predicate the
/// engine evaluates (`d².sqrt() <= range`, no algebraic rewrite that
/// could flip at rounding boundaries).
pub fn influences(a: &NodeSite, b: &NodeSite) -> bool {
    if !a.channel.overlaps(b.channel) {
        return false;
    }
    let d2 = (a.pos.0 - b.pos.0).powi(2) + (a.pos.1 - b.pos.1).powi(2);
    d2.sqrt() <= a.range
}

/// Reverse reachability to `roots` over the influence graph: `keep[i]`
/// is true iff node `i` is a root or can influence a kept node —
/// i.e. there is a directed path of [`influences`] edges from `i` to
/// some root. Everything with `keep[i] == false` is spectrally sliced
/// away from the roots and can be omitted from the simulation without
/// changing anything the roots observe.
///
/// O(n²) worklist; sites are static so this runs once per scenario.
pub fn influence_closure(sites: &[NodeSite], roots: &[usize]) -> Vec<bool> {
    let mut keep = vec![false; sites.len()];
    let mut work: Vec<usize> = Vec::with_capacity(sites.len());
    for &r in roots {
        assert!(r < sites.len(), "root {r} out of bounds");
        if !keep[r] {
            keep[r] = true;
            work.push(r);
        }
    }
    while let Some(v) = work.pop() {
        for u in 0..sites.len() {
            if !keep[u] && influences(&sites[u], &sites[v]) {
                keep[u] = true;
                work.push(u);
            }
        }
    }
    keep
}

/// A node's *potential* spectral/geometric footprint, for sharding
/// adaptive multi-network simulations (DESIGN.md §13).
///
/// Where [`NodeSite`] pins one `(F, W)` channel (valid for fixed-channel
/// runs), a `ShardSite` carries the set of UHF channels the node could
/// ever span across *all* its admissible retunes, as a bitmask over
/// `NUM_UHF_CHANNELS`. Two sites whose footprints share no UHF channel
/// can never couple through the engine — on any channel either of them
/// is allowed to occupy, now or after any sequence of retunes — so a
/// partition into footprint-disjoint (or out-of-range) groups stays
/// influence-closed for the whole run, not just the initial placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSite {
    /// Bitmask of potentially spanned UHF channels (bit `i` = UHF `i`).
    pub footprint: u32,
    /// Position in metres.
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range in metres.
    pub range: f64,
}

impl ShardSite {
    /// An empty-footprint site at the given geometry.
    pub fn new(pos: (f64, f64), range: f64) -> Self {
        Self {
            footprint: 0,
            pos,
            range,
        }
    }

    /// Adds every UHF channel spanned by `channel` to the footprint.
    pub fn add_channel(mut self, channel: WfChannel) -> Self {
        for u in channel.spanned() {
            self.footprint |= 1 << u.index();
        }
        self
    }

    /// A site whose footprint is the union of the given channels' spans.
    pub fn from_channels(
        pos: (f64, f64),
        range: f64,
        channels: impl IntoIterator<Item = WfChannel>,
    ) -> Self {
        channels
            .into_iter()
            .fold(Self::new(pos, range), Self::add_channel)
    }

    /// The single-channel footprint of a fixed [`NodeSite`].
    pub fn from_site(site: &NodeSite) -> Self {
        Self::new(site.pos, site.range).add_channel(site.channel)
    }
}

/// Can `a` and `b` ever couple, on any admissible channel of either?
/// True iff their potential footprints share a UHF channel *and* either
/// lies within the other's range (the symmetrized influence predicate —
/// an edge in either direction keeps the pair in one shard). Uses the
/// same exact float predicate as [`influences`].
pub fn potential_influences(a: &ShardSite, b: &ShardSite) -> bool {
    if a.footprint & b.footprint == 0 {
        return false;
    }
    let d2 = (a.pos.0 - b.pos.0).powi(2) + (a.pos.1 - b.pos.1).powi(2);
    let d = d2.sqrt();
    d <= a.range || d <= b.range
}

/// Can a transmission by `a` *ever* influence `b`, on any admissible
/// channel of either? The directed refinement of
/// [`potential_influences`]: footprints must share a UHF channel and
/// `b` must lie within **`a`'s** range — because every engine coupling
/// (delivery, carrier sense, deferral invalidation, interference, and
/// the scanner queries) gates on the *transmitter's* range, a `false`
/// here means no transmission `a` can ever emit is observable at `b`.
/// The cut partitioner uses this to enumerate the directed border edges
/// a certified-silent cut must watch (DESIGN.md §14); uses the same
/// exact float predicate as [`influences`].
pub fn potential_influences_directed(a: &ShardSite, b: &ShardSite) -> bool {
    if a.footprint & b.footprint == 0 {
        return false;
    }
    let d2 = (a.pos.0 - b.pos.0).powi(2) + (a.pos.1 - b.pos.1).powi(2);
    d2.sqrt() <= a.range
}

/// Connected components of the symmetrized potential-influence graph:
/// returns one component label per site, with labels assigned in first-
/// appearance order (site 0's component is 0, the next unseen site's is
/// 1, …) so the output is a pure function of the input order.
///
/// Because components are closed under [`potential_influences`], and
/// every directed engine coupling implies a symmetric edge here, nodes
/// in different components can never deliver to, defer, or interfere
/// with each other — on their current channels or after any retune
/// within their footprints. Simulating each component in its own engine
/// is therefore exact, not approximate (DESIGN.md §13's sharding key).
///
/// O(n²) pairwise scan with union-find; sites are static per scenario.
pub fn shard_components(sites: &[ShardSite]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..sites.len()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]]; // path halving
            v = parent[v];
        }
        v
    }
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            if potential_influences(&sites[i], &sites[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    // Union toward the lower root: roots stay the
                    // smallest index of their component, making the
                    // relabeling below order-stable.
                    let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                    parent[hi] = lo;
                }
            }
        }
    }
    let mut label = vec![usize::MAX; sites.len()];
    let mut next = 0;
    let mut out = Vec::with_capacity(sites.len());
    for i in 0..sites.len() {
        let r = find(&mut parent, i);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        out.push(label[r]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_spectrum::Width;

    fn ch(center: usize, w: Width) -> WfChannel {
        WfChannel::from_parts(center, w)
    }

    #[test]
    fn disjoint_channels_never_influence() {
        let a = NodeSite::on_channel(ch(3, Width::W5));
        let b = NodeSite::on_channel(ch(9, Width::W5));
        assert!(!influences(&a, &b));
        assert!(!influences(&b, &a));
    }

    #[test]
    fn overlapping_spans_influence_when_in_range() {
        // A W20 at 10 spans 8..=12; a W5 at 11 sits inside it.
        let a = NodeSite::on_channel(ch(10, Width::W20));
        let b = NodeSite::on_channel(ch(11, Width::W5));
        assert!(influences(&a, &b));
        assert!(influences(&b, &a));
    }

    #[test]
    fn range_is_directional() {
        let c = ch(5, Width::W5);
        let near = NodeSite::on_channel(c).with_range(100.0);
        let far = NodeSite::on_channel(c).at(150.0, 0.0).with_range(1000.0);
        // far reaches near, near does not reach far.
        assert!(influences(&far, &near));
        assert!(!influences(&near, &far));
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let c = ch(5, Width::W5);
        let a = NodeSite::on_channel(c).with_range(100.0);
        let b = NodeSite::on_channel(c).at(100.0, 0.0);
        assert!(influences(&a, &b), "d == range must count as in range");
    }

    #[test]
    fn closure_keeps_transitive_influencers() {
        let c = ch(5, Width::W5);
        // Chain: 2 → 1 → 0(root), each hop 100 m with 120 m range, so
        // 2 cannot reach 0 directly but influences it through 1.
        let sites = vec![
            NodeSite::on_channel(c).with_range(120.0),
            NodeSite::on_channel(c).at(100.0, 0.0).with_range(120.0),
            NodeSite::on_channel(c).at(200.0, 0.0).with_range(120.0),
            // 3: same geometry, disjoint channel — pruned.
            NodeSite::on_channel(ch(20, Width::W5)).with_range(120.0),
        ];
        let keep = influence_closure(&sites, &[0]);
        assert_eq!(keep, vec![true, true, true, false]);
    }

    #[test]
    fn closure_without_roots_keeps_nothing() {
        let sites = vec![NodeSite::on_channel(ch(5, Width::W5))];
        assert_eq!(influence_closure(&sites, &[]), vec![false]);
    }

    #[test]
    fn closure_handles_duplicate_roots() {
        let sites = vec![
            NodeSite::on_channel(ch(5, Width::W5)),
            NodeSite::on_channel(ch(5, Width::W5)),
        ];
        let keep = influence_closure(&sites, &[0, 0]);
        assert_eq!(keep, vec![true, true]);
    }

    #[test]
    fn shard_site_footprint_unions_spans() {
        let s = ShardSite::from_channels(
            (0.0, 0.0),
            100.0,
            [ch(10, Width::W20), ch(20, Width::W5)], // spans 8..=12, 20
        );
        let expected: u32 = (8..=12).chain(std::iter::once(20)).map(|i| 1 << i).sum();
        assert_eq!(s.footprint, expected);
        assert_eq!(
            ShardSite::from_site(&NodeSite::on_channel(ch(20, Width::W5)).with_range(7.0)),
            ShardSite::from_channels((0.0, 0.0), 7.0, [ch(20, Width::W5)])
        );
    }

    #[test]
    fn potential_influence_is_symmetric_in_range() {
        let a = ShardSite::from_channels((0.0, 0.0), 100.0, [ch(5, Width::W5)]);
        let b = ShardSite::from_channels((150.0, 0.0), 1000.0, [ch(5, Width::W5)]);
        // Only b reaches a, but the symmetrized predicate keeps the pair
        // coupled both ways (a directed edge in either direction forbids
        // separating them).
        assert!(potential_influences(&a, &b));
        assert!(potential_influences(&b, &a));
        let far = ShardSite::from_channels((2000.0, 0.0), 100.0, [ch(5, Width::W5)]);
        assert!(!potential_influences(&a, &far));
        let disjoint = ShardSite::from_channels((0.0, 0.0), 1e6, [ch(20, Width::W5)]);
        assert!(!potential_influences(&a, &disjoint));
    }

    #[test]
    fn components_group_transitive_chains() {
        let c = ch(5, Width::W5);
        let mk = |x: f64| ShardSite::from_channels((x, 0.0), 120.0, [c]);
        // 0—1—2 form a chain (each hop 100 m); 3 is 500 m away (own
        // component); 4 is co-located with 3 but spectrally disjoint.
        let sites = vec![
            mk(0.0),
            mk(100.0),
            mk(200.0),
            mk(700.0),
            ShardSite::from_channels((700.0, 0.0), 120.0, [ch(20, Width::W5)]),
        ];
        assert_eq!(shard_components(&sites), vec![0, 0, 0, 1, 2]);
    }

    #[test]
    fn component_labels_are_first_appearance_order() {
        let c = ch(5, Width::W5);
        let a = ShardSite::from_channels((0.0, 0.0), 10.0, [c]);
        let b = ShardSite::from_channels((1000.0, 0.0), 10.0, [c]);
        // Interleaved placement: labels follow site order, not geometry.
        let sites = vec![b, a, b, a];
        assert_eq!(shard_components(&sites), vec![0, 1, 0, 1]);
    }

    /// Components agree with [`influence_closure`] over single-channel
    /// sites: the closure of any root never escapes the root's
    /// component (closedness), and every same-component pair is
    /// connected through the symmetrized closure (minimality is not
    /// required for soundness, but this guards against over-merging
    /// bugs like an always-true predicate).
    #[test]
    fn components_are_influence_closed() {
        let c5 = ch(5, Width::W5);
        let c20 = ch(20, Width::W10);
        let sites: Vec<NodeSite> = vec![
            NodeSite::on_channel(c5).with_range(120.0),
            NodeSite::on_channel(c5).at(100.0, 0.0).with_range(120.0),
            NodeSite::on_channel(c20).at(100.0, 0.0).with_range(120.0),
            NodeSite::on_channel(c20).at(900.0, 0.0).with_range(120.0),
            NodeSite::on_channel(c5).at(950.0, 0.0).with_range(120.0),
        ];
        let shard_sites: Vec<ShardSite> = sites.iter().map(ShardSite::from_site).collect();
        let comp = shard_components(&shard_sites);
        for r in 0..sites.len() {
            let keep = influence_closure(&sites, &[r]);
            for (i, &k) in keep.iter().enumerate() {
                if k {
                    assert_eq!(
                        comp[i], comp[r],
                        "site {i} influences root {r} across a component boundary"
                    );
                }
            }
        }
    }
}
