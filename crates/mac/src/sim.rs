//! The discrete-event simulation engine: CSMA/CA nodes over a shared
//! medium, with pluggable per-node behaviours.
//!
//! # Model
//!
//! * Time is integer nanoseconds ([`SimTime`]); events at equal times fire
//!   in scheduling order, so runs are exactly reproducible under a seed.
//!   Randomness is per node: every node owns a `ChaCha8Rng` seeded from
//!   the simulator seed with a distinct stream id (by default its node
//!   id, overridable via [`NodeConfig::rng_stream`]), so a node's draws
//!   are a pure function of `(seed, stream, its own draw count)` —
//!   independent of which other nodes exist (DESIGN.md §9).
//! * Each node is tuned to one `(F, W)` channel at a time (the prototype
//!   has a single transceiver; §4, "we design our system … with one
//!   transceiver and one scanner"). The scanner is modelled by the
//!   windowed queries on [`Medium`].
//! * DCF: a node with pending frames waits until no carrier is sensed on
//!   *any* UHF channel its `(F, W)` spans, then defers DIFS plus a uniform
//!   backoff drawn from `[0, CW)` slots, all width-scaled. Collisions
//!   double `CW` up to `CW_MAX`; the retry limit drops the frame.
//!   (Backoff is redrawn when a deferral is interrupted — a documented
//!   simplification that preserves binary exponential backoff on losses.)
//! * A frame is delivered only to nodes tuned to the *exact same* `(F,W)`
//!   (the width/centre mismatch drop rule) that are in range, not
//!   themselves transmitting, and see no interfering transmission
//!   overlapping the frame in time and spectrum.
//! * Unicast data elicits an ACK one SIFS later; beacons elicit a
//!   CTS-to-self one SIFS later (the SIFT discovery signature, §4.2.1).
//!   Both are sent without carrier sensing, as in 802.11.

use crate::faults::{FaultEvent, FaultPlan, FaultState, FaultStats};
use crate::frames::{Frame, FrameKind, NodeId};
use crate::medium::{Medium, Transmission};
use crate::stats::NodeStats;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use whitefi_phy::{PhyTiming, SimDuration, SimTime};
use whitefi_spectrum::{IncumbentSet, SpectrumMap, UhfChannel, WfChannel, Width, NUM_UHF_CHANNELS};

/// Scanner sensitivity used for incumbent detection, dBm. The KNOWS
/// scanner detects TV at −114 dBm and mics at −110 dBm (§3).
pub const SCANNER_SENSITIVITY_DBM: f64 = -114.0;

/// Cheap per-class event-loop counters.
///
/// `scheduled` counts logical schedules — including timer schedules
/// whose heap push was elided by the per-node timer slots; `handled`
/// counts events popped and dispatched; the `stale_*` counters count
/// gen-checked timer pops that had nothing to do; `lazy_elided` counts
/// heap pushes the timer slots avoided. Counters never influence
/// simulation behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Events scheduled (logical; includes elided heap pushes).
    pub scheduled: u64,
    /// Events popped from the queue and handled.
    pub handled: u64,
    /// `TentativeTx` pops that were stale (superseded or gen-checked).
    pub stale_tentative: u64,
    /// `AckTimeout` pops that were stale (superseded or gen-checked).
    pub stale_ack_timeout: u64,
    /// Heap pushes elided by the per-node lazy timer slots.
    pub lazy_elided: u64,
}

impl EventCounters {
    /// Counter-wise difference `self - earlier`, for attributing a
    /// workload between two snapshots of the same monotone counters.
    pub fn delta_since(&self, earlier: EventCounters) -> EventCounters {
        EventCounters {
            scheduled: self.scheduled.wrapping_sub(earlier.scheduled),
            handled: self.handled.wrapping_sub(earlier.handled),
            stale_tentative: self.stale_tentative.wrapping_sub(earlier.stale_tentative),
            stale_ack_timeout: self
                .stale_ack_timeout
                .wrapping_sub(earlier.stale_ack_timeout),
            lazy_elided: self.lazy_elided.wrapping_sub(earlier.lazy_elided),
        }
    }
}

static GLOBAL_SCHEDULED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_HANDLED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_STALE_TENTATIVE: AtomicU64 = AtomicU64::new(0);
static GLOBAL_STALE_ACK: AtomicU64 = AtomicU64::new(0);
static GLOBAL_LAZY_ELIDED: AtomicU64 = AtomicU64::new(0);

/// Process-wide totals of every [`Simulator`]'s event counters, flushed
/// when each simulator is dropped. Monotone: snapshot before and after
/// a workload and use [`EventCounters::delta_since`] to attribute it.
/// When simulations run concurrently the attribution is approximate —
/// the totals are shared by all threads.
pub fn global_event_totals() -> EventCounters {
    EventCounters {
        scheduled: GLOBAL_SCHEDULED.load(Ordering::Relaxed),
        handled: GLOBAL_HANDLED.load(Ordering::Relaxed),
        stale_tentative: GLOBAL_STALE_TENTATIVE.load(Ordering::Relaxed),
        stale_ack_timeout: GLOBAL_STALE_ACK.load(Ordering::Relaxed),
        lazy_elided: GLOBAL_LAZY_ELIDED.load(Ordering::Relaxed),
    }
}

/// DCF contention parameters.
#[derive(Debug, Clone, Copy)]
pub struct MacParams {
    /// Initial contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retransmissions before a frame is dropped.
    pub retry_limit: u32,
    /// Use the narrowest width's slot/DIFS for *contention* at every
    /// width (default). PLL scaling stretches all PHY timing, but a
    /// wide-channel node contending with 4x-shorter DIFS/slots would
    /// all but starve overlapping narrow channels — against WhiteFi's
    /// §6 coexistence goal. Uniform contention timing restores
    /// cross-width fairness; PHY SIFS and frame durations remain
    /// width-scaled (SIFT's signatures are untouched).
    pub uniform_contention: bool,
}

impl Default for MacParams {
    fn default() -> Self {
        Self {
            cw_min: 16,
            cw_max: 1024,
            retry_limit: 7,
            uniform_contention: true,
        }
    }
}

impl MacParams {
    /// The timing used for DIFS/slot contention at the given width.
    pub fn contention_timing(&self, width: whitefi_spectrum::Width) -> PhyTiming {
        if self.uniform_contention {
            PhyTiming::for_width(whitefi_spectrum::Width::W5)
        } else {
            PhyTiming::for_width(width)
        }
    }
}

/// Static configuration of a node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Initial `(F, W)` channel.
    pub channel: WfChannel,
    /// Whether the node is an access point (feeds the `B_c` estimate).
    pub is_ap: bool,
    /// Position in metres (for range checks).
    pub pos: (f64, f64),
    /// Transmission/carrier-sense range in metres.
    pub range: f64,
    /// The primary users audible at this node.
    pub incumbents: IncumbentSet,
    /// Lag between an incumbent transition and the node noticing it.
    pub detection_delay: SimDuration,
    /// Received amplitude of this node's transmissions at its peers
    /// (linear units; drives SIFT visibility of captured traces).
    pub tx_amplitude: f64,
    /// The network (SSID) the node belongs to, if any. Scanner queries
    /// from [`Ctx`] exclude the node's own SSID, because Equation 1's
    /// airtime and AP counts measure *other* networks.
    pub ssid: Option<u32>,
    /// RNG stream id for this node's private `ChaCha8Rng` (seeded from
    /// the simulator seed, `set_stream(rng_stream)`). Defaults to the
    /// node's insertion id. Drivers that prune provably non-interacting
    /// nodes set it explicitly so surviving nodes keep the stream ids
    /// they had in the unpruned network (DESIGN.md §9).
    pub rng_stream: Option<u64>,
}

impl NodeConfig {
    /// A default configuration on the given channel: co-located nodes in a
    /// single collision domain, no incumbents, 50 ms detection delay.
    pub fn on_channel(channel: WfChannel) -> Self {
        Self {
            channel,
            is_ap: false,
            pos: (0.0, 0.0),
            range: 1.0e6,
            incumbents: IncumbentSet::default(),
            detection_delay: SimDuration::from_millis(50),
            tx_amplitude: 1000.0,
            ssid: None,
            rng_stream: None,
        }
    }

    /// Assigns the node to a network (SSID).
    pub fn in_ssid(mut self, ssid: u32) -> Self {
        self.ssid = Some(ssid);
        self
    }

    /// Marks the node as an AP.
    pub fn ap(mut self) -> Self {
        self.is_ap = true;
        self
    }

    /// Sets the position.
    pub fn at(mut self, x: f64, y: f64) -> Self {
        self.pos = (x, y);
        self
    }

    /// Sets the incumbent environment.
    pub fn with_incumbents(mut self, inc: IncumbentSet) -> Self {
        self.incumbents = inc;
        self
    }

    /// Pins the node's RNG stream id (defaults to the insertion id).
    pub fn rng_stream(mut self, stream: u64) -> Self {
        self.rng_stream = Some(stream);
        self
    }
}

/// Callbacks a node's logic receives from the engine.
///
/// Implementations act through the [`Ctx`] handle. Callbacks never recurse
/// into other behaviours: everything a behaviour does is mediated by
/// future events.
pub trait Behavior {
    /// Called once when the simulation starts (or the node is added to a
    /// running simulation).
    fn on_start(&mut self, ctx: &mut Ctx);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
        let _ = (key, ctx);
    }

    /// A frame addressed to this node (or broadcast) was delivered.
    fn on_frame(&mut self, frame: &Frame, ctx: &mut Ctx) {
        let _ = (frame, ctx);
    }

    /// A queued unicast frame completed: acknowledged (`success`) or
    /// dropped after the retry limit. Broadcast frames always report
    /// success once sent.
    fn on_send_result(&mut self, frame: &Frame, success: bool, ctx: &mut Ctx) {
        let _ = (frame, success, ctx);
    }

    /// The node's observed spectrum map changed (an incumbent appeared or
    /// left, after the detection delay).
    fn on_incumbent_change(&mut self, map: SpectrumMap, ctx: &mut Ctx) {
        let _ = (map, ctx);
    }
}

/// Passive taps on the engine's state transitions, for invariant
/// oracles and trace collectors.
///
/// Observers see every transmission (start and finish), every retune,
/// and every observed-map update, *after* the engine has applied them.
/// They cannot influence the simulation: the engine hands out only
/// shared references, calls arrive at deterministic points of the event
/// loop, and an installed observer never changes scheduling — a run
/// with an observer is event-for-event identical to one without.
pub trait SimObserver {
    /// A transmission was just placed on the medium.
    fn on_tx_start(&mut self, now: SimTime, tx: &Transmission) {
        let _ = (now, tx);
    }

    /// A transmission just left the medium. `faulted_drop` is true when
    /// the installed [`FaultPlan`] lost it at every receiver.
    fn on_tx_end(&mut self, now: SimTime, tx: &Transmission, faulted_drop: bool) {
        let _ = (now, tx, faulted_drop);
    }

    /// Node `node` retuned from `old` to `new` (`old != new`).
    fn on_retune(&mut self, now: SimTime, node: NodeId, old: WfChannel, new: WfChannel) {
        let _ = (now, node, old, new);
    }

    /// Node `node`'s observed spectrum map changed (post detection
    /// delay, including any faulted extra).
    fn on_observed_map(&mut self, now: SimTime, node: NodeId, map: &SpectrumMap) {
        let _ = (now, node, map);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CsmaState {
    Idle,
    Pending,
    Transmitting,
    WaitAck,
}

#[derive(Debug)]
struct Node {
    cfg: NodeConfig,
    channel: WfChannel,
    queue: VecDeque<Frame>,
    state: CsmaState,
    cw: u32,
    retries: u32,
    gen: u64,
    wants_tx: bool,
    current_tx: Option<u64>,
    observed_map: SpectrumMap,
    stats: NodeStats,
    /// Frozen backoff slots carried across deferral interruptions (real
    /// DCF decrements its counter only during idle slots and *freezes*
    /// it when the medium goes busy; without this, slow-slot narrow
    /// channels are systematically starved by fast-slot wide ones).
    slots_left: Option<u64>,
    /// When the current deferral was scheduled (to compute consumed
    /// slots on interruption).
    pending_since: SimTime,
    /// Slots of the current deferral.
    pending_slots: u64,
    /// This node's transmissions currently on the air (mirrors the
    /// medium's active list, so half-duplex checks are O(1)).
    active_tx: u32,
    /// Live `TentativeTx` timer, if armed (lazy heap cancellation: the
    /// slot is overwritten on re-arm instead of enqueueing a fresh heap
    /// entry when one with an earlier key is already in flight).
    tent_slot: Option<TimerKey>,
    /// This node's `TentativeTx` keys currently in the heap, strictly
    /// decreasing bottom-to-top (the top is the next of this class to
    /// pop for this node).
    tent_stack: Vec<(SimTime, u64)>,
    /// Live `AckTimeout` timer, if armed.
    ack_slot: Option<TimerKey>,
    /// This node's `AckTimeout` keys currently in the heap.
    ack_stack: Vec<(SimTime, u64)>,
    /// The node's private deterministic RNG: `ChaCha8Rng` seeded from
    /// the simulator seed on this node's stream. Backoff draws and
    /// behaviour draws ([`Ctx::rng`]) both come from here, so a node's
    /// draw sequence is independent of every other node's.
    rng: ChaCha8Rng,
}

/// Key of a lazily cancelled per-node timer: the eagerly assigned heap
/// ordering key plus the CSMA generation the timer was armed for. The
/// `(time, seq)` pair is fixed at schedule time — re-surfacing a live
/// timer after a superseded pop reuses it, so every event fires at
/// exactly the ordering key an eager implementation would have used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerKey {
    time: SimTime,
    seq: u64,
    gen: u64,
}

#[allow(clippy::large_enum_variant)] // ForcedTx carries a Frame; events are transient
#[derive(Debug, Clone)]
enum Ev {
    Start { node: NodeId },
    // Timer-slot events carry their own heap `seq` so the handler can
    // tell a live entry from a superseded one; the armed generation
    // lives in the node's slot, not the event.
    TentativeTx { node: NodeId, seq: u64 },
    TxEnd { id: u64 },
    AckTimeout { node: NodeId, seq: u64 },
    ForcedTx { node: NodeId, frame: Frame },
    Timer { node: NodeId, key: u64 },
    IncumbentCheck { node: NodeId },
    // A broadcast delivery the fault plan deferred: the frame already
    // hit the receiver's stats at TxEnd, only the behaviour dispatch
    // runs late.
    FaultDeliver { node: NodeId, frame: Frame },
}

struct Queued {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Everything the engine owns except the behaviours (split so behaviours
/// can be called with a mutable handle to the rest).
pub struct Core {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Queued>,
    nodes: Vec<Node>,
    /// The shared medium (public for scanner-style queries).
    pub medium: Medium,
    /// Master seed; each node derives its own `ChaCha8Rng` from it on a
    /// distinct stream (see [`NodeConfig::rng_stream`]).
    seed: u64,
    params: MacParams,
    counters: EventCounters,
    /// `reach[i]` is a bitset over node ids: bit `j` set iff node `i`'s
    /// transmissions reach node `j`. Positions and ranges never change
    /// after `add_node`, so the float range predicate is evaluated once
    /// per pair (with the exact same expression the query would use —
    /// no `d² ≤ r²` rewrite that could flip at rounding boundaries).
    reach: Vec<Vec<u64>>,
    /// Node ids currently tuned to each exact `(F, W)` channel, sorted
    /// ascending: the delivery fan-out index. Ascending order fixes the
    /// behaviour dispatch order to match a full id-order scan.
    on_channel: Vec<Vec<NodeId>>,
    /// Node ids whose current channel spans each UHF channel, for the
    /// deferral-invalidation sweep on transmission start.
    span_members: Vec<Vec<NodeId>>,
    /// Reusable scratch buffers for the per-transmission hot paths.
    delivery_buf: Vec<NodeId>,
    interferer_buf: Vec<NodeId>,
    invalidate_buf: Vec<NodeId>,
    /// Installed fault plan, if any (`None` ⇒ the fault paths are
    /// strict no-ops and the event sequence is the historical one).
    faults: Option<FaultState>,
    /// Installed passive observer, if any (never affects scheduling).
    observer: Option<Box<dyn SimObserver>>,
    /// Armed cross-shard lookahead bound, if any: every
    /// transmission-start event (tentative or forced) must be scheduled
    /// at least this far into the future. The certified-silent cut
    /// protocol (DESIGN.md §14, [`crate::boundary`]) relies on this
    /// property — a node's decision to transmit always precedes the
    /// transmission by at least `L = cut_lookahead()` — so the city core
    /// arms it on every shard simulator and any engine change that
    /// breaks the bound fails loudly instead of silently unsounding the
    /// cut certification.
    min_tx_lookahead: Option<SimDuration>,
}

impl Core {
    fn assert_tx_lookahead(&self, at: SimTime) {
        if let Some(l) = self.min_tx_lookahead {
            assert!(
                at >= self.now + l,
                "transmission-start event scheduled {}ns ahead, inside the armed \
                 cross-shard lookahead window of {}ns — the cut protocol's \
                 decision-to-fire bound no longer holds",
                at.as_nanos().saturating_sub(self.now.as_nanos()),
                l.as_nanos(),
            );
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        if matches!(ev, Ev::ForcedTx { .. }) {
            self.assert_tx_lookahead(at);
        }
        self.counters.scheduled += 1;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { time: at, seq, ev });
    }

    /// Arms node `n`'s tentative-transmit timer. The heap ordering key
    /// `(at, seq)` is assigned eagerly — identical to a plain
    /// `schedule` — but the entry is only pushed if no earlier-keyed
    /// entry of this class is already in the heap for this node; the
    /// pop handler re-surfaces the live key from the slot when the
    /// earlier entry turns out to be superseded.
    fn schedule_tentative(&mut self, n: NodeId, at: SimTime, gen: u64) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.assert_tx_lookahead(at);
        self.counters.scheduled += 1;
        let seq = self.seq;
        self.seq += 1;
        self.nodes[n].tent_slot = Some(TimerKey { time: at, seq, gen });
        let key = (at, seq);
        if self.nodes[n].tent_stack.last().is_none_or(|&top| key < top) {
            self.nodes[n].tent_stack.push(key);
            self.queue.push(Queued {
                time: at,
                seq,
                ev: Ev::TentativeTx { node: n, seq },
            });
        } else {
            self.counters.lazy_elided += 1;
        }
    }

    /// After popping a superseded `TentativeTx` entry for node `n`,
    /// re-surface the live slot key if it is not already in the heap.
    /// The stored `(time, seq)` is reused verbatim, so the live event
    /// still fires at exactly its eagerly assigned position.
    fn requeue_tentative(&mut self, n: NodeId) {
        let Some(k) = self.nodes[n].tent_slot else {
            return;
        };
        let key = (k.time, k.seq);
        if self.nodes[n].tent_stack.last().is_none_or(|&top| key < top) {
            self.nodes[n].tent_stack.push(key);
            self.queue.push(Queued {
                time: k.time,
                seq: k.seq,
                ev: Ev::TentativeTx {
                    node: n,
                    seq: k.seq,
                },
            });
        }
    }

    /// Arms node `n`'s ACK-timeout timer (same lazy-slot discipline as
    /// [`Core::schedule_tentative`]).
    fn schedule_ack(&mut self, n: NodeId, at: SimTime, gen: u64) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.counters.scheduled += 1;
        let seq = self.seq;
        self.seq += 1;
        self.nodes[n].ack_slot = Some(TimerKey { time: at, seq, gen });
        let key = (at, seq);
        if self.nodes[n].ack_stack.last().is_none_or(|&top| key < top) {
            self.nodes[n].ack_stack.push(key);
            self.queue.push(Queued {
                time: at,
                seq,
                ev: Ev::AckTimeout { node: n, seq },
            });
        } else {
            self.counters.lazy_elided += 1;
        }
    }

    /// [`Core::requeue_tentative`], for the ACK-timeout class.
    fn requeue_ack(&mut self, n: NodeId) {
        let Some(k) = self.nodes[n].ack_slot else {
            return;
        };
        let key = (k.time, k.seq);
        if self.nodes[n].ack_stack.last().is_none_or(|&top| key < top) {
            self.nodes[n].ack_stack.push(key);
            self.queue.push(Queued {
                time: k.time,
                seq: k.seq,
                ev: Ev::AckTimeout {
                    node: n,
                    seq: k.seq,
                },
            });
        }
    }

    /// Index of an exact `(F, W)` channel in the `on_channel` table.
    fn chan_slot(channel: WfChannel) -> usize {
        let w = match channel.width() {
            Width::W5 => 0,
            Width::W10 => 1,
            Width::W20 => 2,
        };
        w * NUM_UHF_CHANNELS + channel.center().index()
    }

    /// Nodes currently tuned to exactly `channel`, ascending by id.
    fn nodes_on(&self, channel: WfChannel) -> &[NodeId] {
        &self.on_channel[Self::chan_slot(channel)]
    }

    /// Registers a freshly added node in the channel indexes and
    /// extends the reachability bitsets.
    fn register_node(&mut self, id: NodeId) {
        let channel = self.nodes[id].channel;
        self.on_channel[Self::chan_slot(channel)].push(id);
        for u in channel.spanned() {
            self.span_members[u.index()].push(id);
        }
        debug_assert_eq!(self.reach.len(), id);
        let word = id / 64;
        let bit = 1u64 << (id % 64);
        for i in 0..id {
            let hit = self.in_range_geom(i, id);
            let row = &mut self.reach[i];
            if row.len() <= word {
                row.resize(word + 1, 0);
            }
            if hit {
                row[word] |= bit;
            }
        }
        let mut row = vec![0u64; word + 1];
        for j in 0..=id {
            if self.in_range_geom(id, j) {
                row[j / 64] |= 1u64 << (j % 64);
            }
        }
        self.reach.push(row);
    }

    /// Moves node `n` between the `(F, W)` and UHF-span indexes when it
    /// retunes, keeping both sorted ascending.
    fn retune(&mut self, n: NodeId, new: WfChannel) {
        let old = self.nodes[n].channel;
        if old != new {
            let s = Self::chan_slot(old);
            if let Ok(i) = self.on_channel[s].binary_search(&n) {
                self.on_channel[s].remove(i);
            }
            let s = Self::chan_slot(new);
            if let Err(i) = self.on_channel[s].binary_search(&n) {
                self.on_channel[s].insert(i, n);
            }
            for u in old.spanned() {
                let list = &mut self.span_members[u.index()];
                if let Ok(i) = list.binary_search(&n) {
                    list.remove(i);
                }
            }
            for u in new.spanned() {
                let list = &mut self.span_members[u.index()];
                if let Err(i) = list.binary_search(&n) {
                    list.insert(i, n);
                }
            }
        }
        self.nodes[n].channel = new;
    }

    fn in_range(&self, from: NodeId, to: NodeId) -> bool {
        self.reach[from][to / 64] & (1u64 << (to % 64)) != 0
    }

    /// The underlying float range predicate, evaluated once per node
    /// pair at `add_node` time to fill the `reach` bitsets.
    fn in_range_geom(&self, from: NodeId, to: NodeId) -> bool {
        let a = self.nodes[from].cfg.pos;
        let b = self.nodes[to].cfg.pos;
        let d2 = (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2);
        d2.sqrt() <= self.nodes[from].cfg.range
    }

    fn is_transmitting(&self, n: NodeId) -> bool {
        self.nodes[n].active_tx > 0
    }

    fn senses_carrier(&self, n: NodeId) -> bool {
        let ch = self.nodes[n].channel;
        // Counter fast path: in a saturated simulation most plan() calls
        // happen while the node's span is idle, and the per-channel
        // active counts answer that without scanning the active list.
        if !self.medium.any_active_on(ch) {
            return false;
        }
        self.medium
            .active()
            .iter()
            .any(|t| t.src != n && t.overlaps_channel(ch) && self.in_range(t.src, n))
    }

    /// (Re-)evaluates whether node `n` should schedule a transmission.
    fn plan(&mut self, n: NodeId) {
        if self.nodes[n].queue.is_empty() {
            self.nodes[n].wants_tx = false;
            if self.nodes[n].state == CsmaState::Pending {
                self.nodes[n].gen += 1;
                self.nodes[n].state = CsmaState::Idle;
            }
            return;
        }
        self.nodes[n].wants_tx = true;
        if self.nodes[n].state != CsmaState::Idle {
            return;
        }
        if self.senses_carrier(n) || self.is_transmitting(n) {
            return; // re-planned when a transmission ends
        }
        let slots = {
            let node = &mut self.nodes[n];
            match node.slots_left.take() {
                Some(s) => s,
                None => node.rng.gen_range(0..node.cw) as u64,
            }
        };
        let node = &mut self.nodes[n];
        node.gen += 1;
        let gen = node.gen;
        let timing = self.params.contention_timing(node.channel.width());
        let at = self.now + timing.difs() + timing.slot() * slots;
        node.state = CsmaState::Pending;
        node.pending_since = self.now;
        node.pending_slots = slots;
        self.schedule_tentative(n, at, gen);
    }

    fn start_transmission(&mut self, n: NodeId, frame: Frame, from_queue: bool) {
        let node = &self.nodes[n];
        let channel = node.channel;
        let timing = PhyTiming::for_width(channel.width());
        let duration = timing.frame_duration(frame.bytes());
        let end = self.now + duration;
        let amplitude = node.cfg.tx_amplitude;
        let is_ap = node.cfg.is_ap;
        let ssid = node.cfg.ssid;

        // Incumbent-violation accounting: did the node transmit over a
        // primary user it has *already detected*? (During the detection
        // lag after a mic switches on, a few in-flight frames are
        // physically unavoidable — the paper §2.3 discusses exactly this
        // onset interference; the compliance meter starts once the node
        // knows.)
        let observed = self.nodes[n].observed_map;
        let violates = channel.spanned().any(|u| observed.is_occupied(u));

        let id = self
            .medium
            .start(n, is_ap, ssid, channel, self.now, end, frame, amplitude);
        let node = &mut self.nodes[n];
        node.stats.tx_attempts += 1;
        node.active_tx += 1;
        if violates {
            node.stats.incumbent_violations += 1;
        }
        if from_queue {
            node.state = CsmaState::Transmitting;
            node.current_tx = Some(id);
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.decide(n, self.now, id, frame.dst.is_none());
        }
        if let Some(obs) = self.observer.as_mut() {
            // The transmission just started is the newest active entry.
            // lint:allow(unwrap, Medium::start pushed this entry immediately above; active cannot be empty here)
            let tx = self.medium.active().last().expect("just-started tx");
            obs.on_tx_start(self.now, tx);
        }
        self.schedule(end, Ev::TxEnd { id });

        // Invalidate deferrals of overlapping in-range nodes: the medium
        // just went busy for them. Freeze each node's remaining backoff
        // slots (DCF decrements only during idle time). Candidates come
        // from the per-UHF span index — membership in any list of the
        // transmission's span is exactly the old `overlaps` check. A
        // node spanning several of those UHF channels appears in several
        // lists, but the first pass flips it out of `Pending`, making
        // reprocessing a no-op.
        let mut cands = std::mem::take(&mut self.invalidate_buf);
        cands.clear();
        for u in channel.spanned() {
            cands.extend_from_slice(&self.span_members[u.index()]);
        }
        for &m in &cands {
            if m != n && self.nodes[m].state == CsmaState::Pending && self.in_range(n, m) {
                let timing = self.params.contention_timing(self.nodes[m].channel.width());
                let elapsed = self.now.saturating_since(self.nodes[m].pending_since);
                let idle_after_difs = elapsed.as_nanos().saturating_sub(timing.difs().as_nanos());
                let consumed = idle_after_difs / timing.slot().as_nanos().max(1);
                let node = &mut self.nodes[m];
                node.slots_left = Some(node.pending_slots.saturating_sub(consumed));
                node.gen += 1;
                node.state = CsmaState::Idle;
            }
        }
        self.invalidate_buf = cands;
    }

    fn enqueue(&mut self, n: NodeId, frame: Frame) {
        self.nodes[n].queue.push_back(frame);
        self.plan(n);
    }
}

/// The handle through which behaviours act on the simulation.
pub struct Ctx<'a> {
    core: &'a mut Core,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The channel the node is currently tuned to.
    pub fn channel(&self) -> WfChannel {
        self.core.nodes[self.node].channel
    }

    /// Whether this node is configured as an AP.
    pub fn is_ap(&self) -> bool {
        self.core.nodes[self.node].cfg.is_ap
    }

    /// The node's current observed spectrum map (incumbents only, after
    /// detection delay).
    pub fn spectrum_map(&self) -> SpectrumMap {
        self.core.nodes[self.node].observed_map
    }

    /// Number of frames waiting in the transmit queue.
    pub fn queue_len(&self) -> usize {
        self.core.nodes[self.node].queue.len()
    }

    /// Enqueues a frame for CSMA transmission. The frame's `src` is forced
    /// to this node.
    pub fn send(&mut self, mut frame: Frame) {
        frame.src = self.node;
        self.core.enqueue(self.node, frame);
    }

    /// Enqueues a frame at the *front* of the queue (for urgent control
    /// traffic such as switch announcements).
    pub fn send_front(&mut self, mut frame: Frame) {
        frame.src = self.node;
        self.core.nodes[self.node].queue.push_front(frame);
        self.core.plan(self.node);
    }

    /// Drops all queued frames (e.g. when vacating a channel) and resets
    /// the CSMA state: any pending deferral or ACK wait refers to a frame
    /// that no longer exists.
    pub fn clear_queue(&mut self) {
        let node = &mut self.core.nodes[self.node];
        node.queue.clear();
        node.gen += 1;
        node.slots_left = None;
        // Disown any in-flight transmission: its completion must not pop
        // (and report) a frame enqueued after this clear.
        node.current_tx = None;
        if !matches!(node.state, CsmaState::Idle) {
            node.state = CsmaState::Idle;
        }
        self.core.plan(self.node);
    }

    /// Fires `on_timer(key)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let at = self.core.now + delay;
        self.core.schedule(
            at,
            Ev::Timer {
                node: self.node,
                key,
            },
        );
    }

    /// Retunes the radio to `channel`. Pending deferrals are invalidated
    /// and the queue re-planned on the new channel; an in-flight ACK wait
    /// will time out naturally (the ACK arrives on the old channel).
    pub fn set_channel(&mut self, channel: WfChannel) {
        let old = self.core.nodes[self.node].channel;
        self.core.retune(self.node, channel);
        if old != channel {
            if let Some(obs) = self.core.observer.as_mut() {
                obs.on_retune(self.core.now, self.node, old, channel);
            }
        }
        let node = &mut self.core.nodes[self.node];
        node.slots_left = None;
        node.gen += 1;
        if matches!(node.state, CsmaState::Pending | CsmaState::WaitAck) {
            node.state = CsmaState::Idle;
        }
        self.core.plan(self.node);
    }

    /// Busy airtime fraction of UHF channel `ch` over the trailing
    /// `window` (the scanning radio's measurement; §5.4.2 uses 1 s per
    /// channel). Only transmitters whose signal reaches this node
    /// contribute: the scanner hears what the MAC hears, so a scan is
    /// independent of out-of-range traffic (DESIGN.md §13).
    pub fn airtime(&self, ch: UhfChannel, window: SimDuration) -> f64 {
        let from = SimTime::ZERO + self.core.now.saturating_since(SimTime::ZERO + window);
        if from == self.core.now {
            return 0.0;
        }
        let core = &*self.core;
        let ssid = core.nodes[self.node].cfg.ssid;
        core.medium
            .airtime_in_window_filtered(ch, from, core.now, ssid, |src| {
                core.in_range(src, self.node)
            })
    }

    /// Distinct interfering APs seen on `ch` over the trailing `window`
    /// (in-range transmitters only, like [`Ctx::airtime`]).
    pub fn ap_count(&self, ch: UhfChannel, window: SimDuration) -> u32 {
        let from = SimTime::ZERO + self.core.now.saturating_since(SimTime::ZERO + window);
        let core = &*self.core;
        let ssid = core.nodes[self.node].cfg.ssid;
        core.medium
            .ap_count_in_window_filtered(ch, from, core.now, ssid, |src| {
                core.in_range(src, self.node)
            })
    }

    /// Everything the scanning radio saw over the trailing `window`, as
    /// scanner-visible bursts (input for time-domain SIFT analysis such as
    /// chirp detection on the backup channel). In-range transmitters
    /// only, like [`Ctx::airtime`].
    pub fn visible_bursts(&self, window: SimDuration) -> Vec<whitefi_phy::VisibleBurst> {
        let from = SimTime::ZERO + self.core.now.saturating_since(SimTime::ZERO + window);
        let core = &*self.core;
        core.medium
            .visible_bursts_filtered(from, core.now, |src| core.in_range(src, self.node))
    }

    /// This node's private deterministic RNG stream. Draws here advance
    /// only this node's sequence — never another node's — so adding or
    /// removing unrelated nodes cannot shift the values a behaviour sees.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.core.nodes[self.node].rng
    }
}

/// The simulator: engine core plus per-node behaviours.
pub struct Simulator {
    core: Core,
    behaviors: Vec<Option<Box<dyn Behavior>>>,
}

impl Simulator {
    /// A new simulator seeded for deterministic runs.
    pub fn new(seed: u64) -> Self {
        Self {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                nodes: Vec::new(),
                medium: Medium::new(),
                seed,
                params: MacParams::default(),
                counters: EventCounters::default(),
                reach: Vec::new(),
                on_channel: vec![Vec::new(); 3 * NUM_UHF_CHANNELS],
                span_members: vec![Vec::new(); NUM_UHF_CHANNELS],
                delivery_buf: Vec::new(),
                interferer_buf: Vec::new(),
                invalidate_buf: Vec::new(),
                faults: None,
                observer: None,
                min_tx_lookahead: None,
            },
            behaviors: Vec::new(),
        }
    }

    /// Arms (or disarms) the cross-shard lookahead assert: with
    /// `Some(l)`, scheduling any transmission-start event less than `l`
    /// into the future panics. The sound value is
    /// [`crate::boundary::cut_lookahead`] — tentative transmissions fire
    /// `DIFS + backoff ≥ DIFS` after they are planned and forced
    /// ACK/CTS responses fire exactly one SIFS after their trigger, so
    /// the minimum SIFS over all widths is the largest bound the engine
    /// satisfies (the lookahead soundness test asserts both directions).
    /// Requeues of lazily elided timers reuse their eagerly assigned
    /// `(time, seq)` keys and make no new decision, so the bound is
    /// checked exactly once per decision, at the two decision sites.
    pub fn set_min_tx_lookahead(&mut self, lookahead: Option<SimDuration>) {
        self.core.min_tx_lookahead = lookahead;
    }

    /// Installs a fault plan. Must be called before nodes are added so
    /// every node gets a fault RNG on its own stream; the plan's
    /// `history_skew` (if any) is applied to the medium immediately.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.core.nodes.is_empty(),
            "install the fault plan before adding nodes"
        );
        if let Some(skew) = plan.history_skew {
            self.core.medium.history_horizon = skew;
        }
        let seed = self.core.seed;
        self.core.faults = Some(FaultState::new(plan, seed));
    }

    /// Installs a passive observer (invariant oracle, trace collector).
    /// Observers never influence the simulation.
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.core.observer = Some(observer);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.core.faults.as_ref().map(|fs| fs.plan())
    }

    /// Counters of faults fired so far (default if no plan installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.core
            .faults
            .as_ref()
            .map(|fs| fs.stats())
            .unwrap_or_default()
    }

    /// Every fault fired so far, in firing order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.core.faults.as_ref().map_or(&[], |fs| fs.events())
    }

    /// The extra incumbent-detection latency the fault plan assigned to
    /// node `n` (zero without a plan).
    pub fn fault_detection_extra(&self, n: NodeId) -> SimDuration {
        self.core
            .faults
            .as_ref()
            .map_or(SimDuration::ZERO, |fs| fs.detection_extra(n))
    }

    /// Overrides DCF parameters.
    pub fn set_mac_params(&mut self, params: MacParams) {
        self.core.params = params;
    }

    /// Adds a node; its behaviour's `on_start` runs when the simulation
    /// reaches the current time.
    pub fn add_node(&mut self, cfg: NodeConfig, behavior: Box<dyn Behavior>) -> NodeId {
        let id = self.core.nodes.len();
        let observed_map = cfg
            .incumbents
            .map_at(self.core.now.as_nanos(), SCANNER_SENSITIVITY_DBM);
        let first_change = cfg.incumbents.next_change(self.core.now.as_nanos());
        let detection_delay = cfg.detection_delay;
        let stream = cfg.rng_stream.unwrap_or(id as u64);
        let mut rng = ChaCha8Rng::seed_from_u64(self.core.seed);
        rng.set_stream(stream); // stream-map: domain=sim-nodes salt=scenario-seed streams=0..=4294967295 role="node MAC/traffic draws (stream = NodeConfig::rng_stream or node id)"
        self.core.nodes.push(Node {
            channel: cfg.channel,
            cw: self.core.params.cw_min,
            cfg,
            queue: VecDeque::new(),
            state: CsmaState::Idle,
            retries: 0,
            gen: 0,
            wants_tx: false,
            current_tx: None,
            observed_map,
            stats: NodeStats::default(),
            slots_left: None,
            pending_since: SimTime::ZERO,
            pending_slots: 0,
            active_tx: 0,
            tent_slot: None,
            tent_stack: Vec::new(),
            ack_slot: None,
            ack_stack: Vec::new(),
            rng,
        });
        self.core.register_node(id);
        self.behaviors.push(Some(behavior));
        let now = self.core.now;
        let extra = match self.core.faults.as_mut() {
            Some(fs) => fs.register_node(id, stream, now),
            None => SimDuration::ZERO,
        };
        self.core.schedule(now, Ev::Start { node: id });
        if let Some(t) = first_change {
            self.core.schedule(
                SimTime::from_nanos(t) + detection_delay + extra,
                Ev::IncumbentCheck { node: id },
            );
        }
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Read access to the medium (for scanner-style drivers).
    pub fn medium(&self) -> &Medium {
        &self.core.medium
    }

    /// Mutable access to the medium, so drivers can configure retention
    /// (e.g. tightening [`Medium::history_horizon`] for runs that never
    /// issue scanner queries) before events start flowing.
    pub fn medium_mut(&mut self) -> &mut Medium {
        &mut self.core.medium
    }

    /// Event-loop counters accumulated by this simulator so far.
    pub fn event_counters(&self) -> EventCounters {
        self.core.counters
    }

    /// Whether `from`'s transmissions reach `to`, answered from the
    /// precomputed reachability bitsets the hot paths use.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.core.in_range(from, to)
    }

    /// The same reachability predicate recomputed from node positions —
    /// the brute-force reference for verifying the precomputed bitsets.
    pub fn reaches_geometric(&self, from: NodeId, to: NodeId) -> bool {
        self.core.in_range_geom(from, to)
    }

    /// Nodes currently tuned to exactly `channel`, ascending by id —
    /// the delivery fan-out index.
    pub fn nodes_on_channel(&self, channel: WfChannel) -> &[NodeId] {
        self.core.nodes_on(channel)
    }

    /// Stats of node `n`.
    pub fn stats(&self, n: NodeId) -> NodeStats {
        self.core.nodes[n].stats
    }

    /// Resets all node stats (to measure a steady-state window).
    pub fn reset_stats(&mut self) {
        for node in &mut self.core.nodes {
            node.stats = NodeStats::default();
        }
    }

    /// The channel node `n` is tuned to.
    pub fn node_channel(&self, n: NodeId) -> WfChannel {
        self.core.nodes[n].channel
    }

    /// The spectrum map node `n` currently observes.
    pub fn observed_map(&self, n: NodeId) -> SpectrumMap {
        self.core.nodes[n].observed_map
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }

    /// Runs the simulation until `end` (inclusive of events at `end`).
    pub fn run_until(&mut self, end: SimTime) {
        while let Some(q) = self.core.queue.peek() {
            if q.time > end {
                break;
            }
            let Some(q) = self.core.queue.pop() else {
                break; // unreachable: `peek` just returned an entry
            };
            self.core.now = q.time;
            self.core.counters.handled += 1;
            self.handle(q.ev);
        }
        self.core.now = end;
    }

    fn dispatch<F: FnOnce(&mut dyn Behavior, &mut Ctx)>(&mut self, node: NodeId, f: F) {
        // lint:allow(unwrap, the slot is only empty while its own dispatch runs; re-entrancy is a documented panic)
        let mut b = self.behaviors[node].take().expect("behaviour re-entrancy");
        let mut ctx = Ctx {
            core: &mut self.core,
            node,
        };
        f(b.as_mut(), &mut ctx);
        self.behaviors[node] = Some(b);
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Start { node } => {
                self.dispatch(node, |b, ctx| b.on_start(ctx));
            }
            Ev::Timer { node, key } => {
                self.dispatch(node, |b, ctx| b.on_timer(key, ctx));
            }
            Ev::IncumbentCheck { node } => {
                let now_ns = self.core.now.as_nanos();
                let map = self.core.nodes[node]
                    .cfg
                    .incumbents
                    .map_at(now_ns, SCANNER_SENSITIVITY_DBM);
                let next = self.core.nodes[node].cfg.incumbents.next_change(now_ns);
                if let Some(t) = next {
                    let delay = self.core.nodes[node].cfg.detection_delay;
                    let extra = self
                        .core
                        .faults
                        .as_ref()
                        .map_or(SimDuration::ZERO, |fs| fs.detection_extra(node));
                    self.core.schedule(
                        SimTime::from_nanos(t) + delay + extra,
                        Ev::IncumbentCheck { node },
                    );
                }
                if map != self.core.nodes[node].observed_map {
                    self.core.nodes[node].observed_map = map;
                    if let Some(obs) = self.core.observer.as_mut() {
                        obs.on_observed_map(self.core.now, node, &map);
                    }
                    self.dispatch(node, |b, ctx| b.on_incumbent_change(map, ctx));
                }
            }
            Ev::TentativeTx { node, seq } => {
                // Timer slot: the popped heap entry is live only if it
                // matches the key assigned at the latest schedule.
                let popped = (self.core.now, seq);
                let top = self.core.nodes[node].tent_stack.pop();
                debug_assert_eq!(top, Some(popped), "tentative timer stack out of sync");
                let gen = match self.core.nodes[node].tent_slot {
                    Some(k) if (k.time, k.seq) == popped => {
                        self.core.nodes[node].tent_slot = None;
                        k.gen
                    }
                    _ => {
                        // Superseded entry: surface the live timer (if
                        // any) and drop this one.
                        self.core.requeue_tentative(node);
                        self.core.counters.stale_tentative += 1;
                        return;
                    }
                };
                if self.core.nodes[node].gen != gen
                    || self.core.nodes[node].state != CsmaState::Pending
                {
                    self.core.counters.stale_tentative += 1;
                    return;
                }
                if self.core.senses_carrier(node) || self.core.is_transmitting(node) {
                    // Busy again: the counter effectively reached zero;
                    // transmit at the first post-DIFS opportunity.
                    self.core.nodes[node].slots_left = Some(0);
                    self.core.nodes[node].state = CsmaState::Idle;
                    return;
                }
                let frame = *self.core.nodes[node]
                    .queue
                    .front()
                    // lint:allow(unwrap, a node only enters Pending with a queued frame and dequeues on TxEnd; documented panic)
                    .expect("pending tx with empty queue");
                self.core.start_transmission(node, frame, true);
            }
            Ev::ForcedTx { node, frame } => {
                if self.core.is_transmitting(node) {
                    return; // half-duplex: cannot send the control frame
                }
                self.core.start_transmission(node, frame, false);
            }
            Ev::AckTimeout { node, seq } => {
                let popped = (self.core.now, seq);
                let top = self.core.nodes[node].ack_stack.pop();
                debug_assert_eq!(top, Some(popped), "ack timer stack out of sync");
                let gen = match self.core.nodes[node].ack_slot {
                    Some(k) if (k.time, k.seq) == popped => {
                        self.core.nodes[node].ack_slot = None;
                        k.gen
                    }
                    _ => {
                        self.core.requeue_ack(node);
                        self.core.counters.stale_ack_timeout += 1;
                        return;
                    }
                };
                if self.core.nodes[node].gen != gen
                    || self.core.nodes[node].state != CsmaState::WaitAck
                {
                    self.core.counters.stale_ack_timeout += 1;
                    return;
                }
                let retry_limit = self.core.params.retry_limit;
                let cw_max = self.core.params.cw_max;
                let n = &mut self.core.nodes[node];
                n.retries += 1;
                if n.retries > retry_limit {
                    let Some(frame) = n.queue.pop_front() else {
                        n.retries = 0;
                        n.state = CsmaState::Idle;
                        return;
                    };
                    n.retries = 0;
                    n.cw = self.core.params.cw_min;
                    n.state = CsmaState::Idle;
                    n.stats.tx_failures += 1;
                    self.core.plan(node);
                    self.dispatch(node, |b, ctx| b.on_send_result(&frame, false, ctx));
                } else {
                    n.cw = (n.cw * 2).min(cw_max);
                    n.slots_left = None; // redraw from the doubled window
                    n.state = CsmaState::Idle;
                    self.core.plan(node);
                }
            }
            Ev::TxEnd { id } => self.tx_end(id),
            Ev::FaultDeliver { node, frame } => {
                self.dispatch(node, |b, ctx| b.on_frame(&frame, ctx));
            }
        }
    }

    fn tx_end(&mut self, id: u64) {
        let now = self.core.now;
        let tx = self.core.medium.finish(id, now);
        let src = tx.src;
        self.core.nodes[src].active_tx -= 1;
        let fault = self
            .core
            .faults
            .as_mut()
            .map(|fs| fs.take(id))
            .unwrap_or_default();
        if let Some(obs) = self.core.observer.as_mut() {
            obs.on_tx_end(now, &tx, fault.drop);
        }

        // --- Receiver side ---------------------------------------------
        // Candidates come from the per-(F, W) channel index (exact width
        // and centre match, ascending id — the same set and order a full
        // scan would produce), and the interferer set is collected once
        // per transmission instead of once per candidate: the medium
        // cannot change inside this loop.
        let mut cands = std::mem::take(&mut self.core.delivery_buf);
        cands.clear();
        // A faulted drop loses the frame at *every* receiver: delivery
        // is skipped wholesale, and the sender's ACK wait (if any)
        // times out naturally — retries and backoff emerge from the
        // normal CSMA paths.
        if !fault.drop {
            cands.extend_from_slice(self.core.nodes_on(tx.channel));
        }
        let mut interferer_srcs = std::mem::take(&mut self.core.interferer_buf);
        interferer_srcs.clear();
        if cands.iter().any(|&m| m != src) {
            self.core.medium.interferer_sources_into(
                tx.channel,
                tx.start,
                tx.end,
                id,
                &mut interferer_srcs,
            );
        }
        let mut deliveries: Vec<NodeId> = Vec::new();
        for &m in &cands {
            if m == src {
                continue;
            }
            if !self.core.in_range(src, m) {
                continue;
            }
            if self.core.is_transmitting(m) {
                continue; // half duplex
            }
            // Interference: any other transmission overlapping this one in
            // time whose span intersects the receiver's channel.
            let interfered = interferer_srcs.iter().any(|&s| self.core.in_range(s, m));
            if interfered {
                self.core.nodes[m].stats.rx_collisions += 1;
                continue;
            }
            deliveries.push(m);
        }
        self.core.delivery_buf = cands;
        self.core.interferer_buf = interferer_srcs;

        // Beacon ⇒ CTS-to-self one SIFS later, regardless of receivers.
        if matches!(tx.frame.kind, FrameKind::Beacon { .. }) {
            let timing = PhyTiming::for_width(tx.channel.width());
            let cts = Frame {
                src,
                dst: None,
                kind: FrameKind::Cts,
            };
            self.core.schedule(
                now + timing.sifs(),
                Ev::ForcedTx {
                    node: src,
                    frame: cts,
                },
            );
        }

        for m in deliveries {
            match (tx.frame.dst, tx.frame.kind) {
                (Some(dst), FrameKind::Ack)
                    if dst == m
                    // ACK consumed by the engine.
                    && self.core.nodes[m].state == CsmaState::WaitAck =>
                {
                    let node = &mut self.core.nodes[m];
                    node.gen += 1; // kill the pending AckTimeout
                                   // The queue can only be empty if the behaviour
                                   // cleared it between TX and ACK; treat the ACK as
                                   // spurious then.
                    let Some(frame) = node.queue.pop_front() else {
                        node.state = CsmaState::Idle;
                        continue;
                    };
                    node.stats.tx_acked_bytes += frame.bytes() as u64;
                    node.stats.tx_acked_frames += 1;
                    node.retries = 0;
                    node.cw = self.core.params.cw_min;
                    node.state = CsmaState::Idle;
                    self.core.plan(m);
                    self.dispatch(m, |b, ctx| b.on_send_result(&frame, true, ctx));
                }
                (_, FrameKind::Cts) => { /* occupies air only */ }
                (Some(dst), _) if dst == m => {
                    // Unicast data/report: ACK one SIFS later, then deliver.
                    if tx.frame.needs_ack() {
                        let node = &mut self.core.nodes[m];
                        node.stats.rx_data_bytes += tx.frame.bytes() as u64;
                        node.stats.rx_data_frames += 1;
                        let timing = PhyTiming::for_width(tx.channel.width());
                        let ack = Frame {
                            src: m,
                            dst: Some(src),
                            kind: FrameKind::Ack,
                        };
                        self.core.schedule(
                            now + timing.sifs(),
                            Ev::ForcedTx {
                                node: m,
                                frame: ack,
                            },
                        );
                    }
                    let frame = tx.frame;
                    self.dispatch(m, |b, ctx| b.on_frame(&frame, ctx));
                }
                (None, _) => {
                    self.core.nodes[m].stats.rx_broadcast_frames += 1;
                    let frame = tx.frame;
                    if let Some(by) = fault.delay {
                        // Deferred processing: stats above already
                        // counted the reception at the true time.
                        self.core
                            .schedule(now + by, Ev::FaultDeliver { node: m, frame });
                    } else {
                        self.dispatch(m, |b, ctx| b.on_frame(&frame, ctx));
                        if fault.duplicate {
                            self.dispatch(m, |b, ctx| b.on_frame(&frame, ctx));
                        }
                    }
                }
                _ => { /* overheard unicast for someone else */ }
            }
        }

        // --- Sender side -------------------------------------------------
        if self.core.nodes[src].current_tx == Some(id) {
            self.core.nodes[src].current_tx = None;
            if tx.frame.needs_ack() {
                let node = &mut self.core.nodes[src];
                node.state = CsmaState::WaitAck;
                node.gen += 1;
                let gen = node.gen;
                let timing = PhyTiming::for_width(tx.channel.width());
                let deadline = now + timing.sifs() + timing.ack_duration() + timing.slot();
                self.core.schedule_ack(src, deadline, gen);
            } else {
                // Broadcast: done on first transmission. The queue is
                // empty only if the behaviour cleared it while the frame
                // was on the air — nothing left to report then.
                let node = &mut self.core.nodes[src];
                let frame = node.queue.pop_front();
                node.state = CsmaState::Idle;
                self.core.plan(src);
                if let Some(frame) = frame {
                    self.dispatch(src, |b, ctx| b.on_send_result(&frame, true, ctx));
                }
            }
        }

        // --- Medium possibly idle: re-plan waiting nodes -----------------
        // (Kept as a plain field sweep: two loads per node, and restricting
        // it to provably affected nodes buys little for the added proof
        // burden — the expensive per-node work was the scans above.)
        for m in 0..self.core.nodes.len() {
            if self.core.nodes[m].wants_tx && self.core.nodes[m].state == CsmaState::Idle {
                self.core.plan(m);
            }
        }
    }
}

impl Drop for Simulator {
    fn drop(&mut self) {
        let c = self.core.counters;
        GLOBAL_SCHEDULED.fetch_add(c.scheduled, Ordering::Relaxed);
        GLOBAL_HANDLED.fetch_add(c.handled, Ordering::Relaxed);
        GLOBAL_STALE_TENTATIVE.fetch_add(c.stale_tentative, Ordering::Relaxed);
        GLOBAL_STALE_ACK.fetch_add(c.stale_ack_timeout, Ordering::Relaxed);
        GLOBAL_LAZY_ELIDED.fetch_add(c.lazy_elided, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_spectrum::Width;

    /// Sends `count` data frames to `dst` back-to-back.
    struct Blaster {
        dst: NodeId,
        bytes: usize,
        remaining: usize,
    }

    impl Behavior for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let n = self.remaining.min(2);
            for _ in 0..n {
                self.remaining -= 1;
                ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
            }
        }
        fn on_send_result(&mut self, _f: &Frame, _ok: bool, ctx: &mut Ctx) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
            }
        }
    }

    /// Does nothing (a pure receiver).
    struct Sink;
    impl Behavior for Sink {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
    }

    fn ch(center: usize, w: Width) -> WfChannel {
        WfChannel::from_parts(center, w)
    }

    #[test]
    fn single_flow_delivers_all_frames() {
        let mut sim = Simulator::new(1);
        let c = ch(10, Width::W20);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let _tx = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: 0,
                bytes: 1000,
                remaining: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let s = sim.stats(rx);
        assert_eq!(s.rx_data_frames, 50);
        assert_eq!(s.rx_data_bytes, 50_000);
        assert_eq!(sim.stats(1).tx_acked_frames, 50);
        assert_eq!(sim.stats(1).tx_failures, 0);
    }

    /// The derived cut lookahead is a *sound* lower bound: a saturated
    /// data/ACK exchange at the narrowest-SIFS width (W20) runs clean
    /// with the assert armed at exactly `cut_lookahead()`.
    #[test]
    fn cut_lookahead_is_a_sound_lower_bound() {
        let mut sim = Simulator::new(1);
        sim.set_min_tx_lookahead(Some(crate::boundary::cut_lookahead()));
        let c = ch(10, Width::W20);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let _tx = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: 0,
                bytes: 1000,
                remaining: 50,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.stats(rx).rx_data_frames, 50);
    }

    /// …and a *tight* one: the ACK a W20 receiver schedules fires
    /// exactly one W20 SIFS after the data frame, so arming the assert
    /// even one nanosecond above `cut_lookahead()` must trip it. Any
    /// engine change that introduces a faster cross-node reaction shows
    /// up as this pair of tests flipping.
    #[test]
    #[should_panic(expected = "lookahead")]
    fn any_smaller_cross_shard_latency_fails_the_assert() {
        let mut sim = Simulator::new(1);
        sim.set_min_tx_lookahead(Some(
            crate::boundary::cut_lookahead() + SimDuration::from_nanos(1),
        ));
        let c = ch(10, Width::W20);
        let _rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let _tx = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: 0,
                bytes: 1000,
                remaining: 1,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn width_mismatch_drops_everything() {
        // Receiver tuned to a different width on the same centre: the
        // paper's "explicitly drop packets that were sent at a different
        // channel width".
        let mut sim = Simulator::new(1);
        let rx = sim.add_node(NodeConfig::on_channel(ch(10, Width::W10)), Box::new(Sink));
        let tx = sim.add_node(
            NodeConfig::on_channel(ch(10, Width::W20)),
            Box::new(Blaster {
                dst: 0,
                bytes: 500,
                remaining: 5,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.stats(rx).rx_data_frames, 0);
        // Sender exhausts retries on every frame.
        assert_eq!(sim.stats(tx).tx_acked_frames, 0);
        assert_eq!(sim.stats(tx).tx_failures, 5);
    }

    #[test]
    fn center_mismatch_drops_everything() {
        let mut sim = Simulator::new(1);
        let rx = sim.add_node(NodeConfig::on_channel(ch(11, Width::W20)), Box::new(Sink));
        let _tx = sim.add_node(
            NodeConfig::on_channel(ch(10, Width::W20)),
            Box::new(Blaster {
                dst: 0,
                bytes: 500,
                remaining: 5,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats(rx).rx_data_frames, 0);
    }

    #[test]
    fn out_of_range_not_delivered() {
        let mut sim = Simulator::new(1);
        let c = ch(10, Width::W20);
        let mut far = NodeConfig::on_channel(c);
        far.pos = (5000.0, 0.0);
        far.range = 100.0;
        let rx = sim.add_node(far, Box::new(Sink));
        let mut near = NodeConfig::on_channel(c);
        near.range = 100.0;
        let _tx = sim.add_node(
            near,
            Box::new(Blaster {
                dst: 0,
                bytes: 500,
                remaining: 5,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats(rx).rx_data_frames, 0);
    }

    #[test]
    fn two_flows_share_a_channel() {
        // Two saturating flows on one channel: CSMA shares the medium and
        // both make progress with roughly equal goodput.
        let mut sim = Simulator::new(7);
        let c = ch(10, Width::W20);
        let rx0 = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let rx1 = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let _t0 = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: rx0,
                bytes: 1000,
                remaining: 100_000,
            }),
        );
        let _t1 = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: rx1,
                bytes: 1000,
                remaining: 100_000,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let g0 = sim.stats(rx0).rx_data_bytes as f64;
        let g1 = sim.stats(rx1).rx_data_bytes as f64;
        assert!(g0 > 0.0 && g1 > 0.0);
        let ratio = g0.max(g1) / g0.min(g1);
        assert!(ratio < 1.5, "unfair split: {g0} vs {g1}");
        // Combined goodput below channel capacity but well above half.
        let total_mbps = (g0 + g1) * 8.0 / 2.0 / 1e6;
        assert!(total_mbps > 3.0 && total_mbps < 6.0, "total {total_mbps}");
    }

    #[test]
    fn saturated_20mhz_goodput_near_rate() {
        let mut sim = Simulator::new(3);
        let c = ch(10, Width::W20);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let _tx = sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: rx,
                bytes: 1400,
                remaining: 1_000_000,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let mbps = sim.stats(rx).rx_goodput_mbps(SimDuration::from_secs(2));
        // 6 Mbps PHY minus DIFS/backoff/ACK overhead: expect ~4.5–5.5.
        assert!(mbps > 4.0 && mbps < 6.0, "goodput {mbps}");
    }

    #[test]
    fn goodput_scales_with_width() {
        let run = |w: Width| {
            let mut sim = Simulator::new(3);
            let c = ch(10, w);
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            let _tx = sim.add_node(
                NodeConfig::on_channel(c),
                Box::new(Blaster {
                    dst: rx,
                    bytes: 1400,
                    remaining: 1_000_000,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            sim.stats(rx).rx_goodput_mbps(SimDuration::from_secs(2))
        };
        let g20 = run(Width::W20);
        let g10 = run(Width::W10);
        let g5 = run(Width::W5);
        assert!(g20 > 1.8 * g10 && g20 < 2.2 * g10, "g20 {g20} g10 {g10}");
        assert!(g10 > 1.8 * g5 && g10 < 2.2 * g5, "g10 {g10} g5 {g5}");
    }

    #[test]
    fn cross_width_contention_shares_overlapping_spectrum() {
        // A 20 MHz flow spanning channels 8..=12 and a 5 MHz flow on
        // channel 12 contend (carrier sense across widths): both make
        // progress, neither gets its isolated-channel goodput.
        let solo5 = {
            let mut sim = Simulator::new(5);
            let c5 = ch(12, Width::W5);
            let rx = sim.add_node(NodeConfig::on_channel(c5), Box::new(Sink));
            sim.add_node(
                NodeConfig::on_channel(c5),
                Box::new(Blaster {
                    dst: rx,
                    bytes: 1000,
                    remaining: 1_000_000,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            sim.stats(rx).rx_data_bytes
        };
        let mut sim = Simulator::new(5);
        let c20 = ch(10, Width::W20);
        let c5 = ch(12, Width::W5);
        let rx20 = sim.add_node(NodeConfig::on_channel(c20), Box::new(Sink));
        let rx5 = sim.add_node(NodeConfig::on_channel(c5), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(c20),
            Box::new(Blaster {
                dst: rx20,
                bytes: 1000,
                remaining: 1_000_000,
            }),
        );
        sim.add_node(
            NodeConfig::on_channel(c5),
            Box::new(Blaster {
                dst: rx5,
                bytes: 1000,
                remaining: 1_000_000,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let b20 = sim.stats(rx20).rx_data_bytes;
        let b5 = sim.stats(rx5).rx_data_bytes;
        assert!(b20 > 0 && b5 > 0, "both flows must progress: {b20} {b5}");
        // Bounded deviation test: the exact discount depends on how the
        // backoff draws interleave (uniform W5-slot contention), and has
        // measured between ~0.65 and ~0.81 of solo across RNG backends.
        // The invariant pinned here is two-sided: cross-width carrier
        // sense must cost the narrow flow real airtime, but must not
        // starve it (see the known-failure triage note in ROADMAP.md).
        assert!(
            (b5 as f64) < 0.85 * solo5 as f64,
            "5 MHz flow must lose goodput to contention: {b5} vs solo {solo5}"
        );
        assert!(
            (b5 as f64) > 0.4 * solo5 as f64,
            "5 MHz flow must not be starved by contention: {b5} vs solo {solo5}"
        );
    }

    #[test]
    fn non_overlapping_channels_do_not_contend() {
        let mut sim = Simulator::new(9);
        let a = ch(2, Width::W5);
        let b = ch(20, Width::W5);
        let rxa = sim.add_node(NodeConfig::on_channel(a), Box::new(Sink));
        let rxb = sim.add_node(NodeConfig::on_channel(b), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(a),
            Box::new(Blaster {
                dst: rxa,
                bytes: 1000,
                remaining: 1_000_000,
            }),
        );
        sim.add_node(
            NodeConfig::on_channel(b),
            Box::new(Blaster {
                dst: rxb,
                bytes: 1000,
                remaining: 1_000_000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let ga = sim.stats(rxa).rx_data_bytes as f64;
        let gb = sim.stats(rxb).rx_data_bytes as f64;
        // Both get full single-flow goodput (within 10% of each other).
        assert!((ga / gb - 1.0).abs() < 0.1, "{ga} vs {gb}");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let c = ch(10, Width::W20);
            let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
            sim.add_node(
                NodeConfig::on_channel(c),
                Box::new(Blaster {
                    dst: rx,
                    bytes: 777,
                    remaining: 1_000,
                }),
            );
            sim.run_until(SimTime::from_millis(700));
            sim.stats(rx)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).rx_data_frames, 0);
    }

    #[test]
    fn incumbent_change_callback_fires() {
        use whitefi_spectrum::{MicActivity, MicSchedule, WirelessMic};

        struct Watcher {
            changes: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, bool)>>>,
        }
        impl Behavior for Watcher {
            fn on_start(&mut self, _ctx: &mut Ctx) {}
            fn on_incumbent_change(&mut self, map: SpectrumMap, ctx: &mut Ctx) {
                self.changes
                    .borrow_mut()
                    .push((ctx.now(), map.is_occupied(UhfChannel::from_index(9))));
            }
        }

        let changes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut inc = IncumbentSet::default();
        inc.mics.push(WirelessMic::new(
            UhfChannel::from_index(9),
            MicSchedule::scripted(vec![MicActivity {
                start: SimTime::from_secs(1).as_nanos(),
                end: SimTime::from_secs(2).as_nanos(),
            }]),
        ));
        let mut sim = Simulator::new(1);
        let cfg = NodeConfig::on_channel(ch(9, Width::W5)).with_incumbents(inc);
        sim.add_node(
            cfg,
            Box::new(Watcher {
                changes: changes.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(3));
        let log = changes.borrow();
        assert_eq!(log.len(), 2, "{log:?}");
        // Mic on at 1 s, detected 50 ms later.
        assert_eq!(log[0].0, SimTime::from_millis(1050));
        assert!(log[0].1);
        assert_eq!(log[1].0, SimTime::from_millis(2050));
        assert!(!log[1].1);
    }

    #[test]
    fn incumbent_violation_counted() {
        use whitefi_spectrum::{MicActivity, MicSchedule, WirelessMic};
        // A node that ignores the mic and keeps transmitting over it.
        let mut inc = IncumbentSet::default();
        inc.mics.push(WirelessMic::new(
            UhfChannel::from_index(10),
            MicSchedule::scripted(vec![MicActivity {
                start: 0,
                end: SimTime::from_secs(10).as_nanos(),
            }]),
        ));
        let mut sim = Simulator::new(1);
        let c = ch(10, Width::W20);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let tx = sim.add_node(
            NodeConfig::on_channel(c).with_incumbents(inc),
            Box::new(Blaster {
                dst: rx,
                bytes: 500,
                remaining: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.stats(tx).incumbent_violations > 0);
        // The oblivious receiver transmitted ACKs but has no mic nearby,
        // so it records no violations.
        assert_eq!(sim.stats(rx).incumbent_violations, 0);
    }

    #[test]
    fn timer_and_channel_switch() {
        struct Hopper {
            target: WfChannel,
        }
        impl Behavior for Hopper {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
            }
            fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
                assert_eq!(key, 1);
                ctx.set_channel(self.target);
            }
        }
        let mut sim = Simulator::new(1);
        let c0 = ch(5, Width::W5);
        let c1 = ch(20, Width::W10);
        let n = sim.add_node(NodeConfig::on_channel(c0), Box::new(Hopper { target: c1 }));
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(sim.node_channel(n), c0);
        sim.run_until(SimTime::from_millis(6));
        assert_eq!(sim.node_channel(n), c1);
    }

    #[test]
    fn channel_index_matches_full_scan() {
        struct Hop {
            target: WfChannel,
        }
        impl Behavior for Hop {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(SimDuration::from_millis(1), 7);
            }
            fn on_timer(&mut self, _key: u64, ctx: &mut Ctx) {
                ctx.set_channel(self.target);
            }
        }
        let mut sim = Simulator::new(4);
        let a = ch(10, Width::W20);
        let b = ch(12, Width::W5);
        sim.add_node(NodeConfig::on_channel(a), Box::new(Sink));
        sim.add_node(NodeConfig::on_channel(b), Box::new(Sink));
        sim.add_node(NodeConfig::on_channel(a), Box::new(Hop { target: b }));
        sim.add_node(NodeConfig::on_channel(a), Box::new(Sink));
        // Before and after the retune, the index must equal a full scan
        // over current node channels, in ascending id order.
        for _ in 0..2 {
            for chx in [a, b] {
                let scan: Vec<NodeId> = (0..sim.node_count())
                    .filter(|&m| sim.node_channel(m) == chx)
                    .collect();
                assert_eq!(sim.nodes_on_channel(chx), scan.as_slice());
            }
            sim.run_until(sim.now() + SimDuration::from_millis(5));
        }
        assert_eq!(sim.nodes_on_channel(b), [1usize, 2].as_slice());
    }

    #[test]
    fn event_counters_track_traffic() {
        let mut sim = Simulator::new(1);
        let c = ch(10, Width::W20);
        let rx = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(c),
            Box::new(Blaster {
                dst: rx,
                bytes: 1000,
                remaining: 20,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let ev = sim.event_counters();
        assert!(ev.handled > 0);
        // Every pop reuses a key from exactly one logical schedule, so
        // pops can never outnumber schedules.
        assert!(ev.scheduled >= ev.handled);
        assert_eq!(sim.stats(rx).rx_data_frames, 20);
    }

    #[test]
    fn broadcast_reaches_all_same_channel_nodes() {
        struct OneShotBroadcast;
        impl Behavior for OneShotBroadcast {
            fn on_start(&mut self, ctx: &mut Ctx) {
                let src = ctx.id();
                ctx.send(Frame {
                    src,
                    dst: None,
                    kind: FrameKind::Beacon { backup: None },
                });
            }
        }
        let mut sim = Simulator::new(1);
        let c = ch(10, Width::W20);
        let r0 = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let r1 = sim.add_node(NodeConfig::on_channel(c), Box::new(Sink));
        let r2 = sim.add_node(NodeConfig::on_channel(ch(3, Width::W5)), Box::new(Sink));
        sim.add_node(NodeConfig::on_channel(c).ap(), Box::new(OneShotBroadcast));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.stats(r0).rx_broadcast_frames, 1);
        assert_eq!(sim.stats(r1).rx_broadcast_frames, 1);
        assert_eq!(sim.stats(r2).rx_broadcast_frames, 0);
        // The beacon also produced a CTS-to-self on the medium: the AP made
        // two transmission attempts.
        assert_eq!(sim.stats(3).tx_attempts, 2);
    }
}
