//! Traffic-generating behaviours used as foreground and background load.
//!
//! The paper's experiments use three load shapes:
//!
//! * **backlogged** flows ("The AP and clients are backlogged and transmit
//!   UDP flows", §5.4.1) — [`SaturatingSender`];
//! * **constant-bit-rate** background pairs parameterized by inter-packet
//!   delay (0–50 ms sweeps in Figures 10–12) — [`CbrSender`];
//! * **two-state Markov churn** ("we model background nodes using a simple
//!   discrete Markov chain with two states (A=active, P=passive)",
//!   Figure 13) — [`MarkovOnOffSender`];
//!
//! plus the scripted on/off windows of the Figure 14 prototype trace —
//! [`ScriptedCbrSender`].

use crate::frames::{Frame, NodeId};
use crate::sim::{Behavior, Ctx};
use rand::Rng;
use whitefi_phy::{SimDuration, SimTime};

/// Keeps `pipeline` frames in flight forever (a backlogged UDP flow).
#[derive(Debug, Clone)]
pub struct SaturatingSender {
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes per frame.
    pub bytes: usize,
    /// Queue depth to maintain.
    pub pipeline: usize,
}

impl SaturatingSender {
    /// A saturating flow of 1000-byte frames.
    pub fn new(dst: NodeId) -> Self {
        Self {
            dst,
            bytes: 1000,
            pipeline: 2,
        }
    }
}

impl Behavior for SaturatingSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for _ in 0..self.pipeline {
            ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
        }
    }
    fn on_send_result(&mut self, _frame: &Frame, _success: bool, ctx: &mut Ctx) {
        while ctx.queue_len() < self.pipeline {
            ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
        }
    }
}

/// Constant-bit-rate sender: one frame every `interval`.
#[derive(Debug, Clone)]
pub struct CbrSender {
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes per frame.
    pub bytes: usize,
    /// Inter-packet interval (the paper's "inter-packet delay").
    pub interval: SimDuration,
}

impl CbrSender {
    /// A CBR flow of 1000-byte frames at the given inter-packet delay.
    pub fn new(dst: NodeId, interval: SimDuration) -> Self {
        Self {
            dst,
            bytes: 1000,
            interval,
        }
    }
}

impl Behavior for CbrSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // Desynchronise CBR sources with a random initial phase.
        let phase = ctx.rng().gen_range(0..self.interval.as_nanos().max(1));
        ctx.set_timer(SimDuration::from_nanos(phase), 0);
    }
    fn on_timer(&mut self, _key: u64, ctx: &mut Ctx) {
        // A generous bound: an overloaded CBR source keeps contending
        // (its queue backlogs, as a UDP socket buffer would) but memory
        // stays bounded on very long runs.
        if ctx.queue_len() < 64 {
            ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
        }
        ctx.set_timer(self.interval, 0);
    }
}

/// Two-state (Active/Passive) Markov CBR sender for the churn experiment.
///
/// In state A the node sends CBR traffic at `interval`; in state P it is
/// silent. State dwell times are exponential with the given means, giving
/// the `(likelihood, average duration)` sweep of Figure 13's x-axis.
#[derive(Debug, Clone)]
pub struct MarkovOnOffSender {
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes per frame.
    pub bytes: usize,
    /// CBR interval while active.
    pub interval: SimDuration,
    /// Mean dwell time in the active state.
    pub mean_active: SimDuration,
    /// Mean dwell time in the passive state.
    pub mean_passive: SimDuration,
    active: bool,
    epoch: u64,
}

impl MarkovOnOffSender {
    /// Creates a churn source (starts passive).
    pub fn new(
        dst: NodeId,
        interval: SimDuration,
        mean_active: SimDuration,
        mean_passive: SimDuration,
    ) -> Self {
        Self {
            dst,
            bytes: 1000,
            interval,
            mean_active,
            mean_passive,
            active: false,
            epoch: 0,
        }
    }

    // The draw is positive (u < 1 so ln(u) < 0) and truncating the
    // sub-nanosecond remainder is the intended quantization.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn exp_sample(mean: SimDuration, rng: &mut impl Rng) -> SimDuration {
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_nanos((-(mean.as_nanos() as f64) * u.ln()) as u64)
    }
}

/// Timer keys: low bit selects CBR tick (0) vs state flip (1); upper bits
/// carry the epoch so stale CBR ticks from a previous active period are
/// ignored.
const KEY_TICK: u64 = 0;
const KEY_FLIP: u64 = 1;

impl Behavior for MarkovOnOffSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // An always-passive source (mean_active == 0) never starts.
        if self.mean_active == SimDuration::ZERO {
            return;
        }
        // An always-active source (mean_passive == 0) starts immediately.
        let dwell = Self::exp_sample(self.mean_passive, ctx.rng());
        ctx.set_timer(dwell, KEY_FLIP);
    }

    fn on_timer(&mut self, key: u64, ctx: &mut Ctx) {
        let kind = key & 1;
        let epoch = key >> 1;
        if kind == KEY_FLIP {
            self.active = !self.active;
            self.epoch += 1;
            if self.active {
                // Kick off CBR ticks for this epoch.
                ctx.set_timer(SimDuration::ZERO, (self.epoch << 1) | KEY_TICK);
                let dwell = Self::exp_sample(self.mean_active, ctx.rng());
                if self.mean_passive > SimDuration::ZERO {
                    ctx.set_timer(dwell, KEY_FLIP);
                }
            } else {
                let dwell = Self::exp_sample(self.mean_passive, ctx.rng());
                ctx.set_timer(dwell, KEY_FLIP);
            }
        } else if self.active && epoch == self.epoch {
            if ctx.queue_len() < 64 {
                ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
            }
            ctx.set_timer(self.interval, (self.epoch << 1) | KEY_TICK);
        }
    }
}

/// CBR sender active only during scripted windows — used for the
/// Figure 14 prototype timeline ("at time 50 seconds, we introduce
/// background traffic on channels 26 through 29 …").
#[derive(Debug, Clone)]
pub struct ScriptedCbrSender {
    /// Destination node.
    pub dst: NodeId,
    /// Payload bytes per frame.
    pub bytes: usize,
    /// CBR interval while a window is open.
    pub interval: SimDuration,
    /// Active windows `(start, end)`, sorted, non-overlapping.
    pub windows: Vec<(SimTime, SimTime)>,
}

impl ScriptedCbrSender {
    /// Creates a scripted source.
    pub fn new(dst: NodeId, interval: SimDuration, windows: Vec<(SimTime, SimTime)>) -> Self {
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0, "windows must be sorted/non-overlapping");
        }
        Self {
            dst,
            bytes: 1000,
            interval,
            windows,
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        self.windows.iter().any(|&(s, e)| t >= s && t < e)
    }

    fn next_window_start(&self, t: SimTime) -> Option<SimTime> {
        self.windows.iter().map(|&(s, _)| s).find(|&s| s > t)
    }
}

impl Behavior for ScriptedCbrSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        if self.in_window(now) {
            ctx.set_timer(SimDuration::ZERO, 0);
        } else if let Some(s) = self.next_window_start(now) {
            ctx.set_timer(s.since(now), 0);
        }
    }
    fn on_timer(&mut self, _key: u64, ctx: &mut Ctx) {
        let now = ctx.now();
        if self.in_window(now) {
            if ctx.queue_len() < 64 {
                ctx.send(Frame::data(ctx.id(), self.dst, self.bytes));
            }
            ctx.set_timer(self.interval, 0);
        } else if let Some(s) = self.next_window_start(now) {
            ctx.set_timer(s.since(now), 0);
        }
    }
}

/// A behaviour that does nothing (a pure receiver / sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sink;

impl Behavior for Sink {
    fn on_start(&mut self, _ctx: &mut Ctx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{NodeConfig, Simulator};
    use whitefi_spectrum::{WfChannel, Width};

    fn ch() -> WfChannel {
        WfChannel::from_parts(10, Width::W20)
    }

    #[test]
    fn cbr_rate_matches_interval() {
        let mut sim = Simulator::new(1);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(CbrSender::new(rx, SimDuration::from_millis(10))),
        );
        sim.run_until(SimTime::from_secs(5));
        let frames = sim.stats(rx).rx_data_frames;
        // ~500 frames expected (±2% for the random phase).
        assert!((485..=502).contains(&frames), "{frames}");
    }

    #[test]
    fn saturating_sender_fills_channel() {
        let mut sim = Simulator::new(1);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(SaturatingSender::new(rx)),
        );
        sim.run_until(SimTime::from_secs(1));
        let mbps = sim.stats(rx).rx_goodput_mbps(SimDuration::from_secs(1));
        assert!(mbps > 4.0, "saturating goodput {mbps}");
    }

    #[test]
    fn markov_extremes() {
        // Always passive: no traffic.
        let mut sim = Simulator::new(2);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(MarkovOnOffSender {
                mean_active: SimDuration::ZERO,
                ..MarkovOnOffSender::new(
                    rx,
                    SimDuration::from_millis(10),
                    SimDuration::ZERO,
                    SimDuration::from_secs(1),
                )
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.stats(rx).rx_data_frames, 0);

        // Always active: close to pure CBR.
        let mut sim = Simulator::new(2);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(MarkovOnOffSender::new(
                rx,
                SimDuration::from_millis(10),
                SimDuration::from_secs(3600),
                SimDuration::ZERO,
            )),
        );
        sim.run_until(SimTime::from_secs(5));
        let frames = sim.stats(rx).rx_data_frames;
        assert!(frames > 480, "always-active Markov sent {frames}");
    }

    #[test]
    fn markov_half_duty_cycle() {
        let mut sim = Simulator::new(3);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(MarkovOnOffSender::new(
                rx,
                SimDuration::from_millis(10),
                SimDuration::from_secs(2),
                SimDuration::from_secs(2),
            )),
        );
        sim.run_until(SimTime::from_secs(60));
        let frames = sim.stats(rx).rx_data_frames as f64;
        let expect = 60.0 / 0.010 / 2.0; // half duty cycle
        assert!(
            (frames / expect - 1.0).abs() < 0.35,
            "frames {frames} vs expectation {expect}"
        );
    }

    #[test]
    fn scripted_windows_respected() {
        let mut sim = Simulator::new(4);
        let rx = sim.add_node(NodeConfig::on_channel(ch()), Box::new(Sink));
        sim.add_node(
            NodeConfig::on_channel(ch()),
            Box::new(ScriptedCbrSender::new(
                rx,
                SimDuration::from_millis(10),
                vec![
                    (SimTime::from_secs(1), SimTime::from_secs(2)),
                    (SimTime::from_secs(4), SimTime::from_secs(5)),
                ],
            )),
        );
        // Nothing before the first window.
        sim.run_until(SimTime::from_millis(999));
        assert_eq!(sim.stats(rx).rx_data_frames, 0);
        // First window delivers ~100 frames.
        sim.run_until(SimTime::from_secs(3));
        let after_first = sim.stats(rx).rx_data_frames;
        assert!((95..=105).contains(&after_first), "{after_first}");
        // Gap is silent.
        sim.run_until(SimTime::from_millis(3_999));
        assert_eq!(sim.stats(rx).rx_data_frames, after_first);
        // Second window delivers another ~100.
        sim.run_until(SimTime::from_secs(6));
        let total = sim.stats(rx).rx_data_frames;
        assert!((190..=210).contains(&total), "{total}");
    }

    #[test]
    #[should_panic(expected = "sorted/non-overlapping")]
    fn scripted_rejects_overlap() {
        ScriptedCbrSender::new(
            0,
            SimDuration::from_millis(10),
            vec![
                (SimTime::from_secs(1), SimTime::from_secs(3)),
                (SimTime::from_secs(2), SimTime::from_secs(4)),
            ],
        );
    }
}
