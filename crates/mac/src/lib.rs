//! Discrete-event CSMA/CA simulator over fragmented, variable-width UHF
//! spectrum — the reproduction's substitute for the paper's modified
//! QualNet 4.5 (§5.4).
//!
//! The paper lists four modifications it made to QualNet; all four are
//! native behaviours of this simulator:
//!
//! 1. **Variable channel widths**: OFDM symbol period and every MAC
//!    parameter (SIFS, slot, DIFS) scale with channel width via
//!    [`whitefi_phy::PhyTiming`].
//! 2. **Width/centre mismatch drops**: "at every node, we explicitly drop
//!    packets that were sent at a different channel width" — a frame is
//!    deliverable only to nodes tuned to the exact same `(F, W)`.
//! 3. **Cross-width carrier sensing**: "a node spanning multiple UHF
//!    channels will transmit a packet only if no carrier is sensed on any
//!    of those channels" — carrier sense tests span intersection, not
//!    channel equality.
//! 4. **Fragmented spectrum**: every node carries its own spectrum map
//!    and incumbent set.
//!
//! Architecture (event-driven, deterministic, seeded):
//!
//! * [`sim::Simulator`] owns the event queue, the [`medium::Medium`], the
//!   per-node MAC state and boxed [`sim::Behavior`] implementations;
//! * behaviours receive callbacks (frames, timers, send results,
//!   incumbent changes) and act through [`sim::Ctx`] (send frames, set
//!   timers, retune the radio, query airtime);
//! * [`traffic`] ships the generic senders used as background load in the
//!   paper's experiments (saturating, CBR, two-state Markov churn,
//!   scripted on/off).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod boundary;
pub mod faults;
pub mod frames;
pub mod interference;
pub mod medium;
#[cfg(not(loom))]
pub mod model;
pub mod msync;
pub mod sim;
pub mod stats;
pub mod trace;
pub mod traffic;

pub use analysis::{bianchi_saturation_goodput_mbps, bianchi_tau, single_flow_goodput_mbps};
pub use boundary::{cut_lookahead, BorderActivity, BoundaryBus, CutContact};
pub use faults::{FaultDecision, FaultEvent, FaultEventKind, FaultPlan, FaultStats};
pub use frames::{Frame, FrameKind, NodeId};
pub use interference::{
    influence_closure, influences, potential_influences, potential_influences_directed,
    shard_components, NodeSite, ShardSite,
};
pub use medium::{Medium, Transmission};
pub use sim::{
    global_event_totals, Behavior, Ctx, EventCounters, NodeConfig, SimObserver, Simulator,
};
pub use stats::NodeStats;
pub use trace::{export as export_trace, export_recent, render_tcpdump, TraceRecord};
pub use traffic::{CbrSender, MarkovOnOffSender, SaturatingSender, ScriptedCbrSender};
