//! Scenario construction and measurement for the paper's evaluation.
//!
//! §5.4's large-scale simulations share one shape: "We place one AP in
//! the middle of an area, and randomly distribute clients as well as
//! background AP/client-pairs within transmission range of this AP …
//! The AP and clients are backlogged and transmit UDP flows (up- and
//! downstream). Background nodes transmit constant-bit-rate (CBR) traffic
//! at a pre-specified intensity." A [`Scenario`] captures that shape; the
//! runners measure per-client throughput after a warmup:
//!
//! * [`run_whitefi`] — the adaptive WhiteFi network;
//! * [`run_fixed`] — the same network pinned to one channel (used for the
//!   OPT-5/10/20 MHz static baselines and the omniscient OPT), with
//!   background pairs that provably cannot interact with the foreground
//!   spectrally sliced out of the simulation (DESIGN.md §9);
//! * [`StaticBaselines::measure`] — sweeps every admissible channel to
//!   produce all four baselines of Figures 11–13;
//! * [`measure_airtime`] — a background-only run that yields the airtime
//!   vector a WhiteFi scanner would measure (the Figure 10
//!   microbenchmark's MCham input).
//!
//! Every node gets an explicit RNG stream id derived from its *role*
//! (AP, i-th client, k-th background pair), not its insertion order, so
//! a pruned build draws exactly the random sequences the unpruned build
//! would — the foundation of the pruned == unpruned equality contract.

use crate::ap::{ApBehavior, ApConfig};
use crate::client::{ClientBehavior, ClientConfig};
use crate::mcham::NodeReport;
use crate::oracles::{OracleBank, OracleConfig, OracleReport};
use serde::{Deserialize, Serialize};
use whitefi_mac::traffic::Sink;
use whitefi_mac::{
    influence_closure, CbrSender, FaultPlan, MarkovOnOffSender, NodeConfig, NodeId, NodeSite,
    ScriptedCbrSender, Simulator,
};
use whitefi_phy::{SimDuration, SimTime};
use whitefi_spectrum::{
    AirtimeVector, ChannelLoad, IncumbentSet, SpectrumMap, TvStation, UhfChannel, WfChannel, Width,
};

/// Load shape of one background AP/client pair.
#[derive(Debug, Clone, PartialEq)]
pub enum BackgroundTraffic {
    /// CBR at the given inter-packet delay.
    Cbr {
        /// Inter-packet delay.
        interval: SimDuration,
    },
    /// Two-state Markov churn (Figure 13).
    Markov {
        /// CBR interval while active.
        interval: SimDuration,
        /// Mean active dwell.
        mean_active: SimDuration,
        /// Mean passive dwell.
        mean_passive: SimDuration,
    },
    /// CBR only inside scripted windows (Figure 14).
    Scripted {
        /// CBR interval while a window is open.
        interval: SimDuration,
        /// Active windows.
        windows: Vec<(SimTime, SimTime)>,
    },
}

/// One background AP/client pair on a fixed channel.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundPair {
    /// The pair's (fixed) channel.
    pub channel: WfChannel,
    /// Its load shape.
    pub traffic: BackgroundTraffic,
}

/// A complete experiment scenario. `PartialEq` is exact: the
/// scenario-file round-trip tests assert compiled and hand-coded
/// scenarios are equal field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// RNG seed (placement and MAC backoffs).
    pub seed: u64,
    /// Incumbent occupancy observed at the AP.
    pub ap_map: SpectrumMap,
    /// Incumbent occupancy observed at each client (length = number of
    /// clients).
    pub client_maps: Vec<SpectrumMap>,
    /// Extra incumbents at the AP beyond the static map (e.g. scripted
    /// mic schedules).
    pub ap_extra_incumbents: Option<IncumbentSet>,
    /// Extra incumbents per client.
    pub client_extra_incumbents: Vec<Option<IncumbentSet>>,
    /// Background pairs.
    pub background: Vec<BackgroundPair>,
    /// Downlink payload bytes (backlogged).
    pub downlink_bytes: usize,
    /// Uplink payload bytes (backlogged); `None` disables uplink.
    pub uplink_bytes: Option<usize>,
    /// Measurement duration (after warmup).
    pub duration: SimDuration,
    /// Warmup before stats are reset.
    pub warmup: SimDuration,
    /// Timeline sampling period.
    pub sample_interval: SimDuration,
    /// AP protocol configuration template (traffic fields are overridden
    /// from the scenario).
    pub ap_config: ApConfig,
    /// Deterministic fault plan injected at the medium boundary
    /// (`None` = the fault layer is bypassed entirely and the run is
    /// byte-identical to a pre-fault-layer build — DESIGN.md §10).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// A scenario with the given shared spectrum map and client count,
    /// backlogged in both directions, 5 s measurement after 2 s warmup.
    pub fn new(seed: u64, map: SpectrumMap, n_clients: usize) -> Self {
        Self {
            seed,
            ap_map: map,
            client_maps: vec![map; n_clients],
            ap_extra_incumbents: None,
            client_extra_incumbents: vec![None; n_clients],
            background: Vec::new(),
            downlink_bytes: 1000,
            uplink_bytes: Some(500),
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(2),
            sample_interval: SimDuration::from_millis(100),
            ap_config: ApConfig::default(),
            faults: None,
        }
    }

    /// The union of the AP's and all clients' static maps — the candidate
    /// universe of the assignment algorithm.
    pub fn combined_map(&self) -> SpectrumMap {
        SpectrumMap::union_all(std::iter::once(self.ap_map).chain(self.client_maps.iter().copied()))
    }

    pub(crate) fn incumbents_for(map: SpectrumMap, extra: Option<&IncumbentSet>) -> IncumbentSet {
        let mut set = extra.cloned().unwrap_or_default();
        for ch in map.occupied_channels() {
            set.tv.push(TvStation::strong(ch));
        }
        set
    }
}

/// One timeline sample of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample time.
    pub t: SimTime,
    /// The channel the AP was tuned to.
    pub ap_channel: WfChannel,
    /// Application bytes moved (down + up) since the previous sample.
    pub bytes_delta: u64,
}

/// Measured outcome of a run. `PartialEq` is exact (bit-level float
/// equality) on purpose: the pruning differential tests assert pruned
/// and unpruned fixed runs agree *exactly*, not approximately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Per-client goodput (downlink received + uplink acknowledged) in
    /// Mbps over the measurement window.
    pub per_client_mbps: Vec<f64>,
    /// Sum of per-client goodputs.
    pub aggregate_mbps: f64,
    /// Channel/goodput timeline at the scenario's sampling period.
    pub samples: Vec<Sample>,
    /// Total incumbent violations across all WhiteFi nodes (must be 0
    /// for a correct protocol run).
    pub violations: u64,
    /// The always-on invariant oracles' verdict (DESIGN.md §10). Like
    /// every other field it derives from foreground state only, so the
    /// exact pruned == unpruned equality covers it too.
    pub oracle: OracleReport,
}

impl ScenarioOutcome {
    /// Mean per-client goodput.
    pub fn mean_client_mbps(&self) -> f64 {
        if self.per_client_mbps.is_empty() {
            return 0.0;
        }
        self.per_client_mbps.iter().sum::<f64>() / self.per_client_mbps.len() as f64
    }
}

struct BuiltNetwork {
    sim: Simulator,
    ap: NodeId,
    clients: Vec<NodeId>,
    oracle: OracleBank,
}

/// Builds the network. `keep_background` (`None` = keep all) is a mask
/// over the scenario's background pairs; skipped pairs are not added to
/// the simulation at all. RNG stream ids are assigned by role — AP `0`,
/// client `i` `1 + i`, pair `k` `FG + 2k` (rx) / `FG + 2k + 1` (tx)
/// with `FG = 1 + n_clients` — so they are invariant under pruning.
fn build(
    scenario: &Scenario,
    initial: WfChannel,
    adaptive: bool,
    keep_background: Option<&[bool]>,
) -> BuiltNetwork {
    let mut sim = Simulator::new(scenario.seed);
    if !adaptive {
        // Fixed-channel runs issue no scanner queries (SCAN/BACKUP_SCAN
        // timers are disabled below), so the only history consumer left
        // is the carrier-sense interferer check, which never looks back
        // further than one frame duration (≲ 8 ms at W5). 300 ms keeps a
        // wide margin while making trace retention pay-as-you-go.
        sim.medium_mut().history_horizon = SimDuration::from_millis(300);
    }
    // The fault plan must be installed before any node registers (each
    // node's fault RNG stream is drawn at registration) and may itself
    // skew the history horizon, adversarially overriding the above.
    if let Some(plan) = &scenario.faults {
        sim.set_fault_plan(plan.clone());
    }
    let bank = OracleBank::new(OracleConfig {
        adaptive,
        ..OracleConfig::default()
    });

    let mut ap_cfg = scenario.ap_config.clone();
    ap_cfg.adaptive = adaptive;
    ap_cfg.downlink_bytes = Some(scenario.downlink_bytes);
    ap_cfg.downlink_interval = None;

    let ap_incumbents =
        Scenario::incumbents_for(scenario.ap_map, scenario.ap_extra_incumbents.as_ref());
    let ap_node_cfg = NodeConfig::on_channel(initial)
        .ap()
        .in_ssid(1)
        .rng_stream(0) // stream-map: domain=sim-nodes salt=scenario-seed streams=0..=0 role="single-BSS AP"
        .with_incumbents(ap_incumbents.clone());
    let ap_detection = ap_node_cfg.detection_delay;
    let ap = sim.add_node(ap_node_cfg, Box::new(ApBehavior::new(ap_cfg)));
    bank.add_member(
        ap,
        true,
        &ap_incumbents,
        ap_detection + sim.fault_detection_extra(ap),
    );

    let mut clients = Vec::new();
    for (i, &map) in scenario.client_maps.iter().enumerate() {
        let extra = scenario
            .client_extra_incumbents
            .get(i)
            .and_then(|o| o.as_ref());
        let incumbents = Scenario::incumbents_for(map, extra);
        let node_cfg = NodeConfig::on_channel(initial)
            .in_ssid(1)
            .rng_stream(1 + i as u64) // stream-map: domain=sim-nodes salt=scenario-seed streams=1..=65535 role="single-BSS clients (1 + client index)"
            .with_incumbents(incumbents.clone());
        let detection = node_cfg.detection_delay;
        let slot = u8::try_from(i % 16).unwrap_or(0); // i % 16 < 16, always fits
        let mut ccfg = ClientConfig::new(ap, slot);
        if let Some(bytes) = scenario.uplink_bytes {
            ccfg = ccfg.saturating_uplink(bytes);
        }
        // Fixed-channel baselines must not run the disconnection
        // protocol either (they model a dumb static network), and their
        // airtime scanner output is never consulted.
        if !adaptive {
            ccfg.disconnect_timeout = SimDuration::from_secs(1_000_000);
            ccfg.scan_enabled = false;
        }
        let id = sim.add_node(node_cfg, Box::new(ClientBehavior::new(ccfg)));
        bank.add_member(
            id,
            false,
            &incumbents,
            detection + sim.fault_detection_extra(id),
        );
        clients.push(id);
    }

    let fg = 1 + scenario.client_maps.len() as u64;
    for (k, pair) in scenario.background.iter().enumerate() {
        if let Some(mask) = keep_background {
            if !mask[k] {
                continue;
            }
        }
        let rx_cfg = NodeConfig::on_channel(pair.channel).rng_stream(fg + 2 * k as u64); // stream-map: domain=sim-nodes salt=scenario-seed streams=2..=4294967295 role="background pair rx (fg + 2*pair)"
        let rx = sim.add_node(rx_cfg, Box::new(Sink));
        let tx_cfg = NodeConfig::on_channel(pair.channel)
            .ap()
            .rng_stream(fg + 2 * k as u64 + 1); // stream-map: domain=sim-nodes salt=scenario-seed streams=3..=4294967295 role="background pair tx (fg + 2*pair + 1)"
        match &pair.traffic {
            BackgroundTraffic::Cbr { interval } => {
                sim.add_node(tx_cfg, Box::new(CbrSender::new(rx, *interval)));
            }
            BackgroundTraffic::Markov {
                interval,
                mean_active,
                mean_passive,
            } => {
                sim.add_node(
                    tx_cfg,
                    Box::new(MarkovOnOffSender::new(
                        rx,
                        *interval,
                        *mean_active,
                        *mean_passive,
                    )),
                );
            }
            BackgroundTraffic::Scripted { interval, windows } => {
                sim.add_node(
                    tx_cfg,
                    Box::new(ScriptedCbrSender::new(rx, *interval, windows.clone())),
                );
            }
        }
    }

    sim.set_observer(bank.observer());
    BuiltNetwork {
        sim,
        ap,
        clients,
        oracle: bank,
    }
}

fn measure(scenario: &Scenario, net: &mut BuiltNetwork) -> ScenarioOutcome {
    let BuiltNetwork {
        sim,
        ap,
        clients,
        oracle,
    } = net;
    sim.run_until(SimTime::ZERO + scenario.warmup);
    sim.reset_stats();

    let mut samples = Vec::new();
    let mut last_total: u64 = 0;
    let end = scenario.warmup + scenario.duration;
    let mut t = scenario.warmup;
    while t < end {
        t += scenario.sample_interval;
        if t > end {
            t = end;
        }
        sim.run_until(SimTime::ZERO + t);
        let total: u64 = clients
            .iter()
            .map(|&c| sim.stats(c).rx_data_bytes + sim.stats(c).tx_acked_bytes)
            .sum();
        samples.push(Sample {
            t: SimTime::ZERO + t,
            ap_channel: sim.node_channel(*ap),
            bytes_delta: total - last_total,
        });
        last_total = total;
    }

    let span = scenario.duration;
    let per_client_mbps: Vec<f64> = clients
        .iter()
        .map(|&c| {
            let s = sim.stats(c);
            (s.rx_data_bytes + s.tx_acked_bytes) as f64 * 8.0 / span.as_secs_f64() / 1e6
        })
        .collect();
    let aggregate_mbps = per_client_mbps.iter().sum();
    let mut violations = sim.stats(*ap).incumbent_violations;
    for &c in clients.iter() {
        violations += sim.stats(c).incumbent_violations;
    }
    ScenarioOutcome {
        per_client_mbps,
        aggregate_mbps,
        samples,
        violations,
        oracle: oracle.finish(sim),
    }
}

/// Runs the adaptive WhiteFi network. `initial` overrides the bootstrap
/// channel; by default the assignment algorithm's clean-spectrum choice
/// over the combined map is used.
pub fn run_whitefi(scenario: &Scenario, initial: Option<WfChannel>) -> ScenarioOutcome {
    let initial = initial
        .or_else(|| {
            crate::mcham::select_channel(
                &NodeReport {
                    map: scenario.combined_map(),
                    airtime: AirtimeVector::idle(),
                },
                &[],
            )
            .map(|(c, _)| c)
        })
        // lint:allow(unwrap, a scenario whose map admits no channel at all cannot be driven; documented precondition)
        .expect("scenario has no admissible channel");
    let mut net = build(scenario, initial, true, None);
    measure(scenario, &mut net)
}

/// The spectral keep-mask for a fixed run on `channel`: pair `k` is kept
/// iff its nodes can (transitively) influence the foreground AP/clients
/// through channel-span overlap × range — see [`whitefi_mac::interference`].
/// Sites mirror `build` exactly: every driver node uses the default
/// co-located geometry, the foreground on the candidate channel, each
/// pair on its own channel.
fn fixed_keep_mask(scenario: &Scenario, channel: WfChannel) -> Vec<bool> {
    let fg = 1 + scenario.client_maps.len();
    let mut sites: Vec<NodeSite> = Vec::with_capacity(fg + 2 * scenario.background.len());
    sites.resize(fg, NodeSite::on_channel(channel));
    for pair in &scenario.background {
        sites.push(NodeSite::on_channel(pair.channel)); // rx
        sites.push(NodeSite::on_channel(pair.channel)); // tx
    }
    let roots: Vec<usize> = (0..fg).collect();
    let keep = influence_closure(&sites, &roots);
    (0..scenario.background.len())
        .map(|k| keep[fg + 2 * k] || keep[fg + 2 * k + 1])
        .collect()
}

/// Runs the network pinned to `channel` (no adaptation, no disconnection
/// protocol) — the building block of the static baselines. Background
/// pairs that provably cannot deliver to, defer, or interfere with the
/// foreground on `channel` are pruned from the simulation; the outcome
/// is exactly equal to [`run_fixed_unpruned`] (the pruning differential
/// tests enforce this, DESIGN.md §9 states why it holds).
pub fn run_fixed(scenario: &Scenario, channel: WfChannel) -> ScenarioOutcome {
    let keep = fixed_keep_mask(scenario, channel);
    let mut net = build(scenario, channel, false, Some(&keep));
    measure(scenario, &mut net)
}

/// [`run_fixed`] without the spectral slicing: every background pair is
/// simulated. Reference implementation for the differential tests and
/// the `fixed_run_pruned_vs_full` bench.
pub fn run_fixed_unpruned(scenario: &Scenario, channel: WfChannel) -> ScenarioOutcome {
    let mut net = build(scenario, channel, false, None);
    measure(scenario, &mut net)
}

/// The four baselines of Figures 11–13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticBaselines {
    /// Best static 5 MHz channel's aggregate goodput (Mbps).
    pub opt5: f64,
    /// Best static 10 MHz channel's aggregate goodput (Mbps).
    pub opt10: f64,
    /// Best static 20 MHz channel's aggregate goodput (Mbps).
    pub opt20: f64,
    /// The omniscient OPT: best over every admissible channel.
    pub opt: f64,
}

impl StaticBaselines {
    /// The candidate channels a [`StaticBaselines::measure`] sweep runs
    /// over: every admissible channel of the scenario's combined map.
    /// Exposed so experiment harnesses can fan the independent
    /// [`run_fixed`] calls across a worker pool and reduce with
    /// [`StaticBaselines::from_runs`].
    pub fn candidates(scenario: &Scenario) -> Vec<WfChannel> {
        scenario.combined_map().available_channels()
    }

    /// Reduces `(candidate, aggregate goodput)` pairs to the four
    /// baselines. The reduction is order-independent: a candidate wins
    /// its width slot on strictly higher goodput, and exact goodput ties
    /// break toward the lower channel position — so any enumeration
    /// order (or parallel completion order) of the same pairs yields the
    /// same result.
    pub fn from_runs(runs: impl IntoIterator<Item = (WfChannel, f64)>) -> Self {
        let mut best: [Option<(WfChannel, f64)>; 3] = [None; 3];
        for (cand, mbps) in runs {
            let slot = match cand.width() {
                Width::W5 => 0,
                Width::W10 => 1,
                Width::W20 => 2,
            };
            let wins = match best[slot] {
                None => true,
                Some((incumbent, b)) => {
                    mbps > b || (mbps == b && cand.low_index() < incumbent.low_index())
                }
            };
            if wins {
                best[slot] = Some((cand, mbps));
            }
        }
        let val = |s: usize| best[s].map(|(_, m)| m).unwrap_or(0.0);
        Self {
            opt5: val(0),
            opt10: val(1),
            opt20: val(2),
            opt: val(0).max(val(1)).max(val(2)),
        }
    }

    /// Sweeps every admissible channel of the combined map, running the
    /// fixed-channel network on each, and records the best aggregate
    /// goodput per width. "OPT is an ideal, omniscient algorithm that for
    /// every experiment run picks the channel with maximum throughput."
    pub fn measure(scenario: &Scenario) -> Self {
        Self::from_runs(
            Self::candidates(scenario)
                .into_iter()
                .map(|cand| (cand, run_fixed(scenario, cand).aggregate_mbps)),
        )
    }
}

/// Runs the scenario's *background traffic only* (no WhiteFi network) and
/// returns the airtime vector a scanner parked next to the AP would
/// measure over the trailing `window` — the MCham input for the
/// Figure 10 microbenchmark.
pub fn measure_airtime(scenario: &Scenario, window: SimDuration) -> AirtimeVector {
    let mut sim = Simulator::new(scenario.seed);
    for pair in &scenario.background {
        let rx = sim.add_node(NodeConfig::on_channel(pair.channel), Box::new(Sink));
        let tx_cfg = NodeConfig::on_channel(pair.channel).ap();
        match &pair.traffic {
            BackgroundTraffic::Cbr { interval } => {
                sim.add_node(tx_cfg, Box::new(CbrSender::new(rx, *interval)));
            }
            BackgroundTraffic::Markov {
                interval,
                mean_active,
                mean_passive,
            } => {
                sim.add_node(
                    tx_cfg,
                    Box::new(MarkovOnOffSender::new(
                        rx,
                        *interval,
                        *mean_active,
                        *mean_passive,
                    )),
                );
            }
            BackgroundTraffic::Scripted { interval, windows } => {
                sim.add_node(
                    tx_cfg,
                    Box::new(ScriptedCbrSender::new(rx, *interval, windows.clone())),
                );
            }
        }
    }
    let end = scenario.warmup + window;
    sim.run_until(SimTime::ZERO + end);
    let from = SimTime::ZERO + scenario.warmup;
    let to = SimTime::ZERO + end;
    AirtimeVector::from_fn(|ch: UhfChannel| {
        let busy = sim.medium().airtime_in_window(ch, from, to);
        let aps = sim.medium().ap_count_in_window(ch, from, to);
        ChannelLoad::new(busy, aps)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut s: Scenario) -> Scenario {
        s.duration = SimDuration::from_secs(2);
        s.warmup = SimDuration::from_secs(1);
        s
    }

    #[test]
    fn clean_spectrum_network_reaches_20mhz_goodput() {
        let s = quick(Scenario::new(1, SpectrumMap::all_free(), 2));
        let out = run_whitefi(&s, None);
        // Clean band: WhiteFi should sit on a 20 MHz channel and move
        // multiple Mbps of aggregate traffic.
        assert!(out.aggregate_mbps > 3.0, "aggregate {}", out.aggregate_mbps);
        assert_eq!(out.violations, 0);
        assert!(out.oracle.clean(), "oracle: {:?}", out.oracle.violations);
        assert!(out.oracle.checked_tx > 0, "oracles saw no member traffic");
        let last = out.samples.last().unwrap();
        assert_eq!(last.ap_channel.width(), Width::W20);
    }

    #[test]
    fn fixed_runs_stay_on_channel() {
        let s = quick(Scenario::new(2, SpectrumMap::all_free(), 1));
        let pin = WfChannel::from_parts(13, Width::W10);
        let out = run_fixed(&s, pin);
        assert!(out.samples.iter().all(|smp| smp.ap_channel == pin));
        assert!(out.aggregate_mbps > 1.0, "aggregate {}", out.aggregate_mbps);
    }

    #[test]
    fn per_client_split_roughly_fair() {
        let s = quick(Scenario::new(3, SpectrumMap::all_free(), 3));
        let out = run_whitefi(&s, None);
        let max = out.per_client_mbps.iter().cloned().fold(0.0, f64::max);
        let min = out.per_client_mbps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > 0.0, "a client starved: {:?}", out.per_client_mbps);
        assert!(max / min < 3.0, "unfair: {:?}", out.per_client_mbps);
    }

    #[test]
    fn background_traffic_measured_in_airtime() {
        let mut s = quick(Scenario::new(4, SpectrumMap::all_free(), 0));
        let bg_ch = WfChannel::from_parts(7, Width::W5);
        s.background.push(BackgroundPair {
            channel: bg_ch,
            traffic: BackgroundTraffic::Cbr {
                interval: SimDuration::from_millis(10),
            },
        });
        let air = measure_airtime(&s, SimDuration::from_secs(2));
        let busy = air.load(UhfChannel::from_index(7)).busy;
        assert!(busy > 0.2, "busy {busy}");
        assert_eq!(air.load(UhfChannel::from_index(7)).aps, 1);
        assert_eq!(air.load(UhfChannel::from_index(20)).busy, 0.0);
    }

    /// A small scenario with background pairs spread across the band so
    /// a narrow candidate prunes most of them.
    fn pruned_scenario(seed: u64) -> Scenario {
        let mut s = quick(Scenario::new(seed, SpectrumMap::all_free(), 2));
        for (c, w) in [
            (3usize, Width::W5),
            (7, Width::W5),
            (12, Width::W10),
            (20, Width::W20),
            (26, Width::W5),
        ] {
            s.background.push(BackgroundPair {
                channel: WfChannel::from_parts(c, w),
                traffic: BackgroundTraffic::Cbr {
                    interval: SimDuration::from_millis(8),
                },
            });
        }
        s
    }

    #[test]
    fn pruned_fixed_run_equals_unpruned() {
        for seed in [11u64, 12] {
            let s = pruned_scenario(seed);
            for cand in [
                WfChannel::from_parts(3, Width::W5),   // shares a pair's channel
                WfChannel::from_parts(15, Width::W5),  // interacts with nothing
                WfChannel::from_parts(12, Width::W20), // spans several pairs
            ] {
                let keep = fixed_keep_mask(&s, cand);
                assert!(
                    keep.iter().any(|k| !k),
                    "candidate {cand} prunes nothing — test exercises no slicing"
                );
                let pruned = run_fixed(&s, cand);
                let full = run_fixed_unpruned(&s, cand);
                assert_eq!(pruned, full, "seed {seed} candidate {cand}");
            }
        }
    }

    #[test]
    fn keep_mask_spans_overlapping_pairs_only() {
        let s = pruned_scenario(1);
        // W5 at 3: only the pair on channel 3 overlaps.
        assert_eq!(
            fixed_keep_mask(&s, WfChannel::from_parts(3, Width::W5)),
            vec![true, false, false, false, false]
        );
        // W20 at 12 spans 10..=14: pairs on 12 (W10: 11..=13) and
        // 20 (W20: 18..=22) — only the first overlaps.
        assert_eq!(
            fixed_keep_mask(&s, WfChannel::from_parts(12, Width::W20)),
            vec![false, false, true, false, false]
        );
    }

    #[test]
    fn baselines_invariant_under_candidate_order() {
        let s = pruned_scenario(21);
        let runs: Vec<(WfChannel, f64)> = StaticBaselines::candidates(&s)
            .into_iter()
            .map(|cand| (cand, run_fixed(&s, cand).aggregate_mbps))
            .collect();
        let forward = StaticBaselines::from_runs(runs.iter().copied());
        let reversed = StaticBaselines::from_runs(runs.iter().rev().copied());
        assert_eq!(forward, reversed);
        // Interleaved order (odd indexes first) for good measure.
        let interleaved = StaticBaselines::from_runs(
            runs.iter()
                .skip(1)
                .step_by(2)
                .chain(runs.iter().step_by(2))
                .copied(),
        );
        assert_eq!(forward, interleaved);
        // And the sequential `measure` agrees with the reduction.
        assert_eq!(forward, StaticBaselines::measure(&s));
    }

    #[test]
    fn from_runs_breaks_exact_ties_toward_lower_channel() {
        let a = WfChannel::from_parts(5, Width::W5);
        let b = WfChannel::from_parts(9, Width::W5);
        let fwd = StaticBaselines::from_runs([(a, 1.5), (b, 1.5)]);
        let rev = StaticBaselines::from_runs([(b, 1.5), (a, 1.5)]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.opt5, 1.5);
    }

    #[test]
    fn whitefi_avoids_loaded_fragment() {
        // Heavy background on the low 20 MHz fragment: WhiteFi must end
        // up elsewhere.
        let map = SpectrumMap::all_free();
        let mut s = quick(Scenario::new(5, map, 1));
        for c in [2usize, 3, 4, 5, 6] {
            s.background.push(BackgroundPair {
                channel: WfChannel::from_parts(c, Width::W5),
                traffic: BackgroundTraffic::Cbr {
                    interval: SimDuration::from_millis(3),
                },
            });
        }
        s.duration = SimDuration::from_secs(4);
        let out = run_whitefi(&s, Some(WfChannel::from_parts(4, Width::W20)));
        let final_ch = out.samples.last().unwrap().ap_channel;
        assert!(
            final_ch.low_index() > 6,
            "still on the loaded fragment: {final_ch}"
        );
        assert_eq!(out.violations, 0);
        assert!(out.oracle.clean(), "oracle: {:?}", out.oracle.violations);
    }
}
