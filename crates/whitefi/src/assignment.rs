//! The adaptive spectrum-assignment algorithm (§4.1).
//!
//! The [`Assigner`] wraps the MCham selection with the operational rules
//! the paper describes:
//!
//! * **hysteresis** — "To prevent frequent changes in the channel or
//!   ping-ponging across two channels, we also add hysteresis to our
//!   system": a voluntary switch requires the challenger to beat the
//!   incumbent channel's score by a margin;
//! * **involuntary switches** — an incumbent on the current channel
//!   forces a move regardless of scores;
//! * **post-switch evaluation** — "if the measured performance of the new
//!   channel is less than the previous channel, the AP will re-evaluate
//!   its channel selection, possibly switching back": the assigner
//!   remembers the pre-switch goodput and recommends a revert when the
//!   new channel measures worse.

use crate::mcham::{objective_score, select_channel_with, NodeReport, Objective};
use serde::{Deserialize, Serialize};
use whitefi_spectrum::WfChannel;

/// Tuning knobs for the assigner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssignerConfig {
    /// Relative score margin a challenger must exceed for a voluntary
    /// switch (0.1 = 10%).
    pub hysteresis: f64,
    /// Relative goodput shortfall after a voluntary switch that triggers
    /// a revert recommendation.
    pub revert_margin: f64,
    /// The selection objective (aggregate throughput by default; the
    /// paper notes fairness objectives "can easily be implemented
    /// instead").
    pub objective: Objective,
}

impl Default for AssignerConfig {
    fn default() -> Self {
        Self {
            hysteresis: 0.10,
            revert_margin: 0.10,
            objective: Objective::Aggregate,
        }
    }
}

/// What the assigner recommends after a re-evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the current channel.
    Stay,
    /// Move to the given channel (voluntarily: it scores past hysteresis;
    /// or involuntarily: the current channel is no longer admissible).
    Switch(WfChannel),
    /// No channel is admissible at all nodes.
    NoChannel,
}

/// The spectrum-assignment state machine (one per AP).
#[derive(Debug, Clone)]
pub struct Assigner {
    config: AssignerConfig,
    current: Option<WfChannel>,
    /// Goodput measured on the previous channel before the last
    /// voluntary switch, for the post-switch evaluation.
    pre_switch_goodput: Option<f64>,
}

impl Assigner {
    /// A fresh assigner (no channel selected yet).
    pub fn new(config: AssignerConfig) -> Self {
        Self {
            config,
            current: None,
            pre_switch_goodput: None,
        }
    }

    /// The currently assigned channel.
    pub fn current(&self) -> Option<WfChannel> {
        self.current
    }

    /// Overrides the current channel (e.g. after an externally forced
    /// move onto the backup channel).
    pub fn set_current(&mut self, ch: Option<WfChannel>) {
        self.current = ch;
    }

    /// Re-evaluates the assignment from fresh reports.
    ///
    /// `current_goodput` is the goodput measured on the current channel
    /// since the last evaluation (used to arm the post-switch revert
    /// check); pass `None` when unknown.
    pub fn evaluate(
        &mut self,
        ap: &NodeReport,
        clients: &[NodeReport],
        current_goodput: Option<f64>,
    ) -> Decision {
        let Some((best, best_score)) = select_channel_with(self.config.objective, ap, clients)
        else {
            self.current = None;
            return Decision::NoChannel;
        };
        let Some(cur) = self.current else {
            // Bootstrapping: adopt the best channel outright.
            self.current = Some(best);
            return Decision::Switch(best);
        };

        // Involuntary: the current channel is blocked at some node.
        let combined = whitefi_spectrum::SpectrumMap::union_all(
            std::iter::once(ap.map).chain(clients.iter().map(|c| c.map)),
        );
        if !combined.admits(cur) {
            self.current = Some(best);
            self.pre_switch_goodput = None; // never revert onto an incumbent
            return Decision::Switch(best);
        }

        if best == cur {
            self.pre_switch_goodput = None;
            return Decision::Stay;
        }

        // Voluntary: challenger must clear hysteresis. (For objectives
        // whose scores can be non-positive — log-sum proportional
        // fairness — fall back to an absolute margin.)
        let cur_score = objective_score(self.config.objective, ap, clients, cur);
        let margin_cleared = if cur_score > 0.0 {
            best_score > cur_score * (1.0 + self.config.hysteresis)
        } else {
            best_score > cur_score + self.config.hysteresis
        };
        if margin_cleared {
            self.current = Some(best);
            self.pre_switch_goodput = current_goodput;
            return Decision::Switch(best);
        }
        Decision::Stay
    }

    /// Post-switch evaluation: after a voluntary switch, compare the
    /// goodput measured on the new channel with the remembered pre-switch
    /// goodput. Returns `true` when the assigner recommends reverting
    /// (the caller should re-run [`Assigner::evaluate`] after acting).
    pub fn should_revert(&mut self, new_goodput: f64) -> bool {
        match self.pre_switch_goodput.take() {
            Some(old) => new_goodput < old * (1.0 - self.config.revert_margin),
            None => false,
        }
    }
}

impl Default for Assigner {
    fn default() -> Self {
        Self::new(AssignerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whitefi_spectrum::{AirtimeVector, ChannelLoad, SpectrumMap, UhfChannel, Width};

    fn idle_report() -> NodeReport {
        NodeReport::default()
    }

    fn loaded_report(loads: &[(usize, f64, u32)]) -> NodeReport {
        let mut airtime = AirtimeVector::idle();
        for &(ch, busy, aps) in loads {
            airtime.set_load(UhfChannel::from_index(ch), ChannelLoad::new(busy, aps));
        }
        NodeReport {
            map: SpectrumMap::all_free(),
            airtime,
        }
    }

    #[test]
    fn bootstrap_adopts_best() {
        let mut a = Assigner::default();
        let d = a.evaluate(&idle_report(), &[], None);
        let Decision::Switch(ch) = d else {
            panic!("expected switch, got {d:?}")
        };
        assert_eq!(ch.width(), Width::W20);
        assert_eq!(a.current(), Some(ch));
    }

    #[test]
    fn stays_put_within_hysteresis() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let cur = a.current().unwrap();
        // Mild load on the current channel: challenger advantage below
        // 10% must not trigger a switch.
        let mild = loaded_report(&[(cur.low_index(), 0.05, 0)]);
        assert_eq!(a.evaluate(&mild, &[], None), Decision::Stay);
        assert_eq!(a.current(), Some(cur));
    }

    #[test]
    fn switches_voluntarily_past_hysteresis() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let cur = a.current().unwrap();
        // Crush the current channel with background traffic.
        let crushed = loaded_report(&[(cur.center().index(), 0.9, 1)]);
        let d = a.evaluate(&crushed, &[], Some(5.0));
        let Decision::Switch(next) = d else {
            panic!("expected switch")
        };
        assert_ne!(next, cur);
        assert!(!next.contains(cur.center()));
    }

    #[test]
    fn involuntary_switch_ignores_hysteresis() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let cur = a.current().unwrap();
        // A mic lands on the current channel's centre.
        let mut rep = idle_report();
        rep.map.set_occupied(cur.center());
        let d = a.evaluate(&rep, &[], None);
        let Decision::Switch(next) = d else {
            panic!("expected switch")
        };
        assert!(!next.contains(cur.center()));
    }

    #[test]
    fn no_channel_when_everything_blocked() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let rep = NodeReport {
            map: SpectrumMap::all_occupied(),
            airtime: AirtimeVector::idle(),
        };
        assert_eq!(a.evaluate(&rep, &[], None), Decision::NoChannel);
        assert_eq!(a.current(), None);
    }

    #[test]
    fn revert_after_bad_voluntary_switch() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let cur = a.current().unwrap();
        let crushed = loaded_report(&[(cur.center().index(), 0.9, 1)]);
        let Decision::Switch(_) = a.evaluate(&crushed, &[], Some(4.0)) else {
            panic!("expected switch")
        };
        // The new channel turned out much worse than the 4.0 we had.
        assert!(a.should_revert(2.0));
        // Consumed: a second call does not re-trigger.
        assert!(!a.should_revert(2.0));
    }

    #[test]
    fn no_revert_when_new_channel_is_fine() {
        let mut a = Assigner::default();
        a.evaluate(&idle_report(), &[], None);
        let cur = a.current().unwrap();
        let crushed = loaded_report(&[(cur.center().index(), 0.9, 1)]);
        a.evaluate(&crushed, &[], Some(2.0));
        assert!(!a.should_revert(3.0));
    }

    #[test]
    fn no_ping_pong_between_equal_channels() {
        // Two identical fragments: once settled, the assigner must not
        // oscillate between them on repeated evaluations.
        let map = SpectrumMap::from_free([2, 3, 4, 10, 11, 12]);
        let rep = NodeReport {
            map,
            airtime: AirtimeVector::idle(),
        };
        let mut a = Assigner::default();
        a.evaluate(&rep, &[], None);
        let first = a.current().unwrap();
        for _ in 0..10 {
            assert_eq!(a.evaluate(&rep, &[], None), Decision::Stay);
            assert_eq!(a.current(), Some(first));
        }
    }
}
